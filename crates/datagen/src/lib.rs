//! # helios-datagen
//!
//! Seeded synthetic dynamic-graph datasets replicating the *shapes* of the
//! paper's four datasets (Table 1) at laptop scale:
//!
//! | preset  | paper source          | shape preserved                          |
//! |---------|-----------------------|------------------------------------------|
//! | `BI`    | LDBC social (BI)      | more vertices than edges, avg degree ≈1.3 |
//! | `INTER` | LDBC Interactive      | dense: avg degree ≈95, heavy skew         |
//! | `FIN`   | LDBC FinBench ×200    | tiny vertex set, huge replayed edge count |
//! | `TAOBAO`| Taobao user behaviour | 128-dim features, moderate degree         |
//!
//! Each preset fixes a schema, a Table 2 sampling query, a power-law
//! out-degree distribution and an update stream: vertex updates (insert +
//! periodic feature refreshes) interleaved with timestamped, append-only
//! edge insertions. Everything is deterministic given a seed, so paired
//! experiments (Helios vs baseline) replay identical histories.

pub mod dataset;
pub mod io;
pub mod stats;
pub mod stream;
pub mod zipf;

pub use dataset::{Dataset, DatasetConfig, EdgeSpec, Preset, VertexSpec};
pub use io::{read_events, write_events, EventFileReader};
pub use stats::{compute_stats, DatasetStats};
pub use stream::EventStream;
pub use zipf::ZipfSampler;
