//! Zipf-distributed sampling over `1..=n` by rejection inversion
//! (W. Hörmann & G. Derflinger, "Rejection-inversion to generate variates
//! from monotone discrete distributions"), the same method used by
//! `rand_distr::Zipf`. Implemented in-repo because `rand_distr` is outside
//! the sanctioned dependency set.

use rand::Rng;

/// Samples ranks from a Zipf distribution with exponent `s > 0` over
/// `{1, …, n}`: P(k) ∝ 1/k^s. Rank 1 is the hottest vertex (the
/// "supernode" of §3.1).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_half: f64,
    hxm: f64,
}

impl ZipfSampler {
    /// New sampler over `1..=n` with exponent `s`. Panics on `n == 0` or a
    /// non-positive/non-finite exponent.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut z = ZipfSampler {
            n,
            s,
            h_x1: 0.0,
            h_half: 0.0,
            hxm: 0.0,
        };
        z.h_x1 = z.h(1.5) - 1.0;
        z.h_half = z.h(0.5);
        z.hxm = z.h(n as f64 + 0.5);
        z
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// H(x) = ∫ x^(-s) dx, with the s = 1 special case.
    fn h(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            x.powf(1.0 - self.s) / (1.0 - self.s)
        }
    }

    /// Inverse of `h`.
    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draw one rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_half + rng.gen::<f64>() * (self.hxm - self.h_half);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().max(1.0);
            let k_u64 = (k as u64).min(self.n);
            // Accept k with the rejection-inversion criterion.
            if k - x <= self.h_x1 || u >= self.h(k + 0.5) - (k).powf(-self.s) {
                return k_u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_support() {
        let z = ZipfSampler::new(1000, 1.1);
        let mut g = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut g);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = ZipfSampler::new(10_000, 1.2);
        let mut g = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mut ones = 0u32;
        let mut top10 = 0u32;
        for _ in 0..n {
            let k = z.sample(&mut g);
            if k == 1 {
                ones += 1;
            }
            if k <= 10 {
                top10 += 1;
            }
        }
        let p1 = f64::from(ones) / f64::from(n);
        let p10 = f64::from(top10) / f64::from(n);
        assert!(p1 > 0.10, "rank 1 got {p1:.3} of mass");
        assert!(p10 > 0.4, "top-10 got {p10:.3} of mass");
    }

    #[test]
    fn exponent_one_special_case() {
        let z = ZipfSampler::new(100, 1.0);
        let mut g = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 101];
        for _ in 0..100_000 {
            counts[z.sample(&mut g) as usize] += 1;
        }
        // P(1)/P(2) should be ≈ 2 for s = 1.
        let ratio = f64::from(counts[1]) / f64::from(counts[2].max(1));
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mut g = StdRng::seed_from_u64(4);
        let mass_of_rank1 = |s: f64, g: &mut StdRng| {
            let z = ZipfSampler::new(1000, s);
            let mut ones = 0;
            for _ in 0..20_000 {
                if z.sample(g) == 1 {
                    ones += 1;
                }
            }
            ones
        };
        let light = mass_of_rank1(0.8, &mut g);
        let heavy = mass_of_rank1(1.6, &mut g);
        assert!(heavy > light * 2, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn singleton_support() {
        let z = ZipfSampler::new(1, 1.5);
        let mut g = StdRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut g), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn zero_support_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn bad_exponent_panics() {
        let _ = ZipfSampler::new(10, 0.0);
    }
}
