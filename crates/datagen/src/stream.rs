//! Streaming, seeded event generation: replay a dataset as an append-only
//! sequence of [`GraphUpdate`]s with strictly increasing timestamps.

use crate::dataset::Dataset;
use crate::zipf::ZipfSampler;
use helios_types::{EdgeUpdate, GraphUpdate, Timestamp, VertexId, VertexUpdate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Iterator over a dataset's update events.
///
/// Phase 1 emits one vertex update per vertex (insertion with an initial
/// feature). Phase 2 emits the edge stream: for each edge population in
/// round-robin proportion, source and destination are drawn from Zipf
/// samplers over their populations; a configurable fraction of events are
/// vertex feature refreshes instead of edges. Timestamps tick by 1 ms per
/// event.
pub struct EventStream {
    dataset: Dataset,
    rng: StdRng,
    ts: u64,
    // Phase 1 cursor.
    vertex_cursor: u64,
    // Phase 2 state: remaining count + samplers per edge population.
    edge_state: Vec<EdgePop>,
    edges_remaining: u64,
    total_edge_budget: u64,
}

struct EdgePop {
    etype: helios_types::EdgeType,
    src_type: helios_types::VertexType,
    dst_type: helios_types::VertexType,
    src_base: u64,
    dst_base: u64,
    src_zipf: ZipfSampler,
    dst_zipf: ZipfSampler,
    remaining: u64,
}

impl EventStream {
    /// New stream for a dataset (deterministic given the dataset's seed).
    pub fn new(dataset: Dataset) -> Self {
        let cfg = dataset.config().clone();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut edge_state = Vec::new();
        let mut total = 0u64;
        for e in &cfg.edges {
            let (src_lo, src_hi) = dataset.id_range(e.src);
            let (dst_lo, dst_hi) = dataset.id_range(e.dst);
            edge_state.push(EdgePop {
                etype: dataset.et(e.name),
                src_type: dataset.vt(e.src),
                dst_type: dataset.vt(e.dst),
                src_base: src_lo,
                dst_base: dst_lo,
                src_zipf: ZipfSampler::new(src_hi - src_lo, e.src_skew),
                dst_zipf: ZipfSampler::new(dst_hi - dst_lo, e.dst_skew),
                remaining: e.count,
            });
            total += e.count;
        }
        EventStream {
            dataset,
            rng,
            ts: 0,
            vertex_cursor: 0,
            edge_state,
            edges_remaining: total,
            total_edge_budget: total,
        }
    }

    /// Total number of events this stream will yield.
    pub fn total_events(&self) -> u64 {
        let cfg = self.dataset.config();
        let feature_updates = (self.total_edge_budget as f64 * cfg.feature_update_ratio) as u64;
        self.dataset.total_vertices() + self.total_edge_budget + feature_updates
    }

    fn feature(&mut self, dim: usize) -> Vec<f32> {
        (0..dim).map(|_| self.rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn vertex_type_of(&self, id: u64) -> helios_types::VertexType {
        let mut lo = 0u64;
        for v in &self.dataset.config().vertices {
            if id < lo + v.count {
                return self.dataset.vt(v.name);
            }
            lo += v.count;
        }
        unreachable!("id {id} outside all populations");
    }

    fn next_vertex_insert(&mut self) -> GraphUpdate {
        let id = self.vertex_cursor;
        self.vertex_cursor += 1;
        self.ts += 1;
        let dim = self.dataset.config().feature_dim;
        GraphUpdate::Vertex(VertexUpdate {
            vtype: self.vertex_type_of(id),
            id: VertexId(id),
            feature: self.feature(dim),
            ts: Timestamp(self.ts),
        })
    }

    fn next_edge_or_refresh(&mut self) -> GraphUpdate {
        self.ts += 1;
        let cfg_ratio = self.dataset.config().feature_update_ratio;
        if self.rng.gen::<f64>() < cfg_ratio {
            // Feature refresh of a random existing vertex.
            let id = self.rng.gen_range(0..self.dataset.total_vertices());
            let dim = self.dataset.config().feature_dim;
            return GraphUpdate::Vertex(VertexUpdate {
                vtype: self.vertex_type_of(id),
                id: VertexId(id),
                feature: self.feature(dim),
                ts: Timestamp(self.ts),
            });
        }
        // Pick an edge population proportionally to remaining budget.
        let pick = self.rng.gen_range(0..self.edges_remaining);
        let mut acc = 0u64;
        let mut idx = 0;
        for (i, p) in self.edge_state.iter().enumerate() {
            acc += p.remaining;
            if pick < acc {
                idx = i;
                break;
            }
        }
        let ts = Timestamp(self.ts);
        let weight = self.rng.gen_range(0.1f32..10.0);
        let pop = &mut self.edge_state[idx];
        pop.remaining -= 1;
        self.edges_remaining -= 1;
        let src = VertexId(pop.src_base + pop.src_zipf.sample(&mut self.rng) - 1);
        let dst = VertexId(pop.dst_base + pop.dst_zipf.sample(&mut self.rng) - 1);
        GraphUpdate::Edge(EdgeUpdate {
            etype: pop.etype,
            src_type: pop.src_type,
            src,
            dst_type: pop.dst_type,
            dst,
            ts,
            weight,
        })
    }
}

impl Iterator for EventStream {
    type Item = GraphUpdate;

    fn next(&mut self) -> Option<GraphUpdate> {
        if self.vertex_cursor < self.dataset.total_vertices() {
            return Some(self.next_vertex_insert());
        }
        // Feature refreshes are drawn probabilistically alongside edges, so
        // the stream ends when the edge budget is exhausted.
        if self.edges_remaining > 0 {
            return Some(self.next_edge_or_refresh());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Preset;

    #[test]
    fn stream_is_deterministic() {
        let d = Preset::Taobao.dataset(0.01);
        let a: Vec<GraphUpdate> = d.events().take(500).collect();
        let b: Vec<GraphUpdate> = d.events().take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let d = Preset::Bi.dataset(0.005);
        let mut last = 0u64;
        for ev in d.events().take(2000) {
            let ts = ev.ts().millis();
            assert!(ts > last, "ts {ts} after {last}");
            last = ts;
        }
    }

    #[test]
    fn vertices_come_first_then_edges() {
        let d = Preset::Taobao.dataset(0.005);
        let nv = d.total_vertices();
        let events: Vec<GraphUpdate> = d.events().collect();
        for (i, ev) in events.iter().enumerate() {
            if (i as u64) < nv {
                assert!(ev.is_vertex());
            }
        }
        let edges = events.iter().filter(|e| e.is_edge()).count() as u64;
        assert_eq!(edges, d.total_edges());
    }

    #[test]
    fn edge_endpoints_respect_population_ranges() {
        let d = Preset::Taobao.dataset(0.01);
        let (ulo, uhi) = d.id_range("User");
        let (ilo, ihi) = d.id_range("Item");
        let click = d.et("Click");
        let cop = d.et("CoPurchase");
        for ev in d.events() {
            if let GraphUpdate::Edge(e) = ev {
                if e.etype == click {
                    assert!((ulo..uhi).contains(&e.src.raw()));
                    assert!((ilo..ihi).contains(&e.dst.raw()));
                } else if e.etype == cop {
                    assert!((ilo..ihi).contains(&e.src.raw()));
                    assert!((ilo..ihi).contains(&e.dst.raw()));
                }
            }
        }
    }

    #[test]
    fn feature_refreshes_present() {
        let d = Preset::Taobao.dataset(0.02); // 10% refresh ratio
        let nv = d.total_vertices();
        let refreshes = d
            .events()
            .skip(nv as usize)
            .filter(|e| e.is_vertex())
            .count();
        assert!(refreshes > 0, "expected interleaved feature refreshes");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        use std::collections::HashMap;
        let d = Preset::Inter.dataset(0.02);
        let mut deg: HashMap<u64, u64> = HashMap::new();
        for ev in d.events() {
            if let GraphUpdate::Edge(e) = ev {
                *deg.entry(e.src.raw()).or_default() += 1;
            }
        }
        let max = *deg.values().max().unwrap();
        let avg = deg.values().sum::<u64>() as f64 / deg.len() as f64;
        assert!(
            (max as f64) > avg * 20.0,
            "supernodes expected: max {max}, avg {avg:.1}"
        );
    }

    #[test]
    fn total_events_estimate_close() {
        let d = Preset::Bi.dataset(0.005);
        let est = d.events().total_events();
        let actual = d.events().count() as u64;
        let diff = (est as f64 - actual as f64).abs() / actual as f64;
        assert!(diff < 0.05, "estimate {est} vs actual {actual}");
    }
}
