//! Event-stream files: persist a generated update stream and replay it
//! later, so paired experiments (or other tools) can share the exact same
//! history without regenerating it.
//!
//! Format: `HEVT1` magic, then length-prefixed encoded [`GraphUpdate`]
//! frames (`[len: u32 LE][payload]`). Streaming read: frames decode one
//! at a time, so billion-event files never need to fit in memory.

use bytes::BytesMut;
use helios_types::{Decode, Encode, GraphUpdate, HeliosError, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 5] = b"HEVT1";

/// Write `events` to `path`; returns the number of events written.
pub fn write_events(path: &Path, events: impl Iterator<Item = GraphUpdate>) -> Result<u64> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let mut count = 0u64;
    let mut buf = BytesMut::with_capacity(256);
    for ev in events {
        buf.clear();
        ev.encode(&mut buf);
        w.write_all(&(buf.len() as u32).to_le_bytes())?;
        w.write_all(&buf)?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// Streaming reader over an event file.
pub struct EventFileReader {
    input: BufReader<File>,
    frame: Vec<u8>,
    finished: bool,
}

impl EventFileReader {
    /// Open an event file, validating the magic header.
    pub fn open(path: &Path) -> Result<Self> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 5];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(HeliosError::Codec(format!(
                "{} is not an event file",
                path.display()
            )));
        }
        Ok(EventFileReader {
            input,
            frame: Vec::new(),
            finished: false,
        })
    }

    fn next_frame(&mut self) -> Result<Option<GraphUpdate>> {
        let mut len4 = [0u8; 4];
        match self.input.read_exact(&mut len4) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len4) as usize;
        self.frame.resize(len, 0);
        self.input.read_exact(&mut self.frame)?;
        Ok(Some(GraphUpdate::decode_from_slice(&self.frame)?))
    }
}

impl Iterator for EventFileReader {
    type Item = Result<GraphUpdate>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        match self.next_frame() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => {
                self.finished = true;
                None
            }
            Err(e) => {
                self.finished = true;
                Some(Err(e))
            }
        }
    }
}

/// Read a whole event file into memory (convenience for tests/benches).
pub fn read_events(path: &Path) -> Result<Vec<GraphUpdate>> {
    EventFileReader::open(path)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Preset;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("helios-evt-{}-{name}.evt", std::process::id()))
    }

    #[test]
    fn roundtrip_generated_stream() {
        let d = Preset::Taobao.dataset(0.005);
        let path = tmpfile("rt");
        let expected: Vec<GraphUpdate> = d.events().collect();
        let n = write_events(&path, d.events()).unwrap();
        assert_eq!(n as usize, expected.len());
        let back = read_events(&path).unwrap();
        assert_eq!(back, expected);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_read_does_not_materialize() {
        let d = Preset::Bi.dataset(0.002);
        let path = tmpfile("stream");
        write_events(&path, d.events()).unwrap();
        let mut reader = EventFileReader::open(&path).unwrap();
        let first = reader.next().unwrap().unwrap();
        assert!(first.is_vertex());
        // Consuming the rest lazily still works.
        let rest = reader.count();
        assert_eq!(rest as u64 + 1, d.events().count() as u64);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmpfile("bad");
        std::fs::write(&path, b"NOTEVENTS").unwrap();
        assert!(EventFileReader::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_frame_surfaces_error() {
        let d = Preset::Taobao.dataset(0.005);
        let path = tmpfile("trunc");
        write_events(&path, d.events().take(10)).unwrap();
        // Chop the file mid-frame.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let results: Vec<_> = EventFileReader::open(&path).unwrap().collect();
        assert!(results.len() <= 10);
        assert!(results.last().unwrap().is_err(), "torn frame must error");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_stream_roundtrip() {
        let path = tmpfile("empty");
        let n = write_events(&path, std::iter::empty()).unwrap();
        assert_eq!(n, 0);
        assert!(read_events(&path).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
