//! Dataset presets and configuration.

use crate::stream::EventStream;
use helios_query::{KHopQuery, SamplingStrategy, Schema};
use helios_types::{EdgeType, VertexType};

/// A vertex population: `count` vertices of one label, ids assigned from a
/// dense range.
#[derive(Debug, Clone)]
pub struct VertexSpec {
    /// Label name.
    pub name: &'static str,
    /// Population size (after scaling).
    pub count: u64,
}

/// An edge population: `count` edges of one label between two vertex
/// populations, with Zipf-skewed endpoint selection.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Label name.
    pub name: &'static str,
    /// Source vertex label.
    pub src: &'static str,
    /// Destination vertex label.
    pub dst: &'static str,
    /// Number of edge events (after scaling, including replays).
    pub count: u64,
    /// Zipf exponent for source selection (higher = more skew = bigger
    /// supernodes).
    pub src_skew: f64,
    /// Zipf exponent for destination selection.
    pub dst_skew: f64,
}

/// Full dataset configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Dataset name (Table 1 row).
    pub name: &'static str,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Vertex populations.
    pub vertices: Vec<VertexSpec>,
    /// Edge populations.
    pub edges: Vec<EdgeSpec>,
    /// Fraction of the edge stream that is interleaved vertex *feature
    /// refreshes* (the paper's "feature update of a previously observed
    /// vertex").
    pub feature_update_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The four dataset presets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// LDBC BI shape: vertex-heavy, sparse.
    Bi,
    /// LDBC Interactive shape: dense, heavily skewed.
    Inter,
    /// LDBC FinBench shape: tiny vertex set, replayed edges.
    Fin,
    /// Taobao shape: 128-dim features.
    Taobao,
}

impl Preset {
    /// All presets in Table 1 order.
    pub const ALL: [Preset; 4] = [Preset::Bi, Preset::Inter, Preset::Fin, Preset::Taobao];

    /// Preset name as printed in tables.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Bi => "BI",
            Preset::Inter => "INTER",
            Preset::Fin => "FIN",
            Preset::Taobao => "Taobao",
        }
    }

    /// Build the configuration at `scale` (1.0 ≈ a few hundred thousand
    /// events — large enough for skew effects, small enough for CI).
    pub fn config(self, scale: f64) -> DatasetConfig {
        assert!(scale > 0.0, "scale must be positive");
        let s = |base: u64| ((base as f64 * scale) as u64).max(4);
        match self {
            // 1.9B vertices / 2.4B edges → vertex-heavy, avg degree 1.26.
            Preset::Bi => DatasetConfig {
                name: "BI",
                feature_dim: 10,
                vertices: vec![
                    VertexSpec {
                        name: "Person",
                        count: s(60_000),
                    },
                    VertexSpec {
                        name: "Comment",
                        count: s(130_000),
                    },
                ],
                edges: vec![
                    EdgeSpec {
                        name: "Knows",
                        src: "Person",
                        dst: "Person",
                        count: s(120_000),
                        src_skew: 1.1,
                        dst_skew: 1.05,
                    },
                    EdgeSpec {
                        name: "Likes",
                        src: "Person",
                        dst: "Comment",
                        count: s(120_000),
                        src_skew: 1.1,
                        dst_skew: 1.2,
                    },
                ],
                feature_update_ratio: 0.05,
                seed: 0xB1,
            },
            // 40M vertices / 3.8B edges → avg degree ≈95, strong skew.
            Preset::Inter => DatasetConfig {
                name: "INTER",
                feature_dim: 10,
                vertices: vec![
                    VertexSpec {
                        name: "Forum",
                        count: s(2_000),
                    },
                    VertexSpec {
                        name: "Person",
                        count: s(8_000),
                    },
                ],
                edges: vec![
                    EdgeSpec {
                        name: "Has",
                        src: "Forum",
                        dst: "Person",
                        count: s(300_000),
                        src_skew: 1.2,
                        dst_skew: 1.05,
                    },
                    EdgeSpec {
                        name: "Knows",
                        src: "Person",
                        dst: "Person",
                        count: s(650_000),
                        src_skew: 1.25,
                        dst_skew: 1.1,
                    },
                ],
                feature_update_ratio: 0.05,
                seed: 0x1A7E,
            },
            // 2M vertices / 2.2B edges (200× replay) → extreme supernodes.
            Preset::Fin => DatasetConfig {
                name: "FIN",
                feature_dim: 10,
                vertices: vec![VertexSpec {
                    name: "Account",
                    count: s(2_000),
                }],
                edges: vec![EdgeSpec {
                    name: "TransferTo",
                    src: "Account",
                    dst: "Account",
                    count: s(1_000_000),
                    src_skew: 1.3,
                    dst_skew: 1.3,
                }],
                feature_update_ratio: 0.02,
                seed: 0xF1,
            },
            // 1.8M vertices / 8.6M edges, 128-dim features.
            Preset::Taobao => DatasetConfig {
                name: "Taobao",
                feature_dim: 128,
                vertices: vec![
                    VertexSpec {
                        name: "User",
                        count: s(12_000),
                    },
                    VertexSpec {
                        name: "Item",
                        count: s(6_000),
                    },
                ],
                edges: vec![
                    EdgeSpec {
                        name: "Click",
                        src: "User",
                        dst: "Item",
                        count: s(60_000),
                        src_skew: 1.05,
                        dst_skew: 1.3,
                    },
                    EdgeSpec {
                        name: "CoPurchase",
                        src: "Item",
                        dst: "Item",
                        count: s(26_000),
                        src_skew: 1.2,
                        dst_skew: 1.2,
                    },
                ],
                feature_update_ratio: 0.10,
                seed: 0x7A0,
            },
        }
    }

    /// Build the dataset (config + schema + Table 2 query) at `scale`.
    pub fn dataset(self, scale: f64) -> Dataset {
        Dataset::new(self.config(scale), self)
    }
}

/// A ready-to-replay dataset: config, interned schema, and the Table 2
/// two-hop query ([25, 10] fan-outs).
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
    preset: Preset,
    schema: Schema,
}

impl Dataset {
    /// Build from a configuration.
    pub fn new(config: DatasetConfig, preset: Preset) -> Self {
        let mut schema = Schema::new();
        for v in &config.vertices {
            schema.vertex_type(v.name);
        }
        for e in &config.edges {
            schema.edge_type(e.name);
        }
        Dataset {
            config,
            preset,
            schema,
        }
    }

    /// The dataset configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The preset this dataset was built from.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// The interned schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Vertex type id of a label (panics on unknown label — presets are
    /// closed).
    pub fn vt(&self, name: &str) -> VertexType {
        self.schema.find_vertex_type(name).expect("preset label")
    }

    /// Edge type id of a label.
    pub fn et(&self, name: &str) -> EdgeType {
        self.schema.find_edge_type(name).expect("preset label")
    }

    /// Total vertices across populations.
    pub fn total_vertices(&self) -> u64 {
        self.config.vertices.iter().map(|v| v.count).sum()
    }

    /// Total edge events.
    pub fn total_edges(&self) -> u64 {
        self.config.edges.iter().map(|e| e.count).sum()
    }

    /// Id range `[lo, hi)` of a vertex population (dense global id space
    /// in declaration order).
    pub fn id_range(&self, name: &str) -> (u64, u64) {
        let mut lo = 0u64;
        for v in &self.config.vertices {
            if v.name == name {
                return (lo, lo + v.count);
            }
            lo += v.count;
        }
        panic!("unknown vertex population '{name}'");
    }

    /// The Table 2 sampling query for this dataset, with the paper's
    /// fan-outs `[25, 10]` (or `[25, 10, 5]` for the 3-hop variant), using
    /// the given strategy for every hop.
    pub fn table2_query(&self, strategy: SamplingStrategy, three_hop: bool) -> KHopQuery {
        let q = match self.preset {
            // Person-Knows-Person-Likes-Comment
            Preset::Bi => KHopQuery::builder(self.vt("Person"))
                .hop(self.et("Knows"), self.vt("Person"), 25, strategy)
                .hop(self.et("Likes"), self.vt("Comment"), 10, strategy),
            // Forum-Has-Person-Knows-Person[-Knows-Person]
            Preset::Inter => {
                let b = KHopQuery::builder(self.vt("Forum"))
                    .hop(self.et("Has"), self.vt("Person"), 25, strategy)
                    .hop(self.et("Knows"), self.vt("Person"), 10, strategy);
                if three_hop {
                    b.hop(self.et("Knows"), self.vt("Person"), 5, strategy)
                } else {
                    b
                }
            }
            // Account-TransferTo-Account-TransferTo-Account
            Preset::Fin => KHopQuery::builder(self.vt("Account"))
                .hop(self.et("TransferTo"), self.vt("Account"), 25, strategy)
                .hop(self.et("TransferTo"), self.vt("Account"), 10, strategy),
            // User-Click-Item-CoPurchase-Item
            Preset::Taobao => KHopQuery::builder(self.vt("User"))
                .hop(self.et("Click"), self.vt("Item"), 25, strategy)
                .hop(self.et("CoPurchase"), self.vt("Item"), 10, strategy),
        };
        q.build().expect("preset queries are valid")
    }

    /// Seed-vertex population name for the Table 2 query.
    pub fn seed_population(&self) -> &'static str {
        match self.preset {
            Preset::Bi => "Person",
            Preset::Inter => "Forum",
            Preset::Fin => "Account",
            Preset::Taobao => "User",
        }
    }

    /// Stream of graph-update events for replay.
    pub fn events(&self) -> EventStream {
        EventStream::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_scale() {
        for p in Preset::ALL {
            let d = p.dataset(0.01);
            assert!(d.total_vertices() > 0);
            assert!(d.total_edges() > 0);
            let big = p.dataset(0.1);
            assert!(big.total_edges() > d.total_edges());
            assert_eq!(d.config().name, p.name());
        }
    }

    #[test]
    fn id_ranges_are_dense_and_disjoint() {
        let d = Preset::Taobao.dataset(0.01);
        let (ulo, uhi) = d.id_range("User");
        let (ilo, ihi) = d.id_range("Item");
        assert_eq!(ulo, 0);
        assert_eq!(uhi, ilo);
        assert_eq!(ihi, d.total_vertices());
    }

    #[test]
    fn table2_queries_match_paper() {
        for p in Preset::ALL {
            let d = p.dataset(0.01);
            let q = d.table2_query(SamplingStrategy::TopK, false);
            assert_eq!(q.fanouts(), vec![25, 10], "{}", p.name());
            assert_eq!(q.seed_type(), d.vt(d.seed_population()));
        }
        let d = Preset::Inter.dataset(0.01);
        let q3 = d.table2_query(SamplingStrategy::Random, true);
        assert_eq!(q3.fanouts(), vec![25, 10, 5]);
    }

    #[test]
    fn feature_dims_match_table1() {
        assert_eq!(Preset::Taobao.dataset(0.01).config().feature_dim, 128);
        assert_eq!(Preset::Bi.dataset(0.01).config().feature_dim, 10);
    }

    #[test]
    #[should_panic(expected = "unknown vertex population")]
    fn unknown_population_panics() {
        let d = Preset::Bi.dataset(0.01);
        let _ = d.id_range("Item");
    }
}
