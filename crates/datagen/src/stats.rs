//! Dataset statistics — the generator of Table 1 rows.

use helios_types::{FxHashMap, GraphUpdate};

/// A Table 1 row: dataset statistics computed from a replayed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Distinct vertices observed (inserted or referenced by edges).
    pub vertices: u64,
    /// Edge events.
    pub edges: u64,
    /// Feature dimensionality observed on vertex updates.
    pub feature_dim: usize,
    /// Maximum out-degree.
    pub max_out_degree: u64,
    /// Minimum out-degree (0 if some vertex never sources an edge).
    pub min_out_degree: u64,
    /// Mean out-degree over all observed vertices.
    pub avg_out_degree: f64,
}

/// Compute statistics by replaying an event stream.
pub fn compute_stats(events: impl Iterator<Item = GraphUpdate>) -> DatasetStats {
    let mut out_degree: FxHashMap<u64, u64> = FxHashMap::default();
    let mut edges = 0u64;
    let mut feature_dim = 0usize;
    for ev in events {
        match ev {
            GraphUpdate::Vertex(v) => {
                feature_dim = feature_dim.max(v.feature.len());
                out_degree.entry(v.id.raw()).or_insert(0);
            }
            GraphUpdate::Edge(e) => {
                *out_degree.entry(e.src.raw()).or_insert(0) += 1;
                out_degree.entry(e.dst.raw()).or_insert(0);
                edges += 1;
            }
        }
    }
    let vertices = out_degree.len() as u64;
    let max = out_degree.values().copied().max().unwrap_or(0);
    let min = out_degree.values().copied().min().unwrap_or(0);
    let avg = if vertices == 0 {
        0.0
    } else {
        edges as f64 / vertices as f64
    };
    DatasetStats {
        vertices,
        edges,
        feature_dim,
        max_out_degree: max,
        min_out_degree: min,
        avg_out_degree: avg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Preset;

    #[test]
    fn stats_reflect_generated_stream() {
        let d = Preset::Bi.dataset(0.005);
        let st = compute_stats(d.events());
        assert_eq!(st.vertices, d.total_vertices());
        assert_eq!(st.edges, d.total_edges());
        assert_eq!(st.feature_dim, 10);
        assert!(st.max_out_degree > st.min_out_degree);
        assert!(st.avg_out_degree > 0.0);
    }

    #[test]
    fn shapes_match_table1_ordering() {
        // INTER must be much denser than BI (paper: 95 vs 1.26 average
        // out-degree); FIN's supernodes dwarf its average.
        let bi = compute_stats(Preset::Bi.dataset(0.005).events());
        let inter = compute_stats(Preset::Inter.dataset(0.005).events());
        let fin = compute_stats(Preset::Fin.dataset(0.005).events());
        assert!(
            inter.avg_out_degree > bi.avg_out_degree * 10.0,
            "INTER {:.2} vs BI {:.2}",
            inter.avg_out_degree,
            bi.avg_out_degree
        );
        // FIN's vertex population is tiny relative to its edge count, so
        // the *average* degree is already huge; the supernode still has to
        // dominate it clearly.
        assert!(
            fin.max_out_degree as f64 > fin.avg_out_degree * 3.0,
            "FIN supernode: max {} avg {:.2}",
            fin.max_out_degree,
            fin.avg_out_degree
        );
    }

    #[test]
    fn empty_stream() {
        let st = compute_stats(std::iter::empty());
        assert_eq!(st.vertices, 0);
        assert_eq!(st.edges, 0);
        assert_eq!(st.avg_out_degree, 0.0);
    }
}
