//! The K-hop sampling result assembled by serving workers and consumed by
//! GNN inference.

use helios_types::{FxHashMap, FxHashSet, VertexId};

/// Samples of a single hop: for every parent vertex of the previous
/// frontier, the list of sampled neighbors (`groups` preserves parent
/// order, so the GNN layer can aggregate children into the right parent).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HopSamples {
    /// `(parent, sampled children)` pairs in frontier order.
    pub groups: Vec<(VertexId, Vec<VertexId>)>,
}

impl HopSamples {
    /// All sampled vertices of this hop, in order, with duplicates (a
    /// vertex can be sampled under several parents).
    pub fn flat(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.groups.iter().flat_map(|(_, c)| c.iter().copied())
    }

    /// Number of sampled (parent, child) edges in this hop.
    pub fn edge_count(&self) -> usize {
        self.groups.iter().map(|(_, c)| c.len()).sum()
    }
}

/// A complete K-hop sampled subgraph for one seed vertex, together with
/// the features of every vertex it references.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampledSubgraph {
    /// The inference seed.
    pub seed: VertexId,
    /// Per-hop samples; `hops[0]` are the seed's direct samples.
    pub hops: Vec<HopSamples>,
    /// Feature vectors for the seed and all sampled vertices. Vertices
    /// whose features have not arrived yet (eventual consistency, §6) are
    /// absent; the model layer substitutes zeros.
    pub features: FxHashMap<VertexId, Vec<f32>>,
}

impl SampledSubgraph {
    /// New empty result for a seed.
    pub fn new(seed: VertexId) -> Self {
        SampledSubgraph {
            seed,
            hops: Vec::new(),
            features: FxHashMap::default(),
        }
    }

    /// Number of hops in the result.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The frontier *entering* hop `k`: the seed for `k == 0`, otherwise
    /// the flattened samples of hop `k-1` (with duplicates, in order).
    pub fn frontier(&self, k: usize) -> Vec<VertexId> {
        if k == 0 {
            vec![self.seed]
        } else {
            self.hops
                .get(k - 1)
                .map(|h| h.flat().collect())
                .unwrap_or_default()
        }
    }

    /// Every distinct vertex mentioned (seed + all samples).
    pub fn all_vertices(&self) -> FxHashSet<VertexId> {
        let mut s = FxHashSet::default();
        s.insert(self.seed);
        for h in &self.hops {
            for v in h.flat() {
                s.insert(v);
            }
        }
        s
    }

    /// Total sampled edges across hops (the "size" of the subgraph).
    pub fn sampled_edge_count(&self) -> usize {
        self.hops.iter().map(HopSamples::edge_count).sum()
    }

    /// Fraction of referenced vertices whose features are present — a
    /// staleness measure under eventual consistency.
    pub fn feature_coverage(&self) -> f64 {
        let all = self.all_vertices();
        if all.is_empty() {
            return 1.0;
        }
        let have = all.iter().filter(|v| self.features.contains_key(v)).count();
        have as f64 / all.len() as f64
    }

    /// Feature of `v`, or `None` if it has not been propagated yet.
    pub fn feature(&self, v: VertexId) -> Option<&[f32]> {
        self.features.get(&v).map(Vec::as_slice)
    }

    /// Owned half of the encode path: serialize into the canonical
    /// response wire form (see [`SubgraphView::encode_into`] for the
    /// borrowed half, which produces byte-identical output for the same
    /// logical content). Features are ordered by vertex id, so the bytes
    /// are a *normalized* form — two equivalent results encode
    /// identically regardless of map iteration order or assembly path.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seed.raw().to_le_bytes());
        out.extend_from_slice(&(self.hops.len() as u32).to_le_bytes());
        for hop in &self.hops {
            out.extend_from_slice(&(hop.groups.len() as u32).to_le_bytes());
            for (parent, children) in &hop.groups {
                out.extend_from_slice(&parent.raw().to_le_bytes());
                out.extend_from_slice(&(children.len() as u32).to_le_bytes());
                for c in children {
                    out.extend_from_slice(&c.raw().to_le_bytes());
                }
            }
        }
        let mut order: Vec<VertexId> = self.features.keys().copied().collect();
        order.sort_unstable_by_key(|v| v.raw());
        out.extend_from_slice(&(order.len() as u32).to_le_bytes());
        for v in order {
            let f = &self.features[&v];
            out.extend_from_slice(&v.raw().to_le_bytes());
            out.extend_from_slice(&(f.len() as u32).to_le_bytes());
            for x in f {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
}

/// `(parent, start, len)` of one parent's children within the arena's
/// flat vertex storage.
#[derive(Debug, Clone, Copy)]
struct GroupRef {
    parent: VertexId,
    start: u32,
    len: u32,
}

/// `(vertex, start, len)` of one feature vector within the arena's flat
/// f32 storage.
#[derive(Debug, Clone, Copy)]
struct FeatRef {
    vertex: VertexId,
    start: u32,
    len: u32,
}

/// A preallocated, reusable response arena for assembling one K-hop
/// result without per-group or per-feature heap allocations.
///
/// Where [`SampledSubgraph`] owns one `Vec` per parent's children and one
/// `Vec<f32>` per feature vector, the arena stores all children in one
/// flat vertex buffer and all features in one flat f32 buffer, with
/// `(start, len)` references on top. [`SubgraphArena::reset`] keeps the
/// buffers' capacity, so a serve lane reaches a steady state where
/// assembling a result allocates nothing at all. [`SubgraphArena::view`]
/// borrows the assembled result for encoding or owned conversion.
#[derive(Debug, Default)]
pub struct SubgraphArena {
    seed: VertexId,
    /// Flat children storage, all hops concatenated in assembly order.
    verts: Vec<VertexId>,
    /// Per-parent group references, all hops concatenated.
    groups: Vec<GroupRef>,
    /// End index into `groups` for each finished hop.
    hop_ends: Vec<u32>,
    /// Flat feature storage.
    feat_data: Vec<f32>,
    /// Per-vertex feature references.
    feats: Vec<FeatRef>,
}

impl SubgraphArena {
    /// New empty arena.
    pub fn new() -> Self {
        SubgraphArena::default()
    }

    /// Clear for a new request, keeping all buffer capacity.
    pub fn reset(&mut self, seed: VertexId) {
        self.seed = seed;
        self.verts.clear();
        self.groups.clear();
        self.hop_ends.clear();
        self.feat_data.clear();
        self.feats.clear();
    }

    /// The seed this arena is assembling for.
    pub fn seed(&self) -> VertexId {
        self.seed
    }

    /// Bytes of buffer capacity this arena holds onto across resets —
    /// the steady-state footprint a serve lane pays for its reuse. Used
    /// by the serving worker's scratch accounting.
    pub fn capacity_bytes(&self) -> usize {
        self.verts.capacity() * std::mem::size_of::<VertexId>()
            + self.groups.capacity() * std::mem::size_of::<GroupRef>()
            + self.hop_ends.capacity() * std::mem::size_of::<u32>()
            + self.feat_data.capacity() * std::mem::size_of::<f32>()
            + self.feats.capacity() * std::mem::size_of::<FeatRef>()
    }

    /// Open a new `(parent, children)` group in the current hop.
    pub fn begin_group(&mut self, parent: VertexId) {
        self.groups.push(GroupRef {
            parent,
            start: self.verts.len() as u32,
            len: 0,
        });
    }

    /// Append one sampled child to the group opened last.
    #[inline]
    pub fn push_child(&mut self, v: VertexId) {
        debug_assert!(!self.groups.is_empty(), "push_child before begin_group");
        self.verts.push(v);
        if let Some(g) = self.groups.last_mut() {
            g.len += 1;
        }
    }

    /// Close the current hop (the groups opened since the previous
    /// [`SubgraphArena::end_hop`] form it).
    pub fn end_hop(&mut self) {
        self.hop_ends.push(self.groups.len() as u32);
    }

    /// Number of finished hops.
    pub fn hop_count(&self) -> usize {
        self.hop_ends.len()
    }

    /// All children sampled in the last finished hop — the frontier
    /// entering the next hop (duplicates preserved, in order).
    pub fn last_hop_children(&self) -> &[VertexId] {
        let hops = self.hop_ends.len();
        if hops == 0 {
            return &[];
        }
        let gstart = if hops >= 2 {
            self.hop_ends[hops - 2] as usize
        } else {
            0
        };
        let vstart = self
            .groups
            .get(gstart)
            .map(|g| g.start as usize)
            .unwrap_or(self.verts.len());
        &self.verts[vstart..]
    }

    /// Decode one wire-encoded feature vector (`u32` count + f32 LE
    /// values, the cache's value format) straight into the flat feature
    /// storage — no intermediate `Vec<f32>`. Returns `false` (appending
    /// nothing) when the payload is malformed.
    pub fn push_feature_raw(&mut self, v: VertexId, raw: &[u8]) -> bool {
        if raw.len() < 4 {
            return false;
        }
        let n = u32::from_le_bytes(raw[..4].try_into().unwrap()) as usize;
        if raw.len() != 4 + n * 4 {
            return false;
        }
        let start = self.feat_data.len() as u32;
        self.feat_data.extend(
            raw[4..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
        );
        self.feats.push(FeatRef {
            vertex: v,
            start,
            len: n as u32,
        });
        true
    }

    /// Number of feature vectors gathered.
    pub fn feature_count(&self) -> usize {
        self.feats.len()
    }

    /// Every child sampled so far, all hops flattened, duplicates
    /// preserved (the seed is not included). The serve path's feature
    /// gather deduplicates `seed ∪ sampled_vertices()` for its lookups.
    pub fn sampled_vertices(&self) -> &[VertexId] {
        &self.verts
    }

    /// Borrow the assembled result.
    pub fn view(&self) -> SubgraphView<'_> {
        SubgraphView { arena: self }
    }
}

/// A borrowed view of an arena-assembled K-hop result: the *borrowed*
/// half of the encode path. Everything it exposes references the arena's
/// flat buffers; converting to the classic owned [`SampledSubgraph`] (one
/// allocation per group and per feature) is explicit via
/// [`SubgraphView::to_subgraph`].
#[derive(Debug, Clone, Copy)]
pub struct SubgraphView<'a> {
    arena: &'a SubgraphArena,
}

impl<'a> SubgraphView<'a> {
    /// The inference seed.
    pub fn seed(&self) -> VertexId {
        self.arena.seed
    }

    /// Number of hops.
    pub fn hop_count(&self) -> usize {
        self.arena.hop_ends.len()
    }

    /// `(parent, children)` groups of hop `k`, borrowing the flat arena
    /// storage.
    pub fn groups(&self, k: usize) -> impl Iterator<Item = (VertexId, &'a [VertexId])> + 'a {
        let end = self.arena.hop_ends.get(k).map(|&e| e as usize).unwrap_or(0);
        let start = if k == 0 {
            0
        } else {
            self.arena.hop_ends[k - 1] as usize
        };
        let arena = self.arena;
        arena.groups[start.min(end)..end].iter().map(move |g| {
            (
                g.parent,
                &arena.verts[g.start as usize..(g.start + g.len) as usize],
            )
        })
    }

    /// Gathered `(vertex, feature)` pairs in assembly order.
    pub fn features(&self) -> impl Iterator<Item = (VertexId, &'a [f32])> + 'a {
        let arena = self.arena;
        arena.feats.iter().map(move |f| {
            (
                f.vertex,
                &arena.feat_data[f.start as usize..(f.start + f.len) as usize],
            )
        })
    }

    /// Total sampled edges across hops.
    pub fn sampled_edge_count(&self) -> usize {
        self.arena.verts.len()
    }

    /// Owned conversion: materialize the classic per-group/per-feature
    /// allocated [`SampledSubgraph`] handed to the model layer.
    pub fn to_subgraph(&self) -> SampledSubgraph {
        let mut out = SampledSubgraph::new(self.arena.seed);
        out.hops.reserve(self.hop_count());
        for k in 0..self.hop_count() {
            let mut hs = HopSamples::default();
            for (parent, children) in self.groups(k) {
                hs.groups.push((parent, children.to_vec()));
            }
            out.hops.push(hs);
        }
        out.features.reserve(self.arena.feats.len());
        for (v, f) in self.features() {
            out.features.insert(v, f.to_vec());
        }
        out
    }

    /// Borrowed half of the encode path: serialize straight from the
    /// arena into `out`, producing bytes identical to
    /// [`SampledSubgraph::encode_into`] on the equivalent owned result —
    /// no owned subgraph is ever constructed.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let arena = self.arena;
        out.extend_from_slice(&arena.seed.raw().to_le_bytes());
        out.extend_from_slice(&(arena.hop_ends.len() as u32).to_le_bytes());
        for k in 0..arena.hop_ends.len() {
            let end = arena.hop_ends[k] as usize;
            let start = if k == 0 {
                0
            } else {
                arena.hop_ends[k - 1] as usize
            };
            out.extend_from_slice(&((end - start) as u32).to_le_bytes());
            for g in &arena.groups[start..end] {
                out.extend_from_slice(&g.parent.raw().to_le_bytes());
                out.extend_from_slice(&g.len.to_le_bytes());
                for c in &arena.verts[g.start as usize..(g.start + g.len) as usize] {
                    out.extend_from_slice(&c.raw().to_le_bytes());
                }
            }
        }
        // Normalized feature order (by vertex id), matching the owned
        // encoder. The index sort is the only allocation on this path.
        let mut order: Vec<u32> = (0..arena.feats.len() as u32).collect();
        order.sort_unstable_by_key(|&i| arena.feats[i as usize].vertex.raw());
        out.extend_from_slice(&(order.len() as u32).to_le_bytes());
        for i in order {
            let f = arena.feats[i as usize];
            out.extend_from_slice(&f.vertex.raw().to_le_bytes());
            out.extend_from_slice(&f.len.to_le_bytes());
            for x in &arena.feat_data[f.start as usize..(f.start + f.len) as usize] {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hop_result() -> SampledSubgraph {
        let mut r = SampledSubgraph::new(VertexId(1));
        r.hops.push(HopSamples {
            groups: vec![(VertexId(1), vec![VertexId(10), VertexId(11)])],
        });
        r.hops.push(HopSamples {
            groups: vec![
                (VertexId(10), vec![VertexId(20), VertexId(21)]),
                (VertexId(11), vec![VertexId(20)]), // shared neighbor
            ],
        });
        for v in [1u64, 10, 11, 20, 21] {
            r.features.insert(VertexId(v), vec![v as f32; 4]);
        }
        r
    }

    #[test]
    fn frontiers() {
        let r = two_hop_result();
        assert_eq!(r.frontier(0), vec![VertexId(1)]);
        assert_eq!(r.frontier(1), vec![VertexId(10), VertexId(11)]);
        assert_eq!(
            r.frontier(2),
            vec![VertexId(20), VertexId(21), VertexId(20)]
        );
        assert!(r.frontier(3).is_empty());
    }

    #[test]
    fn vertex_and_edge_accounting() {
        let r = two_hop_result();
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.sampled_edge_count(), 5);
        let all = r.all_vertices();
        assert_eq!(all.len(), 5); // 1, 10, 11, 20, 21 (20 deduped)
        assert!(all.contains(&VertexId(20)));
    }

    #[test]
    fn feature_coverage_reflects_missing() {
        let mut r = two_hop_result();
        assert_eq!(r.feature_coverage(), 1.0);
        r.features.remove(&VertexId(21));
        let cov = r.feature_coverage();
        assert!((cov - 0.8).abs() < 1e-9, "coverage {cov}");
        assert!(r.feature(VertexId(21)).is_none());
        assert_eq!(r.feature(VertexId(20)).unwrap().len(), 4);
    }

    #[test]
    fn empty_result_is_well_behaved() {
        let r = SampledSubgraph::new(VertexId(5));
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.sampled_edge_count(), 0);
        assert_eq!(r.all_vertices().len(), 1);
        assert_eq!(r.feature_coverage(), 0.0); // seed feature missing
    }

    /// Wire-encode one feature vector the way the cache stores it.
    fn raw_feature(vals: &[f32]) -> Vec<u8> {
        let mut raw = (vals.len() as u32).to_le_bytes().to_vec();
        for v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        raw
    }

    /// Assemble [`two_hop_result`] through the arena path. Features are
    /// pushed deliberately out of id order to exercise normalization.
    fn two_hop_arena() -> SubgraphArena {
        let mut a = SubgraphArena::new();
        a.reset(VertexId(1));
        a.begin_group(VertexId(1));
        a.push_child(VertexId(10));
        a.push_child(VertexId(11));
        a.end_hop();
        a.begin_group(VertexId(10));
        a.push_child(VertexId(20));
        a.push_child(VertexId(21));
        a.begin_group(VertexId(11));
        a.push_child(VertexId(20));
        a.end_hop();
        for v in [20u64, 1, 21, 10, 11] {
            assert!(a.push_feature_raw(VertexId(v), &raw_feature(&[v as f32; 4])));
        }
        a
    }

    #[test]
    fn arena_view_matches_owned_assembly() {
        let a = two_hop_arena();
        let view = a.view();
        assert_eq!(view.hop_count(), 2);
        assert_eq!(view.sampled_edge_count(), 5);
        assert_eq!(a.last_hop_children(), &[VertexId(20), VertexId(21), VertexId(20)]);
        let owned = view.to_subgraph();
        let reference = two_hop_result();
        assert_eq!(owned.seed, reference.seed);
        for k in 0..2 {
            assert_eq!(owned.hops[k].groups, reference.hops[k].groups);
        }
        assert_eq!(owned.features, reference.features);
    }

    #[test]
    fn borrowed_and_owned_encodes_are_byte_identical() {
        let a = two_hop_arena();
        let mut borrowed = Vec::new();
        a.view().encode_into(&mut borrowed);
        let mut owned = Vec::new();
        two_hop_result().encode_into(&mut owned);
        assert_eq!(borrowed, owned);
        // Owned conversion round-trips to the same normalized bytes too.
        let mut converted = Vec::new();
        a.view().to_subgraph().encode_into(&mut converted);
        assert_eq!(converted, owned);
    }

    #[test]
    fn arena_reset_reuses_capacity_and_clears_state() {
        let mut a = two_hop_arena();
        let mut first = Vec::new();
        a.view().encode_into(&mut first);
        a.reset(VertexId(99));
        assert_eq!(a.seed(), VertexId(99));
        assert_eq!(a.hop_count(), 0);
        assert_eq!(a.feature_count(), 0);
        assert!(a.last_hop_children().is_empty());
        // Rebuild the identical result under the original seed: no
        // leftovers from the previous request may leak in.
        let b = two_hop_arena();
        let mut second = Vec::new();
        b.view().encode_into(&mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn push_feature_raw_rejects_malformed_payloads() {
        let mut a = SubgraphArena::new();
        a.reset(VertexId(7));
        assert!(!a.push_feature_raw(VertexId(1), &[1, 2])); // short header
        let mut truncated = raw_feature(&[1.0, 2.0]);
        truncated.pop();
        assert!(!a.push_feature_raw(VertexId(1), &truncated));
        let mut oversized = raw_feature(&[1.0]);
        oversized.push(0);
        assert!(!a.push_feature_raw(VertexId(1), &oversized));
        assert_eq!(a.feature_count(), 0);
        assert!(a.push_feature_raw(VertexId(1), &raw_feature(&[]))); // empty vec is legal
        assert_eq!(a.feature_count(), 1);
    }

    #[test]
    fn empty_arena_encodes_like_empty_subgraph() {
        let mut a = SubgraphArena::new();
        a.reset(VertexId(5));
        let mut borrowed = Vec::new();
        a.view().encode_into(&mut borrowed);
        let mut owned = Vec::new();
        SampledSubgraph::new(VertexId(5)).encode_into(&mut owned);
        assert_eq!(borrowed, owned);
    }
}
