//! The K-hop sampling result assembled by serving workers and consumed by
//! GNN inference.

use helios_types::{FxHashMap, FxHashSet, VertexId};

/// Samples of a single hop: for every parent vertex of the previous
/// frontier, the list of sampled neighbors (`groups` preserves parent
/// order, so the GNN layer can aggregate children into the right parent).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HopSamples {
    /// `(parent, sampled children)` pairs in frontier order.
    pub groups: Vec<(VertexId, Vec<VertexId>)>,
}

impl HopSamples {
    /// All sampled vertices of this hop, in order, with duplicates (a
    /// vertex can be sampled under several parents).
    pub fn flat(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.groups.iter().flat_map(|(_, c)| c.iter().copied())
    }

    /// Number of sampled (parent, child) edges in this hop.
    pub fn edge_count(&self) -> usize {
        self.groups.iter().map(|(_, c)| c.len()).sum()
    }
}

/// A complete K-hop sampled subgraph for one seed vertex, together with
/// the features of every vertex it references.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampledSubgraph {
    /// The inference seed.
    pub seed: VertexId,
    /// Per-hop samples; `hops[0]` are the seed's direct samples.
    pub hops: Vec<HopSamples>,
    /// Feature vectors for the seed and all sampled vertices. Vertices
    /// whose features have not arrived yet (eventual consistency, §6) are
    /// absent; the model layer substitutes zeros.
    pub features: FxHashMap<VertexId, Vec<f32>>,
}

impl SampledSubgraph {
    /// New empty result for a seed.
    pub fn new(seed: VertexId) -> Self {
        SampledSubgraph {
            seed,
            hops: Vec::new(),
            features: FxHashMap::default(),
        }
    }

    /// Number of hops in the result.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The frontier *entering* hop `k`: the seed for `k == 0`, otherwise
    /// the flattened samples of hop `k-1` (with duplicates, in order).
    pub fn frontier(&self, k: usize) -> Vec<VertexId> {
        if k == 0 {
            vec![self.seed]
        } else {
            self.hops
                .get(k - 1)
                .map(|h| h.flat().collect())
                .unwrap_or_default()
        }
    }

    /// Every distinct vertex mentioned (seed + all samples).
    pub fn all_vertices(&self) -> FxHashSet<VertexId> {
        let mut s = FxHashSet::default();
        s.insert(self.seed);
        for h in &self.hops {
            for v in h.flat() {
                s.insert(v);
            }
        }
        s
    }

    /// Total sampled edges across hops (the "size" of the subgraph).
    pub fn sampled_edge_count(&self) -> usize {
        self.hops.iter().map(HopSamples::edge_count).sum()
    }

    /// Fraction of referenced vertices whose features are present — a
    /// staleness measure under eventual consistency.
    pub fn feature_coverage(&self) -> f64 {
        let all = self.all_vertices();
        if all.is_empty() {
            return 1.0;
        }
        let have = all.iter().filter(|v| self.features.contains_key(v)).count();
        have as f64 / all.len() as f64
    }

    /// Feature of `v`, or `None` if it has not been propagated yet.
    pub fn feature(&self, v: VertexId) -> Option<&[f32]> {
        self.features.get(&v).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hop_result() -> SampledSubgraph {
        let mut r = SampledSubgraph::new(VertexId(1));
        r.hops.push(HopSamples {
            groups: vec![(VertexId(1), vec![VertexId(10), VertexId(11)])],
        });
        r.hops.push(HopSamples {
            groups: vec![
                (VertexId(10), vec![VertexId(20), VertexId(21)]),
                (VertexId(11), vec![VertexId(20)]), // shared neighbor
            ],
        });
        for v in [1u64, 10, 11, 20, 21] {
            r.features.insert(VertexId(v), vec![v as f32; 4]);
        }
        r
    }

    #[test]
    fn frontiers() {
        let r = two_hop_result();
        assert_eq!(r.frontier(0), vec![VertexId(1)]);
        assert_eq!(r.frontier(1), vec![VertexId(10), VertexId(11)]);
        assert_eq!(
            r.frontier(2),
            vec![VertexId(20), VertexId(21), VertexId(20)]
        );
        assert!(r.frontier(3).is_empty());
    }

    #[test]
    fn vertex_and_edge_accounting() {
        let r = two_hop_result();
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.sampled_edge_count(), 5);
        let all = r.all_vertices();
        assert_eq!(all.len(), 5); // 1, 10, 11, 20, 21 (20 deduped)
        assert!(all.contains(&VertexId(20)));
    }

    #[test]
    fn feature_coverage_reflects_missing() {
        let mut r = two_hop_result();
        assert_eq!(r.feature_coverage(), 1.0);
        r.features.remove(&VertexId(21));
        let cov = r.feature_coverage();
        assert!((cov - 0.8).abs() < 1e-9, "coverage {cov}");
        assert!(r.feature(VertexId(21)).is_none());
        assert_eq!(r.feature(VertexId(20)).unwrap().len(), 4);
    }

    #[test]
    fn empty_result_is_well_behaved() {
        let r = SampledSubgraph::new(VertexId(5));
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.sampled_edge_count(), 0);
        assert_eq!(r.all_vertices().len(), 1);
        assert_eq!(r.feature_coverage(), 0.0); // seed feature missing
    }
}
