//! K-hop query specification, decomposition and dependency DAG (§5.1).

use crate::SamplingStrategy;
use helios_types::{EdgeType, HeliosError, QueryHopId, Result, VertexType};

/// One hop of a K-hop query: traverse `etype` edges from the current
/// frontier (whose vertices have type `src_type`) to `dst_type` vertices,
/// sampling `fanout` neighbors with `strategy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSpec {
    /// Edge label traversed by this hop.
    pub etype: EdgeType,
    /// Vertex label of the sampled neighbors.
    pub dst_type: VertexType,
    /// Number of neighbors to sample (the hop's fan-out).
    pub fanout: u32,
    /// Sampling strategy.
    pub strategy: SamplingStrategy,
}

/// A complete K-hop sampling query, as registered with the coordinator.
///
/// The *pattern* of the query (fan-outs, hop count, strategies) is fixed
/// by how the GNN model was trained — the paper's key insight — which is
/// what makes pre-sampling possible at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KHopQuery {
    seed_type: VertexType,
    hops: Vec<HopSpec>,
}

impl KHopQuery {
    /// Start building a query whose seeds have the given vertex label.
    pub fn builder(seed_type: VertexType) -> KHopQueryBuilder {
        KHopQueryBuilder {
            seed_type,
            hops: Vec::new(),
        }
    }

    /// Number of hops K.
    pub fn hops(&self) -> usize {
        self.hops.len()
    }

    /// Vertex label of seed vertices.
    pub fn seed_type(&self) -> VertexType {
        self.seed_type
    }

    /// The hop specifications in order.
    pub fn hop_specs(&self) -> &[HopSpec] {
        &self.hops
    }

    /// The fan-out vector `[C₁, …, C_K]`.
    pub fn fanouts(&self) -> Vec<u32> {
        self.hops.iter().map(|h| h.fanout).collect()
    }

    /// Upper bound on the number of *sample-table* lookups needed to build
    /// a complete K-hop result: `∏_{i=1}^{K-1} Cᵢ` plus the seed lookup
    /// (§6). Independent of vertex degree — the core of Helios's bounded
    /// tail latency.
    pub fn max_sample_lookups(&self) -> u64 {
        let mut total = 1u64; // the seed's own lookup in Q₁
        let mut frontier = 1u64;
        for h in &self.hops[..self.hops.len().saturating_sub(1)] {
            frontier *= u64::from(h.fanout);
            total += frontier;
        }
        total
    }

    /// Upper bound on the number of *feature-table* lookups:
    /// `∏_{i=1}^{K} Cᵢ` summed over hops, plus the seed's feature.
    pub fn max_feature_lookups(&self) -> u64 {
        let mut total = 1u64;
        let mut frontier = 1u64;
        for h in &self.hops {
            frontier *= u64::from(h.fanout);
            total += frontier;
        }
        total
    }

    /// Decompose into K one-hop queries (Fig. 1 → Q₁, Q₂, …).
    ///
    /// Hop k's *target* (key) vertex type is the neighbor type of hop k-1
    /// (the seed type for Q₁), and its input dependency is Q_{k-1}.
    pub fn decompose(&self) -> Vec<OneHopQuery> {
        let mut out = Vec::with_capacity(self.hops.len());
        let mut key_type = self.seed_type;
        for (i, h) in self.hops.iter().enumerate() {
            out.push(OneHopQuery {
                hop: QueryHopId(i as u16),
                key_type,
                etype: h.etype,
                neighbor_type: h.dst_type,
                fanout: h.fanout,
                strategy: h.strategy,
                upstream: if i == 0 {
                    None
                } else {
                    Some(QueryHopId((i - 1) as u16))
                },
            });
            key_type = h.dst_type;
        }
        out
    }

    /// Build the dependency DAG over the decomposed one-hop queries.
    pub fn dag(&self) -> QueryDag {
        QueryDag::from_query(self)
    }
}

/// Builder for [`KHopQuery`].
#[derive(Debug, Clone)]
pub struct KHopQueryBuilder {
    seed_type: VertexType,
    hops: Vec<HopSpec>,
}

impl KHopQueryBuilder {
    /// Append a hop: `.outV(etype).sample(fanout).by(strategy)` targeting
    /// `dst_type` vertices.
    pub fn hop(
        mut self,
        etype: EdgeType,
        dst_type: VertexType,
        fanout: u32,
        strategy: SamplingStrategy,
    ) -> Self {
        self.hops.push(HopSpec {
            etype,
            dst_type,
            fanout,
            strategy,
        });
        self
    }

    /// Validate and produce the query.
    pub fn build(self) -> Result<KHopQuery> {
        if self.hops.is_empty() {
            return Err(HeliosError::InvalidConfig(
                "a sampling query needs at least one hop".into(),
            ));
        }
        if let Some(h) = self.hops.iter().find(|h| h.fanout == 0) {
            return Err(HeliosError::InvalidConfig(format!(
                "hop on edge {:?} has zero fan-out",
                h.etype
            )));
        }
        if self.hops.len() > u16::MAX as usize {
            return Err(HeliosError::InvalidConfig("too many hops".into()));
        }
        Ok(KHopQuery {
            seed_type: self.seed_type,
            hops: self.hops,
        })
    }
}

/// A one-hop query Qₖ produced by decomposition. The unit of work for
/// sampling workers: each maintains one reservoir table per one-hop query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneHopQuery {
    /// Which hop this is (Q₁ = `QueryHopId(0)`).
    pub hop: QueryHopId,
    /// Vertex label of the *key* (target) vertices of this one-hop query —
    /// e.g. `User` for Q₁ in Fig. 1, `Item` for Q₂.
    pub key_type: VertexType,
    /// Edge label matched by this hop.
    pub etype: EdgeType,
    /// Vertex label of sampled neighbors.
    pub neighbor_type: VertexType,
    /// Fan-out (reservoir capacity).
    pub fanout: u32,
    /// Sampling strategy.
    pub strategy: SamplingStrategy,
    /// The one-hop query whose outputs feed this one (None for Q₁).
    pub upstream: Option<QueryHopId>,
}

impl OneHopQuery {
    /// Does an edge `(src_type --etype--> dst_type)` match this one-hop
    /// query (i.e. should it be offered to the reservoir of `src`)?
    #[inline]
    pub fn matches_edge(
        &self,
        src_type: VertexType,
        etype: EdgeType,
        dst_type: VertexType,
    ) -> bool {
        self.key_type == src_type && self.etype == etype && self.neighbor_type == dst_type
    }
}

/// The data-dependency DAG between one-hop queries, distributed by the
/// coordinator to all workers (§4.1). For chain queries this is a path
/// Q₁ → Q₂ → …; the representation supports general DAGs so future
/// multi-branch queries (e.g. two edge types from the same hop) fit.
#[derive(Debug, Clone, Default)]
pub struct QueryDag {
    nodes: Vec<OneHopQuery>,
    /// `downstream[i]` lists the indices of queries consuming Qᵢ's output.
    downstream: Vec<Vec<usize>>,
}

impl QueryDag {
    /// Build the DAG for a (chain) K-hop query.
    pub fn from_query(q: &KHopQuery) -> Self {
        let nodes = q.decompose();
        let mut downstream = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            if let Some(up) = n.upstream {
                downstream[up.index()].push(i);
            }
        }
        QueryDag { nodes, downstream }
    }

    /// All one-hop queries, topologically ordered (hop order).
    pub fn nodes(&self) -> &[OneHopQuery] {
        &self.nodes
    }

    /// The one-hop query for a hop id.
    pub fn node(&self, hop: QueryHopId) -> Option<&OneHopQuery> {
        self.nodes.get(hop.index())
    }

    /// Queries that consume the output of `hop` (Q_{k+1} for chains).
    pub fn downstream(&self, hop: QueryHopId) -> impl Iterator<Item = &OneHopQuery> {
        self.downstream
            .get(hop.index())
            .into_iter()
            .flatten()
            .map(|&i| &self.nodes[i])
    }

    /// Number of one-hop queries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG holds no queries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_query() -> KHopQuery {
        // User -Click-> Item -CoPurchase-> Item, fan-outs [2, 2]
        KHopQuery::builder(VertexType(0))
            .hop(EdgeType(0), VertexType(1), 2, SamplingStrategy::Random)
            .hop(EdgeType(1), VertexType(1), 2, SamplingStrategy::TopK)
            .build()
            .unwrap()
    }

    #[test]
    fn decompose_matches_fig1() {
        let q = fig1_query();
        let one_hop = q.decompose();
        assert_eq!(one_hop.len(), 2);

        let q1 = &one_hop[0];
        assert_eq!(q1.hop, QueryHopId(0));
        assert_eq!(q1.key_type, VertexType(0)); // User
        assert_eq!(q1.etype, EdgeType(0)); // Click
        assert_eq!(q1.neighbor_type, VertexType(1)); // Item
        assert_eq!(q1.strategy, SamplingStrategy::Random);
        assert_eq!(q1.upstream, None);

        let q2 = &one_hop[1];
        assert_eq!(q2.hop, QueryHopId(1));
        assert_eq!(q2.key_type, VertexType(1)); // Item (outputs of Q1)
        assert_eq!(q2.etype, EdgeType(1)); // CoPurchase
        assert_eq!(q2.strategy, SamplingStrategy::TopK);
        assert_eq!(q2.upstream, Some(QueryHopId(0)));
    }

    #[test]
    fn dag_downstream_links() {
        let q = fig1_query();
        let dag = q.dag();
        assert_eq!(dag.len(), 2);
        assert!(!dag.is_empty());
        let down: Vec<_> = dag.downstream(QueryHopId(0)).collect();
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].hop, QueryHopId(1));
        assert_eq!(dag.downstream(QueryHopId(1)).count(), 0);
        assert_eq!(dag.node(QueryHopId(1)).unwrap().etype, EdgeType(1));
        assert!(dag.node(QueryHopId(9)).is_none());
    }

    #[test]
    fn lookup_bounds_match_paper_formulas() {
        // Paper §6: sample lookups = ∏_{i=1}^{K-1} Cᵢ (+ seed),
        // feature lookups = ∏_{i=1}^{K} Cᵢ (+ …). For fan-outs [25, 10]:
        let q = KHopQuery::builder(VertexType(0))
            .hop(EdgeType(0), VertexType(1), 25, SamplingStrategy::TopK)
            .hop(EdgeType(1), VertexType(2), 10, SamplingStrategy::TopK)
            .build()
            .unwrap();
        // 1 (seed in Q1) + 25 (hop-1 samples in Q2)
        assert_eq!(q.max_sample_lookups(), 26);
        // 1 (seed) + 25 + 250
        assert_eq!(q.max_feature_lookups(), 276);
        assert_eq!(q.fanouts(), vec![25, 10]);
    }

    #[test]
    fn three_hop_decomposition_chains_types() {
        // Forum -Has-> Person -Knows-> Person -Knows-> Person
        let q = KHopQuery::builder(VertexType(0))
            .hop(EdgeType(0), VertexType(1), 25, SamplingStrategy::Random)
            .hop(EdgeType(1), VertexType(1), 10, SamplingStrategy::Random)
            .hop(EdgeType(1), VertexType(1), 5, SamplingStrategy::Random)
            .build()
            .unwrap();
        let hops = q.decompose();
        assert_eq!(hops[1].key_type, VertexType(1));
        assert_eq!(hops[2].key_type, VertexType(1));
        assert_eq!(hops[2].upstream, Some(QueryHopId(1)));
        assert_eq!(q.max_sample_lookups(), 1 + 25 + 250);
        assert_eq!(q.max_feature_lookups(), 1 + 25 + 250 + 1250);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(KHopQuery::builder(VertexType(0)).build().is_err());
        assert!(KHopQuery::builder(VertexType(0))
            .hop(EdgeType(0), VertexType(1), 0, SamplingStrategy::Random)
            .build()
            .is_err());
    }

    #[test]
    fn matches_edge_checks_all_three_labels() {
        let q = fig1_query();
        let q1 = q.decompose()[0];
        assert!(q1.matches_edge(VertexType(0), EdgeType(0), VertexType(1)));
        assert!(!q1.matches_edge(VertexType(1), EdgeType(0), VertexType(1)));
        assert!(!q1.matches_edge(VertexType(0), EdgeType(1), VertexType(1)));
        assert!(!q1.matches_edge(VertexType(0), EdgeType(0), VertexType(0)));
    }
}
