//! Graph schema registry: human-readable vertex/edge labels ↔ compact ids.

use helios_types::{EdgeType, FxHashMap, HeliosError, Result, VertexType};

/// Interns vertex/edge label names into compact ids and back.
///
/// Registration is idempotent: asking for an existing label returns the
/// id it was first given, so schemas can be rebuilt in any order.
#[derive(Debug, Default, Clone)]
pub struct Schema {
    vertex_names: Vec<String>,
    vertex_ids: FxHashMap<String, VertexType>,
    edge_names: Vec<String>,
    edge_ids: FxHashMap<String, EdgeType>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Intern (or look up) a vertex label.
    pub fn vertex_type(&mut self, name: &str) -> VertexType {
        if let Some(&id) = self.vertex_ids.get(name) {
            return id;
        }
        let id = VertexType(
            u16::try_from(self.vertex_names.len()).expect("more than 65535 vertex labels"),
        );
        self.vertex_names.push(name.to_string());
        self.vertex_ids.insert(name.to_string(), id);
        id
    }

    /// Intern (or look up) an edge label.
    pub fn edge_type(&mut self, name: &str) -> EdgeType {
        if let Some(&id) = self.edge_ids.get(name) {
            return id;
        }
        let id =
            EdgeType(u16::try_from(self.edge_names.len()).expect("more than 65535 edge labels"));
        self.edge_names.push(name.to_string());
        self.edge_ids.insert(name.to_string(), id);
        id
    }

    /// Look up a vertex label without interning.
    pub fn find_vertex_type(&self, name: &str) -> Result<VertexType> {
        self.vertex_ids
            .get(name)
            .copied()
            .ok_or_else(|| HeliosError::NotFound(format!("vertex label '{name}'")))
    }

    /// Look up an edge label without interning.
    pub fn find_edge_type(&self, name: &str) -> Result<EdgeType> {
        self.edge_ids
            .get(name)
            .copied()
            .ok_or_else(|| HeliosError::NotFound(format!("edge label '{name}'")))
    }

    /// Name of a vertex type id.
    pub fn vertex_name(&self, vt: VertexType) -> &str {
        self.vertex_names
            .get(vt.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Name of an edge type id.
    pub fn edge_name(&self, et: EdgeType) -> &str {
        self.edge_names
            .get(et.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Number of registered vertex labels.
    pub fn vertex_type_count(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of registered edge labels.
    pub fn edge_type_count(&self) -> usize {
        self.edge_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = Schema::new();
        let a = s.vertex_type("User");
        let b = s.vertex_type("Item");
        let a2 = s.vertex_type("User");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(s.vertex_type_count(), 2);
    }

    #[test]
    fn lookup_without_interning() {
        let mut s = Schema::new();
        s.edge_type("Click");
        assert!(s.find_edge_type("Click").is_ok());
        assert!(s.find_edge_type("Missing").is_err());
        assert!(s.find_vertex_type("Missing").is_err());
        assert_eq!(s.edge_type_count(), 1, "find must not intern");
    }

    #[test]
    fn names_roundtrip() {
        let mut s = Schema::new();
        let u = s.vertex_type("User");
        let c = s.edge_type("Click");
        assert_eq!(s.vertex_name(u), "User");
        assert_eq!(s.edge_name(c), "Click");
        assert_eq!(s.vertex_name(VertexType(99)), "<unknown>");
        assert_eq!(s.edge_name(EdgeType(99)), "<unknown>");
    }
}
