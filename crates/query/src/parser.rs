//! Parser for the Gremlin-like textual query language of Fig. 1.
//!
//! Accepted grammar (whitespace/newlines insignificant):
//!
//! ```text
//! query  := ["g."] "V(" label ["," ident] ")" { step } [".values"]
//! step   := ".alias(" label ")"                 // ignored
//!         | ".outV(" label "," label ")"        // edge label, dst vertex label
//!           ".sample(" int ")" ".by(" label ")" // fan-out, strategy
//! label  := "'" chars "'"
//! ```
//!
//! The paper's original syntax omits the destination vertex label because
//! the production system resolves it from the graph schema; here the
//! query text is self-contained instead, e.g.:
//!
//! ```text
//! g.V('User').outV('Click', 'Item').sample(2).by('Random')
//!            .outV('CoPurchase', 'Item').sample(2).by('TopK')
//! ```

use crate::schema::Schema;
use crate::spec::KHopQuery;
use crate::SamplingStrategy;
use helios_types::{HeliosError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(u64),
    LParen,
    RParen,
    Dot,
    Comma,
}

fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '.' => {
                chars.next();
                out.push(Token::Dot);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(HeliosError::InvalidConfig(
                                "unterminated string literal in query".into(),
                            ))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut n = 0u64;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(u64::from(v)))
                            .ok_or_else(|| {
                                HeliosError::InvalidConfig("integer overflow in query".into())
                            })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Int(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => {
                return Err(HeliosError::InvalidConfig(format!(
                    "unexpected character '{other}' in query"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| HeliosError::InvalidConfig("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(HeliosError::InvalidConfig(format!(
                "expected {t:?}, got {got:?}"
            )))
        }
    }

    fn expect_ident_ci(&mut self, name: &str) -> Result<()> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(name) => Ok(()),
            got => Err(HeliosError::InvalidConfig(format!(
                "expected '{name}', got {got:?}"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Token::Str(s) => Ok(s),
            got => Err(HeliosError::InvalidConfig(format!(
                "expected string literal, got {got:?}"
            ))),
        }
    }

    fn int(&mut self) -> Result<u64> {
        match self.next()? {
            Token::Int(n) => Ok(n),
            got => Err(HeliosError::InvalidConfig(format!(
                "expected integer, got {got:?}"
            ))),
        }
    }
}

/// Parse a textual query into a [`KHopQuery`], interning labels into
/// `schema`.
pub fn parse_query(input: &str, schema: &mut Schema) -> Result<KHopQuery> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };

    // optional "g."
    if matches!(p.peek(), Some(Token::Ident(s)) if s == "g") {
        p.next()?;
        p.expect(&Token::Dot)?;
    }

    // V('Label'[, ID])
    p.expect_ident_ci("V")?;
    p.expect(&Token::LParen)?;
    let seed_label = p.string()?;
    if matches!(p.peek(), Some(Token::Comma)) {
        p.next()?; // comma
        p.next()?; // the ID placeholder (ident or int), ignored
    }
    p.expect(&Token::RParen)?;

    let seed_type = schema.vertex_type(&seed_label);
    let mut builder = KHopQuery::builder(seed_type);

    // steps
    while matches!(p.peek(), Some(Token::Dot)) {
        p.next()?; // dot
        let step = match p.next()? {
            Token::Ident(s) => s,
            got => {
                return Err(HeliosError::InvalidConfig(format!(
                    "expected step name, got {got:?}"
                )))
            }
        };
        match step.to_ascii_lowercase().as_str() {
            "alias" => {
                p.expect(&Token::LParen)?;
                let _ = p.string()?;
                p.expect(&Token::RParen)?;
            }
            "values" => {
                // terminal marker; allow with or without parens
                if matches!(p.peek(), Some(Token::LParen)) {
                    p.next()?;
                    p.expect(&Token::RParen)?;
                }
                break;
            }
            "outv" => {
                p.expect(&Token::LParen)?;
                let edge_label = p.string()?;
                p.expect(&Token::Comma)?;
                let dst_label = p.string()?;
                p.expect(&Token::RParen)?;
                p.expect(&Token::Dot)?;
                p.expect_ident_ci("sample")?;
                p.expect(&Token::LParen)?;
                let fanout = p.int()?;
                p.expect(&Token::RParen)?;
                p.expect(&Token::Dot)?;
                p.expect_ident_ci("by")?;
                p.expect(&Token::LParen)?;
                let strat = p.string()?;
                p.expect(&Token::RParen)?;

                let etype = schema.edge_type(&edge_label);
                let dst_type = schema.vertex_type(&dst_label);
                let strategy = SamplingStrategy::parse(&strat)?;
                let fanout = u32::try_from(fanout).map_err(|_| {
                    HeliosError::InvalidConfig(format!("fan-out {fanout} too large"))
                })?;
                builder = builder.hop(etype, dst_type, fanout, strategy);
            }
            other => {
                return Err(HeliosError::InvalidConfig(format!(
                    "unknown query step '{other}'"
                )))
            }
        }
    }

    if p.peek().is_some() {
        return Err(HeliosError::InvalidConfig(format!(
            "trailing tokens after query: {:?}",
            p.peek()
        )));
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_types::QueryHopId;

    #[test]
    fn parses_fig1_query() {
        let mut schema = Schema::new();
        let q = parse_query(
            "g.V('User', ID).alias('Seed')\
             .outV('Click', 'Item').sample(2).by('Random')\
             .outV('CoPurchase', 'Item').sample(2).by('TopK').values",
            &mut schema,
        )
        .unwrap();
        assert_eq!(q.hops(), 2);
        assert_eq!(q.fanouts(), vec![2, 2]);
        let hops = q.decompose();
        assert_eq!(hops[0].strategy, SamplingStrategy::Random);
        assert_eq!(hops[1].strategy, SamplingStrategy::TopK);
        assert_eq!(hops[1].upstream, Some(QueryHopId(0)));
        assert_eq!(schema.vertex_name(q.seed_type()), "User");
        assert_eq!(schema.edge_name(hops[0].etype), "Click");
    }

    #[test]
    fn parses_without_optional_pieces() {
        let mut schema = Schema::new();
        let q = parse_query(
            "V('Account').outV('TransferTo', 'Account').sample(25).by('TopK')",
            &mut schema,
        )
        .unwrap();
        assert_eq!(q.hops(), 1);
        assert_eq!(q.fanouts(), vec![25]);
    }

    #[test]
    fn parses_three_hop_inter_query() {
        let mut schema = Schema::new();
        let q = parse_query(
            "g.V('Forum').outV('Has', 'Person').sample(25).by('Random')\
             .outV('Knows', 'Person').sample(10).by('Random')\
             .outV('Knows', 'Person').sample(5).by('Random')",
            &mut schema,
        )
        .unwrap();
        assert_eq!(q.hops(), 3);
        assert_eq!(q.fanouts(), vec![25, 10, 5]);
    }

    #[test]
    fn rejects_malformed_queries() {
        let mut s = Schema::new();
        for bad in [
            "",
            "V('User')",                                             // zero hops
            "V('User').outV('Click','Item').sample(0).by('Random')", // zero fan-out
            "V('User').outV('Click','Item').sample(2).by('Bogus')",  // bad strategy
            "V('User').outV('Click').sample(2).by('Random')",        // missing dst label
            "V(User)",                                               // unquoted label
            "V('User').outV('Click','Item').sample(2).by('Random') trailing",
            "V('User').fooV('Click','Item')", // unknown step
            "V('Unterminated",
            "V('User').outV('Click','Item').sample(99999999999999999999).by('Random')",
        ] {
            assert!(parse_query(bad, &mut s).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn case_insensitive_step_names() {
        let mut s = Schema::new();
        let q = parse_query(
            "g.V('User').OutV('Click', 'Item').Sample(3).By('Random')",
            &mut s,
        )
        .unwrap();
        assert_eq!(q.fanouts(), vec![3]);
    }

    #[test]
    fn labels_shared_across_queries_via_schema() {
        let mut s = Schema::new();
        let q1 = parse_query(
            "V('User').outV('Click','Item').sample(2).by('Random')",
            &mut s,
        )
        .unwrap();
        let q2 = parse_query(
            "V('User').outV('View','Item').sample(2).by('Random')",
            &mut s,
        )
        .unwrap();
        assert_eq!(q1.seed_type(), q2.seed_type());
        assert_ne!(q1.decompose()[0].etype, q2.decompose()[0].etype);
    }
}
