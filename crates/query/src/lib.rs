//! # helios-query
//!
//! The sampling-query layer of Helios: a Gremlin-like builder and parser
//! for K-hop sampling queries (Fig. 1 of the paper), decomposition of a
//! K-hop query into K one-hop queries with a dependency DAG (§5.1), a
//! graph schema registry (vertex/edge label names ↔ compact ids), and the
//! [`SampledSubgraph`] result type that serving workers assemble and GNN
//! models consume.
//!
//! ```
//! use helios_query::{KHopQuery, SamplingStrategy, Schema};
//!
//! let mut schema = Schema::new();
//! let user = schema.vertex_type("User");
//! let item = schema.vertex_type("Item");
//! let click = schema.edge_type("Click");
//! let copurchase = schema.edge_type("CoPurchase");
//!
//! // The 2-hop e-commerce query of Fig. 1:
//! let q = KHopQuery::builder(user)
//!     .hop(click, item, 2, SamplingStrategy::Random)
//!     .hop(copurchase, item, 2, SamplingStrategy::TopK)
//!     .build()
//!     .unwrap();
//! assert_eq!(q.hops(), 2);
//! let one_hop = q.decompose();
//! assert_eq!(one_hop.len(), 2);
//! ```

pub mod parser;
pub mod result;
pub mod schema;
pub mod spec;

pub use parser::parse_query;
pub use result::{HopSamples, SampledSubgraph, SubgraphArena, SubgraphView};
pub use schema::Schema;
pub use spec::{KHopQuery, KHopQueryBuilder, OneHopQuery, QueryDag};

// Re-export the strategy type so query users don't need helios-sampling
// just to name a strategy.
pub use strategy::SamplingStrategy;

/// A local mirror of the sampling strategy enum.
///
/// `helios-query` sits *below* `helios-sampling` in the dependency order
/// conceptually (queries don't sample), so rather than depending on the
/// sampling crate for one enum, the strategy is defined in both crates
/// with conversion glue in `helios-core`. The variants and string names
/// are identical by construction (see tests).
mod strategy {
    use helios_types::{HeliosError, Result};

    /// Neighbor-selection strategy of a one-hop query.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum SamplingStrategy {
        /// Uniform over all edge updates (reservoir Algorithm R).
        Random,
        /// K largest timestamps.
        TopK,
        /// Probability proportional to edge weight.
        EdgeWeight,
    }

    impl SamplingStrategy {
        /// Canonical name as it appears in query strings.
        pub fn name(self) -> &'static str {
            match self {
                SamplingStrategy::Random => "Random",
                SamplingStrategy::TopK => "TopK",
                SamplingStrategy::EdgeWeight => "EdgeWeight",
            }
        }

        /// Parse a query-string token.
        pub fn parse(s: &str) -> Result<Self> {
            match s {
                "Random" => Ok(SamplingStrategy::Random),
                "TopK" => Ok(SamplingStrategy::TopK),
                "EdgeWeight" => Ok(SamplingStrategy::EdgeWeight),
                other => Err(HeliosError::InvalidConfig(format!(
                    "unknown sampling strategy '{other}'"
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_stable() {
        assert_eq!(SamplingStrategy::Random.name(), "Random");
        assert_eq!(SamplingStrategy::TopK.name(), "TopK");
        assert_eq!(SamplingStrategy::EdgeWeight.name(), "EdgeWeight");
        for n in ["Random", "TopK", "EdgeWeight"] {
            assert_eq!(SamplingStrategy::parse(n).unwrap().name(), n);
        }
        assert!(SamplingStrategy::parse("nope").is_err());
    }
}
