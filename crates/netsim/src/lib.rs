//! # helios-netsim
//!
//! A calibrated network cost model for the "threads-as-machines"
//! deployment. The paper's cluster has a 10 Gbps network; distributed
//! multi-hop sampling pays one cross-machine round trip per hop (§3.2),
//! which is the effect this crate injects.
//!
//! The model charges `rtt + bytes / bandwidth` per message and actually
//! *sleeps* for that duration, so latency histograms measured by the
//! experiment harnesses include realistic network time. All traffic is
//! also counted, so harnesses can report messages/bytes per query
//! (Fig. 4(d)'s communication-overhead analysis).
//!
//! Scaling: experiments run with an RTT a few hundred µs by default —
//! loopback-scaled but preserving the *ratios* that matter (a 3-hop query
//! pays 1.5× the rounds of a 2-hop query regardless of the absolute RTT).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Network parameters for simulated cross-machine links.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// One-way latency charged per message.
    pub rtt: Duration,
    /// Link bandwidth in bytes/second.
    pub bandwidth_bps: u64,
}

impl NetworkConfig {
    /// The paper's testbed, scaled for a single machine: 200 µs RTT,
    /// 10 Gbps (= 1.25 GB/s) links.
    pub fn paper_scaled() -> Self {
        NetworkConfig {
            rtt: Duration::from_micros(200),
            bandwidth_bps: 1_250_000_000,
        }
    }

    /// A zero-cost network (co-located workers).
    pub fn zero() -> Self {
        NetworkConfig {
            rtt: Duration::ZERO,
            bandwidth_bps: u64::MAX,
        }
    }

    /// Delay for transferring `bytes` over this link.
    pub fn delay_for(&self, bytes: usize) -> Duration {
        if self.bandwidth_bps == u64::MAX {
            return self.rtt;
        }
        let transfer_ns = (bytes as u128 * 1_000_000_000) / self.bandwidth_bps as u128;
        self.rtt + Duration::from_nanos(transfer_ns.min(u128::from(u64::MAX)) as u64)
    }
}

/// Cumulative traffic counters for a simulated network.
#[derive(Debug, Default)]
pub struct TrafficStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl TrafficStats {
    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset both counters.
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

/// A simulated cluster network: nodes are identified by index; messages
/// between different nodes pay the configured delay, messages within a
/// node are free.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    stats: Arc<TrafficStats>,
}

impl Network {
    /// New network with the given link parameters.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            stats: Arc::new(TrafficStats::default()),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Shared traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Simulate sending `bytes` from node `from` to node `to`: sleeps for
    /// the modelled delay (nothing for intra-node traffic) and accounts
    /// the transfer. Returns the charged delay.
    pub fn transfer(&self, from: usize, to: usize, bytes: usize) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let d = self.config.delay_for(bytes);
        if !d.is_zero() {
            spin_sleep(d);
        }
        d
    }

    /// Account a transfer without sleeping (for closed-form cost
    /// analyses).
    pub fn charge_only(&self, from: usize, to: usize, bytes: usize) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.config.delay_for(bytes)
    }
}

/// Sleep with sub-millisecond fidelity: OS sleep for the bulk, spin for
/// the tail. `thread::sleep` alone oversleeps badly below ~1 ms, which
/// would distort every latency figure.
pub fn spin_sleep(d: Duration) {
    let start = std::time::Instant::now();
    if d > Duration::from_micros(300) {
        std::thread::sleep(d - Duration::from_micros(200));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn delay_combines_rtt_and_bandwidth() {
        let c = NetworkConfig {
            rtt: Duration::from_micros(100),
            bandwidth_bps: 1_000_000, // 1 MB/s
        };
        // 1000 bytes at 1 MB/s = 1 ms transfer + 100 µs RTT
        let d = c.delay_for(1000);
        assert_eq!(d, Duration::from_micros(1100));
        assert_eq!(c.delay_for(0), Duration::from_micros(100));
    }

    #[test]
    fn zero_network_is_free_of_transfer_cost() {
        let c = NetworkConfig::zero();
        assert_eq!(c.delay_for(1 << 30), Duration::ZERO);
    }

    #[test]
    fn intra_node_transfers_are_free_and_uncounted() {
        let n = Network::new(NetworkConfig::paper_scaled());
        let d = n.transfer(2, 2, 10_000);
        assert_eq!(d, Duration::ZERO);
        assert_eq!(n.stats().messages(), 0);
        assert_eq!(n.stats().bytes(), 0);
    }

    #[test]
    fn cross_node_transfers_sleep_and_count() {
        let n = Network::new(NetworkConfig {
            rtt: Duration::from_micros(500),
            bandwidth_bps: u64::MAX,
        });
        let start = Instant::now();
        n.transfer(0, 1, 100);
        n.transfer(1, 0, 200);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(1000), "slept {elapsed:?}");
        assert_eq!(n.stats().messages(), 2);
        assert_eq!(n.stats().bytes(), 300);
        n.stats().reset();
        assert_eq!(n.stats().messages(), 0);
    }

    #[test]
    fn charge_only_counts_without_sleeping() {
        let n = Network::new(NetworkConfig {
            rtt: Duration::from_secs(10),
            bandwidth_bps: u64::MAX,
        });
        let start = Instant::now();
        let d = n.charge_only(0, 1, 50);
        assert!(start.elapsed() < Duration::from_millis(100));
        assert_eq!(d, Duration::from_secs(10));
        assert_eq!(n.stats().messages(), 1);
    }

    #[test]
    fn spin_sleep_is_accurate_at_microsecond_scale() {
        for &us in &[50u64, 200, 800] {
            let d = Duration::from_micros(us);
            let start = Instant::now();
            spin_sleep(d);
            let e = start.elapsed();
            assert!(e >= d, "slept {e:?} < {d:?}");
            assert!(
                e < d + Duration::from_millis(2),
                "overslept {e:?} for {d:?}"
            );
        }
    }

    #[test]
    fn network_clone_shares_stats() {
        let n = Network::new(NetworkConfig::paper_scaled());
        let n2 = n.clone();
        n.charge_only(0, 1, 10);
        n2.charge_only(1, 2, 10);
        assert_eq!(n.stats().messages(), 2);
    }
}
