//! The per-vertex reservoir cell and the three sampling strategies.

use bytes::{Buf, BytesMut};
use helios_types::{Decode, Encode, HeliosError, Result, Timestamp, VertexId};
use rand::Rng;

/// How a one-hop query selects neighbors (`.by('Random' | 'TopK' |
/// 'EdgeWeight')` in the query language of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplingStrategy {
    /// Uniform over all edge updates seen for the key vertex (Algorithm R).
    Random,
    /// The K neighbors with the largest timestamps.
    TopK,
    /// Inclusion probability proportional to edge weight (A-Res).
    EdgeWeight,
}

impl SamplingStrategy {
    /// Strategy name as used in query strings.
    pub fn name(self) -> &'static str {
        match self {
            SamplingStrategy::Random => "Random",
            SamplingStrategy::TopK => "TopK",
            SamplingStrategy::EdgeWeight => "EdgeWeight",
        }
    }

    /// Parse from a query-string token.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "Random" => Ok(SamplingStrategy::Random),
            "TopK" => Ok(SamplingStrategy::TopK),
            "EdgeWeight" => Ok(SamplingStrategy::EdgeWeight),
            other => Err(HeliosError::InvalidConfig(format!(
                "unknown sampling strategy '{other}'"
            ))),
        }
    }

    fn tag(self) -> u8 {
        match self {
            SamplingStrategy::Random => 0,
            SamplingStrategy::TopK => 1,
            SamplingStrategy::EdgeWeight => 2,
        }
    }

    fn from_tag(t: u8) -> Result<Self> {
        match t {
            0 => Ok(SamplingStrategy::Random),
            1 => Ok(SamplingStrategy::TopK),
            2 => Ok(SamplingStrategy::EdgeWeight),
            other => Err(HeliosError::Codec(format!("bad strategy tag {other}"))),
        }
    }
}

impl Encode for SamplingStrategy {
    fn encode(&self, buf: &mut BytesMut) {
        self.tag().encode(buf);
    }
}

impl Decode for SamplingStrategy {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        SamplingStrategy::from_tag(u8::decode(buf)?)
    }
}

/// One sampled neighbor held in a reservoir cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEntry {
    /// The sampled neighbor vertex.
    pub neighbor: VertexId,
    /// Timestamp of the edge update that produced this sample.
    pub ts: Timestamp,
    /// Edge weight of that update.
    pub weight: f32,
    /// A-Res key (`u^(1/w)`); 0 for non-weighted strategies.
    pub key: f32,
}

impl Encode for SampleEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.neighbor.encode(buf);
        self.ts.encode(buf);
        self.weight.encode(buf);
        self.key.encode(buf);
    }
}

impl Decode for SampleEntry {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(SampleEntry {
            neighbor: VertexId::decode(buf)?,
            ts: Timestamp::decode(buf)?,
            weight: f32::decode(buf)?,
            key: f32::decode(buf)?,
        })
    }
}

/// What an [`Reservoir::offer`] call did to the cell. The sampling worker
/// uses this to drive subscription updates (§5.3): `Added`/`Replaced`
/// trigger subscribe messages for the new sample; `Replaced` additionally
/// triggers an unsubscribe for the evicted one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReservoirOutcome {
    /// The edge update was not selected; the reservoir is unchanged.
    Ignored,
    /// The cell had spare capacity and the neighbor was appended.
    Added,
    /// The neighbor replaced an existing sample.
    Replaced {
        /// The sample that was evicted.
        evicted: SampleEntry,
    },
}

impl ReservoirOutcome {
    /// Did the reservoir contents change?
    #[inline]
    pub fn changed(self) -> bool {
        !matches!(self, ReservoirOutcome::Ignored)
    }
}

/// A fixed-capacity reservoir of sampled neighbors for one (query, vertex)
/// pair — one "value cell" of the paper's reservoir table.
///
/// Fan-outs in GNN sampling are small (≤ 25 in every query of Table 2), so
/// entries are kept in a plain `Vec` and evictions do linear scans: at
/// these sizes that beats any heap by a wide margin.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    strategy: SamplingStrategy,
    capacity: u32,
    /// Total number of edge updates offered to this cell (Algorithm R's
    /// stream counter `x`).
    seen: u64,
    entries: Vec<SampleEntry>,
}

impl Reservoir {
    /// New empty reservoir. `capacity` is the query fan-out and must be
    /// non-zero.
    pub fn new(strategy: SamplingStrategy, capacity: u32) -> Self {
        assert!(capacity > 0, "reservoir capacity (fan-out) must be > 0");
        Reservoir {
            strategy,
            capacity,
            seen: 0,
            entries: Vec::with_capacity(capacity as usize),
        }
    }

    /// The sampling strategy of the owning one-hop query.
    pub fn strategy(&self) -> SamplingStrategy {
        self.strategy
    }

    /// The configured fan-out.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of edge updates offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current samples (unordered for Random/EdgeWeight; arbitrary order
    /// for TopK — callers that need recency order should sort by `ts`).
    pub fn entries(&self) -> &[SampleEntry] {
        &self.entries
    }

    /// Current sampled neighbor ids.
    pub fn neighbors(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.entries.iter().map(|e| e.neighbor)
    }

    /// Is the cell at capacity?
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity as usize
    }

    /// Offer an incoming edge update `(key_vertex → neighbor, ts, weight)`
    /// to the reservoir and return what happened.
    pub fn offer(
        &mut self,
        neighbor: VertexId,
        ts: Timestamp,
        weight: f32,
        rng: &mut impl Rng,
    ) -> ReservoirOutcome {
        self.seen += 1;
        match self.strategy {
            SamplingStrategy::Random => self.offer_random(neighbor, ts, weight, rng),
            SamplingStrategy::TopK => self.offer_topk(neighbor, ts, weight),
            SamplingStrategy::EdgeWeight => self.offer_weighted(neighbor, ts, weight, rng),
        }
    }

    /// Algorithm R (Vitter 1985): the x-th item replaces slot `p-1` when a
    /// uniform draw `p ∈ [1, x]` lands within the cell capacity.
    fn offer_random(
        &mut self,
        neighbor: VertexId,
        ts: Timestamp,
        weight: f32,
        rng: &mut impl Rng,
    ) -> ReservoirOutcome {
        let entry = SampleEntry {
            neighbor,
            ts,
            weight,
            key: 0.0,
        };
        if !self.is_full() {
            self.entries.push(entry);
            return ReservoirOutcome::Added;
        }
        let p = rng.gen_range(1..=self.seen);
        if p <= u64::from(self.capacity) {
            let slot = (p - 1) as usize;
            let evicted = std::mem::replace(&mut self.entries[slot], entry);
            ReservoirOutcome::Replaced { evicted }
        } else {
            ReservoirOutcome::Ignored
        }
    }

    /// Timestamp TopK: keep the `C` most recent edges; an incoming edge
    /// replaces the oldest sample if it is newer.
    fn offer_topk(&mut self, neighbor: VertexId, ts: Timestamp, weight: f32) -> ReservoirOutcome {
        let entry = SampleEntry {
            neighbor,
            ts,
            weight,
            key: 0.0,
        };
        if !self.is_full() {
            self.entries.push(entry);
            return ReservoirOutcome::Added;
        }
        // Linear scan for the oldest sample; fan-outs are tiny.
        let (oldest_idx, oldest_ts) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.ts))
            .min_by_key(|&(_, t)| t)
            .expect("full reservoir is non-empty");
        if ts > oldest_ts {
            let evicted = std::mem::replace(&mut self.entries[oldest_idx], entry);
            ReservoirOutcome::Replaced { evicted }
        } else {
            ReservoirOutcome::Ignored
        }
    }

    /// Efraimidis–Spirakis A-Res: draw `key = u^(1/w)` and keep the `C`
    /// largest keys. Non-positive weights are treated as a minimal weight
    /// so malformed data cannot poison the reservoir.
    fn offer_weighted(
        &mut self,
        neighbor: VertexId,
        ts: Timestamp,
        weight: f32,
        rng: &mut impl Rng,
    ) -> ReservoirOutcome {
        let w = if weight.is_finite() && weight > 0.0 {
            weight
        } else {
            f32::MIN_POSITIVE
        };
        let u: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        let key = u.powf(1.0 / w);
        let entry = SampleEntry {
            neighbor,
            ts,
            weight,
            key,
        };
        if !self.is_full() {
            self.entries.push(entry);
            return ReservoirOutcome::Added;
        }
        let (min_idx, min_key) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.key))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("keys are finite"))
            .expect("full reservoir is non-empty");
        if key > min_key {
            let evicted = std::mem::replace(&mut self.entries[min_idx], entry);
            ReservoirOutcome::Replaced { evicted }
        } else {
            ReservoirOutcome::Ignored
        }
    }

    /// Drop samples whose edge timestamp is older than `horizon` (TTL
    /// expiry, §4.2). Returns the evicted samples so subscriptions can be
    /// torn down.
    pub fn expire_before(&mut self, horizon: Timestamp) -> Vec<SampleEntry> {
        let mut evicted = Vec::new();
        self.entries.retain(|e| {
            if e.ts < horizon {
                evicted.push(*e);
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Approximate heap footprint in bytes (for cache-size accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<SampleEntry>()
    }
}

impl Encode for Reservoir {
    fn encode(&self, buf: &mut BytesMut) {
        self.strategy.encode(buf);
        self.capacity.encode(buf);
        self.seen.encode(buf);
        self.entries.encode(buf);
    }
}

impl Decode for Reservoir {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let strategy = SamplingStrategy::decode(buf)?;
        let capacity = u32::decode(buf)?;
        if capacity == 0 {
            return Err(HeliosError::Codec("reservoir capacity 0".into()));
        }
        let seen = u64::decode(buf)?;
        let entries = Vec::<SampleEntry>::decode(buf)?;
        if entries.len() > capacity as usize {
            return Err(HeliosError::Codec(format!(
                "reservoir holds {} entries but capacity is {capacity}",
                entries.len()
            )));
        }
        Ok(Reservoir {
            strategy,
            capacity,
            seen,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn fills_up_to_capacity_then_replaces_or_ignores() {
        let mut r = Reservoir::new(SamplingStrategy::Random, 3);
        let mut g = rng(1);
        for i in 0..3 {
            assert_eq!(
                r.offer(VertexId(i), Timestamp(i), 1.0, &mut g),
                ReservoirOutcome::Added
            );
        }
        assert!(r.is_full());
        for i in 3..100 {
            match r.offer(VertexId(i), Timestamp(i), 1.0, &mut g) {
                ReservoirOutcome::Added => panic!("cannot add to full reservoir"),
                ReservoirOutcome::Ignored | ReservoirOutcome::Replaced { .. } => {}
            }
            assert_eq!(r.entries().len(), 3);
        }
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn topk_keeps_largest_timestamps_exactly() {
        let mut r = Reservoir::new(SamplingStrategy::TopK, 4);
        let mut g = rng(2);
        // Shuffled timestamps 0..20
        let order = [
            13u64, 2, 19, 7, 0, 15, 4, 11, 8, 17, 3, 9, 1, 14, 6, 18, 5, 12, 10, 16,
        ];
        for &t in &order {
            r.offer(VertexId(t), Timestamp(t), 1.0, &mut g);
        }
        let mut ts: Vec<u64> = r.entries().iter().map(|e| e.ts.millis()).collect();
        ts.sort_unstable();
        assert_eq!(ts, vec![16, 17, 18, 19]);
    }

    #[test]
    fn topk_ignores_stale_edges() {
        let mut r = Reservoir::new(SamplingStrategy::TopK, 2);
        let mut g = rng(3);
        r.offer(VertexId(1), Timestamp(100), 1.0, &mut g);
        r.offer(VertexId(2), Timestamp(200), 1.0, &mut g);
        let out = r.offer(VertexId(3), Timestamp(50), 1.0, &mut g);
        assert_eq!(out, ReservoirOutcome::Ignored);
        let out = r.offer(VertexId(4), Timestamp(150), 1.0, &mut g);
        match out {
            ReservoirOutcome::Replaced { evicted } => assert_eq!(evicted.neighbor, VertexId(1)),
            other => panic!("expected replace, got {other:?}"),
        }
    }

    #[test]
    fn random_uniformity_over_stream() {
        // Each of N=50 distinct neighbors should land in a C=5 reservoir
        // with probability C/N = 0.1. 2000 trials → expected 200 each.
        let n = 50u64;
        let c = 5u32;
        let trials = 2000;
        let mut counts = vec![0u32; n as usize];
        let mut g = rng(42);
        for _ in 0..trials {
            let mut r = Reservoir::new(SamplingStrategy::Random, c);
            for v in 0..n {
                r.offer(VertexId(v), Timestamp(v), 1.0, &mut g);
            }
            for e in r.entries() {
                counts[e.neighbor.raw() as usize] += 1;
            }
        }
        let expected = trials as f64 * f64::from(c) / n as f64;
        for (v, &cnt) in counts.iter().enumerate() {
            let dev = (f64::from(cnt) - expected).abs() / expected;
            assert!(
                dev < 0.35,
                "neighbor {v} sampled {cnt} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn weighted_prefers_heavy_edges() {
        // Neighbor 0 has weight 10, neighbors 1..=9 weight 1. Inclusion of
        // neighbor 0 in a C=2 reservoir must far exceed a uniform 2/10.
        let trials = 1500;
        let mut heavy_in = 0u32;
        let mut g = rng(7);
        for _ in 0..trials {
            let mut r = Reservoir::new(SamplingStrategy::EdgeWeight, 2);
            for v in 0..10u64 {
                let w = if v == 0 { 10.0 } else { 1.0 };
                r.offer(VertexId(v), Timestamp(v), w, &mut g);
            }
            if r.neighbors().any(|x| x == VertexId(0)) {
                heavy_in += 1;
            }
        }
        let frac = f64::from(heavy_in) / f64::from(trials);
        assert!(
            frac > 0.55,
            "heavy neighbor included only {frac:.2} of runs"
        );
    }

    #[test]
    fn weighted_handles_bad_weights() {
        let mut r = Reservoir::new(SamplingStrategy::EdgeWeight, 2);
        let mut g = rng(9);
        for (i, w) in [(0u64, 0.0f32), (1, -3.0), (2, f32::NAN), (3, f32::INFINITY)] {
            r.offer(VertexId(i), Timestamp(i), w, &mut g);
        }
        // no panic; reservoir holds capacity entries
        assert_eq!(r.entries().len(), 2);
    }

    #[test]
    fn expire_before_evicts_and_reports() {
        let mut r = Reservoir::new(SamplingStrategy::TopK, 4);
        let mut g = rng(4);
        for t in [10u64, 20, 30, 40] {
            r.offer(VertexId(t), Timestamp(t), 1.0, &mut g);
        }
        let evicted = r.expire_before(Timestamp(25));
        assert_eq!(evicted.len(), 2);
        assert_eq!(r.entries().len(), 2);
        assert!(r.entries().iter().all(|e| e.ts >= Timestamp(25)));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut r = Reservoir::new(SamplingStrategy::EdgeWeight, 3);
        let mut g = rng(5);
        for v in 0..10u64 {
            r.offer(VertexId(v), Timestamp(v), (v as f32) + 0.5, &mut g);
        }
        let bytes = r.encode_to_bytes();
        let back = Reservoir::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_inconsistent_state() {
        // capacity 0
        let mut r = Reservoir::new(SamplingStrategy::Random, 1);
        let mut g = rng(6);
        r.offer(VertexId(1), Timestamp(1), 1.0, &mut g);
        let mut raw = r.encode_to_bytes().to_vec();
        // strategy(1) + capacity(4): zero the capacity field
        raw[1..5].copy_from_slice(&0u32.to_le_bytes());
        assert!(Reservoir::decode_from_slice(&raw).is_err());
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn zero_capacity_panics() {
        let _ = Reservoir::new(SamplingStrategy::Random, 0);
    }

    #[test]
    fn strategy_parse_roundtrip() {
        for s in [
            SamplingStrategy::Random,
            SamplingStrategy::TopK,
            SamplingStrategy::EdgeWeight,
        ] {
            assert_eq!(SamplingStrategy::parse(s.name()).unwrap(), s);
        }
        assert!(SamplingStrategy::parse("Bogus").is_err());
    }
}
