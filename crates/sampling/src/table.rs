//! The reservoir table: one per one-hop query in each sampling worker
//! (§4.2). Key = target vertex id of the one-hop query; value = the
//! reservoir cell holding that vertex's sampled neighbors.

use crate::reservoir::{Reservoir, ReservoirOutcome, SampleEntry, SamplingStrategy};
use helios_types::{FxHashMap, Timestamp, VertexId};
use rand::Rng;

/// A reservoir table for a single one-hop query.
///
/// Not internally synchronized: each sampling worker owns its partition of
/// keys exclusively ("no duplication among all sampling workers for the
/// keys in their reservoir tables", §5.2), so tables are accessed from a
/// single sampling thread, or sharded by key across threads.
#[derive(Debug, Clone)]
pub struct ReservoirTable {
    strategy: SamplingStrategy,
    fanout: u32,
    cells: FxHashMap<VertexId, Reservoir>,
}

impl ReservoirTable {
    /// New table for a one-hop query with the given strategy and fan-out.
    pub fn new(strategy: SamplingStrategy, fanout: u32) -> Self {
        assert!(fanout > 0, "fan-out must be positive");
        ReservoirTable {
            strategy,
            fanout,
            cells: FxHashMap::default(),
        }
    }

    /// The query's sampling strategy.
    pub fn strategy(&self) -> SamplingStrategy {
        self.strategy
    }

    /// The query's fan-out (cell capacity).
    pub fn fanout(&self) -> u32 {
        self.fanout
    }

    /// Number of key vertices currently tracked.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Offer an edge update `(key → neighbor)` to the key's reservoir,
    /// creating the cell on first touch.
    pub fn offer(
        &mut self,
        key: VertexId,
        neighbor: VertexId,
        ts: Timestamp,
        weight: f32,
        rng: &mut impl Rng,
    ) -> ReservoirOutcome {
        let cell = self
            .cells
            .entry(key)
            .or_insert_with(|| Reservoir::new(self.strategy, self.fanout));
        cell.offer(neighbor, ts, weight, rng)
    }

    /// Current samples for `key` (empty slice if unknown).
    pub fn samples(&self, key: VertexId) -> &[SampleEntry] {
        self.cells.get(&key).map_or(&[], |c| c.entries())
    }

    /// The full reservoir cell for `key`, if present (used by snapshot
    /// pushes when a new subscription arrives).
    pub fn cell(&self, key: VertexId) -> Option<&Reservoir> {
        self.cells.get(&key)
    }

    /// Iterate over all (key, reservoir) pairs — checkpointing and tests.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &Reservoir)> {
        self.cells.iter().map(|(k, v)| (*k, v))
    }

    /// Restore a cell from a checkpoint.
    pub fn restore(&mut self, key: VertexId, cell: Reservoir) {
        self.cells.insert(key, cell);
    }

    /// Apply TTL expiry: drop samples older than `horizon` everywhere and
    /// remove empty cells. Returns `(key, evicted)` pairs so the caller
    /// can tear down subscriptions.
    pub fn expire_before(&mut self, horizon: Timestamp) -> Vec<(VertexId, SampleEntry)> {
        let mut out = Vec::new();
        self.cells.retain(|&key, cell| {
            for e in cell.expire_before(horizon) {
                out.push((key, e));
            }
            !cell.entries().is_empty()
        });
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let per_entry = std::mem::size_of::<VertexId>() + std::mem::size_of::<Reservoir>();
        self.cells.capacity() * per_entry
            + self
                .cells
                .values()
                .map(|c| std::mem::size_of_val(c.entries()))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn offer_creates_cells_lazily() {
        let mut t = ReservoirTable::new(SamplingStrategy::TopK, 2);
        let mut g = StdRng::seed_from_u64(1);
        assert!(t.is_empty());
        t.offer(VertexId(1), VertexId(10), Timestamp(5), 1.0, &mut g);
        t.offer(VertexId(1), VertexId(11), Timestamp(6), 1.0, &mut g);
        t.offer(VertexId(2), VertexId(12), Timestamp(7), 1.0, &mut g);
        assert_eq!(t.len(), 2);
        assert_eq!(t.samples(VertexId(1)).len(), 2);
        assert_eq!(t.samples(VertexId(2)).len(), 1);
        assert!(t.samples(VertexId(99)).is_empty());
    }

    #[test]
    fn per_key_independence() {
        let mut t = ReservoirTable::new(SamplingStrategy::TopK, 1);
        let mut g = StdRng::seed_from_u64(2);
        t.offer(VertexId(1), VertexId(10), Timestamp(100), 1.0, &mut g);
        t.offer(VertexId(2), VertexId(20), Timestamp(1), 1.0, &mut g);
        // A stale edge for key 1 must not disturb key 2.
        let out = t.offer(VertexId(1), VertexId(11), Timestamp(50), 1.0, &mut g);
        assert_eq!(out, ReservoirOutcome::Ignored);
        assert_eq!(t.samples(VertexId(2))[0].neighbor, VertexId(20));
    }

    #[test]
    fn expire_prunes_cells_and_reports_evictions() {
        let mut t = ReservoirTable::new(SamplingStrategy::TopK, 2);
        let mut g = StdRng::seed_from_u64(3);
        t.offer(VertexId(1), VertexId(10), Timestamp(5), 1.0, &mut g);
        t.offer(VertexId(2), VertexId(20), Timestamp(50), 1.0, &mut g);
        let evicted = t.expire_before(Timestamp(10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, VertexId(1));
        assert_eq!(evicted[0].1.neighbor, VertexId(10));
        assert_eq!(t.len(), 1, "empty cell must be removed");
    }

    #[test]
    fn restore_roundtrip_via_iter() {
        let mut t = ReservoirTable::new(SamplingStrategy::Random, 3);
        let mut g = StdRng::seed_from_u64(4);
        for v in 0..20u64 {
            t.offer(
                VertexId(v % 4),
                VertexId(100 + v),
                Timestamp(v),
                1.0,
                &mut g,
            );
        }
        let mut t2 = ReservoirTable::new(SamplingStrategy::Random, 3);
        for (k, cell) in t.iter() {
            t2.restore(k, cell.clone());
        }
        assert_eq!(t2.len(), t.len());
        for (k, cell) in t.iter() {
            assert_eq!(t2.cell(k).unwrap(), cell);
        }
    }

    #[test]
    fn memory_accounting_grows() {
        let mut t = ReservoirTable::new(SamplingStrategy::TopK, 8);
        let mut g = StdRng::seed_from_u64(5);
        let before = t.memory_bytes();
        for v in 0..1000u64 {
            t.offer(VertexId(v), VertexId(v + 1), Timestamp(v), 1.0, &mut g);
        }
        assert!(t.memory_bytes() > before);
    }
}
