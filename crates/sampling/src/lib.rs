//! # helios-sampling
//!
//! Event-driven reservoir sampling (§5.2 of the Helios paper) plus the
//! ad-hoc (full-traversal) samplers used by the graph-database baseline.
//!
//! Helios's key trick is maintaining, for every one-hop query and every
//! target vertex, a **reservoir** of sampled neighbors that is refreshed
//! incrementally as edge updates stream in — so a sampling query at
//! inference time never traverses adjacency lists. Three strategies are
//! supported, matching the paper:
//!
//! * **Random** — Vitter's Algorithm R: the p-th incoming edge replaces a
//!   random slot with probability `C/p`, yielding a uniform sample over
//!   the whole stream.
//! * **TopK** — timestamp TopK: keep the `C` neighbors with the largest
//!   timestamps ("latest-K" recency sampling); an incoming edge evicts
//!   the oldest sample.
//! * **EdgeWeight** — Efraimidis–Spirakis weighted reservoir (A-Res): each
//!   edge draws key `u^(1/w)`; the reservoir keeps the `C` largest keys,
//!   yielding inclusion probability proportional to weight.
//!
//! The crucial property, proven by the property tests in this crate, is
//! that the *distribution* of the reservoir equals the distribution of an
//! ad-hoc sample over the full neighbor list — pre-sampling changes the
//! cost model, not the statistics.

pub mod adhoc;
pub mod reservoir;
pub mod table;

pub use adhoc::{adhoc_random, adhoc_topk, adhoc_weighted};
pub use reservoir::{Reservoir, ReservoirOutcome, SampleEntry, SamplingStrategy};
pub use table::ReservoirTable;
