//! Ad-hoc (full-traversal) sampling over a materialized neighbor list.
//!
//! This is what graph databases do at *query time* (§3): every request
//! traverses the complete adjacency list of each frontier vertex, which is
//! exactly the behavior that produces degree-skewed tail latency. The
//! baseline in `helios-graphdb` calls these functions; Helios itself never
//! does (its reservoirs absorb the traversal cost at update time).
//!
//! Distribution equivalence with the event-driven reservoirs is asserted
//! by the property tests at the bottom of this module.

use helios_types::{Timestamp, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A neighbor edge as stored in an adjacency list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEdge {
    /// Destination vertex of the edge.
    pub neighbor: VertexId,
    /// Edge timestamp.
    pub ts: Timestamp,
    /// Edge weight.
    pub weight: f32,
}

/// Uniformly sample up to `k` neighbors without replacement.
///
/// Cost: O(n) — the whole list is touched (partial Fisher–Yates).
pub fn adhoc_random(neighbors: &[NeighborEdge], k: usize, rng: &mut impl Rng) -> Vec<NeighborEdge> {
    if neighbors.len() <= k {
        return neighbors.to_vec();
    }
    // `choose_multiple` performs a reservoir pass over the full slice.
    neighbors.choose_multiple(rng, k).copied().collect()
}

/// Select the `k` neighbors with the largest timestamps.
///
/// Cost: O(n log n) in this implementation (sort of the *entire* list),
/// deliberately mirroring the paper's description: "the timestamp of every
/// edge ... has to be collected and sorted" (§3.1).
pub fn adhoc_topk(neighbors: &[NeighborEdge], k: usize) -> Vec<NeighborEdge> {
    let mut all = neighbors.to_vec();
    all.sort_by_key(|e| std::cmp::Reverse(e.ts));
    all.truncate(k);
    all
}

/// Weighted sampling without replacement (A-Res over the full list).
///
/// Cost: O(n log k).
pub fn adhoc_weighted(
    neighbors: &[NeighborEdge],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<NeighborEdge> {
    if neighbors.len() <= k {
        return neighbors.to_vec();
    }
    let mut keyed: Vec<(f32, NeighborEdge)> = neighbors
        .iter()
        .map(|e| {
            let w = if e.weight.is_finite() && e.weight > 0.0 {
                e.weight
            } else {
                f32::MIN_POSITIVE
            };
            let u: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            (u.powf(1.0 / w), *e)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys finite"));
    keyed.truncate(k);
    keyed.into_iter().map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservoir::{Reservoir, SamplingStrategy};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edges(n: u64) -> Vec<NeighborEdge> {
        (0..n)
            .map(|i| NeighborEdge {
                neighbor: VertexId(i),
                ts: Timestamp(i * 3 % n), // shuffled-ish timestamps
                weight: 1.0 + (i % 5) as f32,
            })
            .collect()
    }

    #[test]
    fn random_returns_k_distinct() {
        let es = edges(100);
        let mut g = StdRng::seed_from_u64(1);
        let s = adhoc_random(&es, 10, &mut g);
        assert_eq!(s.len(), 10);
        let mut ids: Vec<_> = s.iter().map(|e| e.neighbor).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn random_small_list_returns_all() {
        let es = edges(3);
        let mut g = StdRng::seed_from_u64(1);
        assert_eq!(adhoc_random(&es, 10, &mut g), es);
    }

    #[test]
    fn topk_exact() {
        let es = edges(50);
        let top = adhoc_topk(&es, 5);
        assert_eq!(top.len(), 5);
        let mut all_ts: Vec<Timestamp> = es.iter().map(|e| e.ts).collect();
        all_ts.sort_by(|a, b| b.cmp(a));
        let got: Vec<Timestamp> = top.iter().map(|e| e.ts).collect();
        assert_eq!(got, all_ts[..5].to_vec());
    }

    #[test]
    fn weighted_prefers_heavy() {
        let mut es = edges(20);
        es[0].weight = 1000.0;
        let mut g = StdRng::seed_from_u64(3);
        let mut included = 0;
        for _ in 0..300 {
            let s = adhoc_weighted(&es, 3, &mut g);
            if s.iter().any(|e| e.neighbor == VertexId(0)) {
                included += 1;
            }
        }
        assert!(included > 250, "heavy edge included {included}/300");
    }

    // The headline equivalence (§5.2): "The data distribution of reservoir
    // sampling is the same as ad-hoc sampling". For TopK this is exact;
    // check it on arbitrary streams.
    proptest! {
        #[test]
        fn prop_topk_reservoir_equals_adhoc(
            ts_list in proptest::collection::vec(0u64..1000, 1..60),
            k in 1u32..8
        ) {
            let es: Vec<NeighborEdge> = ts_list.iter().enumerate().map(|(i, &t)| NeighborEdge {
                neighbor: VertexId(i as u64),
                ts: Timestamp(t),
                weight: 1.0,
            }).collect();

            let mut r = Reservoir::new(SamplingStrategy::TopK, k);
            let mut g = StdRng::seed_from_u64(0);
            for e in &es {
                r.offer(e.neighbor, e.ts, e.weight, &mut g);
            }
            let mut res_ts: Vec<u64> = r.entries().iter().map(|e| e.ts.millis()).collect();
            res_ts.sort_unstable();

            let mut adhoc_ts: Vec<u64> = adhoc_topk(&es, k as usize).iter().map(|e| e.ts.millis()).collect();
            adhoc_ts.sort_unstable();

            prop_assert_eq!(res_ts, adhoc_ts);
        }

        #[test]
        fn prop_random_reservoir_size_invariant(
            n in 1u64..200, k in 1u32..16
        ) {
            let mut r = Reservoir::new(SamplingStrategy::Random, k);
            let mut g = StdRng::seed_from_u64(9);
            for v in 0..n {
                r.offer(VertexId(v), Timestamp(v), 1.0, &mut g);
            }
            prop_assert_eq!(r.entries().len() as u64, n.min(u64::from(k)));
            // All sampled neighbors must come from the stream.
            prop_assert!(r.neighbors().all(|v| v.raw() < n));
            // No duplicate neighbors for a distinct-neighbor stream.
            let mut ids: Vec<u64> = r.neighbors().map(|v| v.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), r.entries().len());
        }
    }

    /// Statistical equivalence of Random reservoir vs ad-hoc uniform:
    /// compare per-neighbor inclusion frequencies over many trials.
    #[test]
    fn random_reservoir_matches_adhoc_distribution() {
        let n = 30u64;
        let k = 3u32;
        let trials = 3000;
        let mut res_counts = vec![0u32; n as usize];
        let mut adhoc_counts = vec![0u32; n as usize];
        let es = (0..n)
            .map(|i| NeighborEdge {
                neighbor: VertexId(i),
                ts: Timestamp(i),
                weight: 1.0,
            })
            .collect::<Vec<_>>();
        let mut g = StdRng::seed_from_u64(77);
        for _ in 0..trials {
            let mut r = Reservoir::new(SamplingStrategy::Random, k);
            for e in &es {
                r.offer(e.neighbor, e.ts, e.weight, &mut g);
            }
            for v in r.neighbors() {
                res_counts[v.raw() as usize] += 1;
            }
            for e in adhoc_random(&es, k as usize, &mut g) {
                adhoc_counts[e.neighbor.raw() as usize] += 1;
            }
        }
        // Both should be ~ trials * k / n; compare each against expectation.
        let expected = trials as f64 * f64::from(k) / n as f64;
        for v in 0..n as usize {
            for (name, c) in [("reservoir", res_counts[v]), ("adhoc", adhoc_counts[v])] {
                let dev = (f64::from(c) - expected).abs() / expected;
                assert!(
                    dev < 0.40,
                    "{name} neighbor {v}: {c} vs expected {expected}"
                );
            }
        }
    }
}

#[cfg(test)]
mod weighted_equivalence {
    use super::*;
    use crate::reservoir::{Reservoir, SamplingStrategy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Statistical equivalence of EdgeWeight reservoir vs ad-hoc weighted
    /// sampling: per-neighbor inclusion frequencies must agree within
    /// sampling noise across a range of weight profiles.
    #[test]
    fn weighted_reservoir_matches_adhoc_distribution() {
        let n = 12u64;
        let k = 3usize;
        let trials = 4000;
        // Weight profile: geometric-ish spread.
        let es: Vec<NeighborEdge> = (0..n)
            .map(|i| NeighborEdge {
                neighbor: VertexId(i),
                ts: Timestamp(i),
                weight: 0.5 + (i % 4) as f32 * 2.0,
            })
            .collect();
        let mut res_counts = vec![0u32; n as usize];
        let mut adhoc_counts = vec![0u32; n as usize];
        let mut g = StdRng::seed_from_u64(4242);
        for _ in 0..trials {
            let mut r = Reservoir::new(SamplingStrategy::EdgeWeight, k as u32);
            for e in &es {
                r.offer(e.neighbor, e.ts, e.weight, &mut g);
            }
            for v in r.neighbors() {
                res_counts[v.raw() as usize] += 1;
            }
            for e in adhoc_weighted(&es, k, &mut g) {
                adhoc_counts[e.neighbor.raw() as usize] += 1;
            }
        }
        // Compare inclusion frequencies pointwise: both methods implement
        // A-Res, so they must agree within noise (~2–3% absolute).
        for v in 0..n as usize {
            let fr = f64::from(res_counts[v]) / f64::from(trials);
            let fa = f64::from(adhoc_counts[v]) / f64::from(trials);
            assert!(
                (fr - fa).abs() < 0.05,
                "neighbor {v}: reservoir {fr:.3} vs adhoc {fa:.3}"
            );
        }
        // And the heaviest class is sampled more than the lightest.
        let heavy: u32 = (0..n as usize)
            .filter(|v| v % 4 == 3)
            .map(|v| res_counts[v])
            .sum();
        let light: u32 = (0..n as usize)
            .filter(|v| v % 4 == 0)
            .map(|v| res_counts[v])
            .sum();
        assert!(heavy > light * 2, "heavy {heavy} vs light {light}");
    }
}
