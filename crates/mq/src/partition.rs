//! A single partition: an in-memory log with offset addressing, bounded
//! retention, and optional durable segment backing.

use crate::record::Record;
use crate::segment::SegmentWriter;
use bytes::Bytes;
use helios_types::{MemGauge, PartitionId, Result};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::path::Path;

#[derive(Debug)]
struct Inner {
    /// Records currently retained; `log[i]` has offset `base_offset + i`.
    log: VecDeque<Record>,
    /// Offset of the front record.
    base_offset: u64,
    /// Next offset to assign.
    next_offset: u64,
    /// Bytes currently retained.
    bytes: usize,
    /// Durable backing, if configured.
    segment: Option<SegmentWriter>,
}

/// One partition of a topic.
#[derive(Debug)]
pub struct Partition {
    id: PartitionId,
    inner: Mutex<Inner>,
    /// Soft cap on retained records (0 = unbounded).
    retention_records: usize,
    /// Mirror of retained bytes for the memory accountant; every
    /// append/restore/truncation adjusts it, drop releases the rest.
    mem: MemGauge,
}

impl Partition {
    pub(crate) fn new(id: PartitionId, retention_records: usize, mem: MemGauge) -> Self {
        Partition {
            id,
            inner: Mutex::new(Inner {
                log: VecDeque::new(),
                base_offset: 0,
                next_offset: 0,
                bytes: 0,
                segment: None,
            }),
            retention_records,
            mem,
        }
    }

    pub(crate) fn attach_segment(&self, path: &Path) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.segment = Some(SegmentWriter::open(path)?);
        Ok(())
    }

    /// Partition id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Append a record; returns its offset.
    pub fn append(&self, key: u64, payload: Bytes) -> Result<u64> {
        let mut inner = self.inner.lock();
        let offset = inner.next_offset;
        inner.next_offset += 1;
        if let Some(seg) = inner.segment.as_mut() {
            seg.append(key, &payload)?;
        }
        let rec = Record {
            partition: self.id,
            offset,
            key,
            payload,
            produced_at: crate::record::now_nanos(),
        };
        self.mem.add(rec.footprint());
        inner.bytes += rec.footprint();
        inner.log.push_back(rec);
        if self.retention_records > 0 {
            while inner.log.len() > self.retention_records {
                if let Some(old) = inner.log.pop_front() {
                    inner.bytes -= old.footprint();
                    self.mem.sub(old.footprint());
                    inner.base_offset = old.offset + 1;
                }
            }
        }
        Ok(offset)
    }

    /// Restore a record during recovery without writing back to disk.
    pub(crate) fn restore(&self, key: u64, payload: Bytes) {
        let mut inner = self.inner.lock();
        let offset = inner.next_offset;
        inner.next_offset += 1;
        // Restored records predate this process; without a durable stamp
        // the dwell time is unknowable, so mark it as such.
        let rec = Record {
            partition: self.id,
            offset,
            key,
            payload,
            produced_at: 0,
        };
        self.mem.add(rec.footprint());
        inner.bytes += rec.footprint();
        inner.log.push_back(rec);
    }

    /// Fetch up to `max` records starting at `offset`. Returns records and
    /// the next offset to poll from. If `offset` has been truncated away,
    /// reading resumes at the retained front (like Kafka's
    /// `auto.offset.reset=earliest`).
    pub fn fetch(&self, offset: u64, max: usize) -> (Vec<Record>, u64) {
        let inner = self.inner.lock();
        let start = offset.max(inner.base_offset);
        if start >= inner.next_offset {
            return (Vec::new(), inner.next_offset.max(offset));
        }
        let idx = (start - inner.base_offset) as usize;
        let records: Vec<Record> = inner.log.iter().skip(idx).take(max).cloned().collect();
        let next = records.last().map_or(start, |r| r.offset + 1);
        (records, next)
    }

    /// Offset that the next appended record will receive (= log end).
    pub fn end_offset(&self) -> u64 {
        self.inner.lock().next_offset
    }

    /// Oldest retained offset.
    pub fn base_offset(&self) -> u64 {
        self.inner.lock().base_offset
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// Is the retained log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes retained in memory.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Flush the durable segment, if any.
    pub fn sync(&self) -> Result<()> {
        if let Some(seg) = self.inner.lock().segment.as_mut() {
            seg.sync()?;
        }
        Ok(())
    }
}

impl Drop for Partition {
    fn drop(&mut self) {
        // Topic deletion must return the retained bytes to the accountant.
        self.mem.sub(self.inner.get_mut().bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    impl Partition {
        fn new_test(id: PartitionId, retention_records: usize) -> Self {
            Partition::new(id, retention_records, MemGauge::new())
        }
    }

    #[test]
    fn offsets_are_dense_and_monotonic() {
        let p = Partition::new_test(PartitionId(0), 0);
        for i in 0..10u64 {
            assert_eq!(p.append(i, bytes("x")).unwrap(), i);
        }
        assert_eq!(p.end_offset(), 10);
        assert_eq!(p.base_offset(), 0);
    }

    #[test]
    fn fetch_respects_offset_and_max() {
        let p = Partition::new_test(PartitionId(0), 0);
        for i in 0..10u64 {
            p.append(i, bytes(&format!("m{i}"))).unwrap();
        }
        let (recs, next) = p.fetch(3, 4);
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].offset, 3);
        assert_eq!(next, 7);
        let (recs, next) = p.fetch(next, 100);
        assert_eq!(recs.len(), 3);
        assert_eq!(next, 10);
        let (recs, next) = p.fetch(next, 100);
        assert!(recs.is_empty());
        assert_eq!(next, 10);
    }

    #[test]
    fn retention_truncates_front_and_resets_readers() {
        let p = Partition::new_test(PartitionId(0), 5);
        for i in 0..20u64 {
            p.append(i, bytes("y")).unwrap();
        }
        assert_eq!(p.len(), 5);
        assert_eq!(p.base_offset(), 15);
        // A reader at a truncated offset resumes at the retained front.
        let (recs, next) = p.fetch(2, 100);
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[0].offset, 15);
        assert_eq!(next, 20);
    }

    #[test]
    fn append_stamps_produce_time_but_restore_does_not() {
        let p = Partition::new_test(PartitionId(0), 0);
        p.append(0, bytes("fresh")).unwrap();
        p.restore(1, bytes("recovered"));
        let (recs, _) = p.fetch(0, 10);
        assert!(recs[0].produced_at > 0, "appended records carry a stamp");
        assert_eq!(recs[1].produced_at, 0, "restored records have no stamp");
    }

    #[test]
    fn mem_gauge_mirrors_retained_bytes_and_drop_releases() {
        let g = MemGauge::new();
        let p = Partition::new(PartitionId(0), 2, g.clone());
        p.append(0, Bytes::from(vec![0u8; 100])).unwrap();
        p.restore(1, Bytes::from(vec![0u8; 100]));
        assert_eq!(g.get(), p.bytes() as i64, "gauge mirrors retained bytes");
        let two = g.get();
        p.append(2, Bytes::from(vec![0u8; 100])).unwrap();
        assert_eq!(g.get(), two, "retention pop releases the truncated record");
        drop(p);
        assert_eq!(g.get(), 0, "drop returns everything to the accountant");
    }

    #[test]
    fn byte_accounting_tracks_retention() {
        let p = Partition::new_test(PartitionId(0), 2);
        p.append(0, Bytes::from(vec![0u8; 1000])).unwrap();
        p.append(1, Bytes::from(vec![0u8; 1000])).unwrap();
        let two = p.bytes();
        p.append(2, Bytes::from(vec![0u8; 1000])).unwrap();
        assert_eq!(p.bytes(), two, "retention keeps byte count bounded");
    }
}
