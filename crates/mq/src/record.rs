//! Queue records.

use bytes::Bytes;
use helios_types::PartitionId;

/// A record as stored in (and returned from) a partition log.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Partition the record lives in.
    pub partition: PartitionId,
    /// Offset within the partition (dense, starting at 0).
    pub offset: u64,
    /// Optional producer key (used for partition routing).
    pub key: u64,
    /// Opaque payload.
    pub payload: Bytes,
    /// Wall-clock nanoseconds (`UNIX_EPOCH`) at append time, or 0 when
    /// unknown (e.g. records restored from a durable segment). Consumers
    /// subtract this from their own clock to attribute mq dwell time.
    pub produced_at: u64,
}

impl Record {
    /// Approximate in-memory footprint, used for retention accounting.
    pub fn footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.payload.len()
    }
}

/// Wall-clock nanoseconds since `UNIX_EPOCH`, saturating at 0 if the
/// clock is before the epoch. Used for produce-time stamps.
pub(crate) fn now_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_includes_payload() {
        let r = Record {
            partition: PartitionId(0),
            offset: 0,
            key: 1,
            payload: Bytes::from(vec![0u8; 100]),
            produced_at: now_nanos(),
        };
        assert!(r.footprint() >= 100);
    }
}
