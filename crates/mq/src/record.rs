//! Queue records.

use bytes::Bytes;
use helios_types::PartitionId;

/// A record as stored in (and returned from) a partition log.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Partition the record lives in.
    pub partition: PartitionId,
    /// Offset within the partition (dense, starting at 0).
    pub offset: u64,
    /// Optional producer key (used for partition routing).
    pub key: u64,
    /// Opaque payload.
    pub payload: Bytes,
}

impl Record {
    /// Approximate in-memory footprint, used for retention accounting.
    pub fn footprint(&self) -> usize {
        std::mem::size_of::<Self>() + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_includes_payload() {
        let r = Record {
            partition: PartitionId(0),
            offset: 0,
            key: 1,
            payload: Bytes::from(vec![0u8; 100]),
        };
        assert!(r.footprint() >= 100);
    }
}
