//! Consumers: offset-tracking, blocking batch polls, commit.

use crate::broker::Broker;
use crate::record::Record;
use crate::topic::Topic;
use helios_types::{FxHashMap, PartitionId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A consumer bound to one topic and a set of its partitions, in a named
/// consumer group. Positions start at the group's committed offsets and
/// advance as records are polled; [`Consumer::commit`] persists them back
/// to the broker.
///
/// Positions live in cells shared with the broker, so
/// [`Broker::group_lag`](crate::Broker::group_lag) sees polls as they
/// happen without the reporter having to reach into every consumer.
pub struct Consumer {
    broker: Arc<Broker>,
    group: String,
    topic: Arc<Topic>,
    partitions: Vec<PartitionId>,
    positions: FxHashMap<PartitionId, Arc<AtomicU64>>,
    /// Round-robin cursor so one hot partition cannot starve the others.
    next_partition: usize,
}

impl Consumer {
    pub(crate) fn new(
        broker: Arc<Broker>,
        group: String,
        topic: Arc<Topic>,
        partitions: Vec<PartitionId>,
    ) -> Self {
        let positions = partitions
            .iter()
            .map(|&p| (p, broker.register_position(&group, topic.name(), p)))
            .collect();
        Consumer {
            broker,
            group,
            topic,
            partitions,
            positions,
            next_partition: 0,
        }
    }

    /// The consumer's group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Partitions this consumer reads.
    pub fn partitions(&self) -> &[PartitionId] {
        &self.partitions
    }

    /// Non-blocking poll: fetch up to `max` records across the assigned
    /// partitions (round-robin), advancing in-memory positions.
    pub fn poll_now(&mut self, max: usize) -> Vec<Record> {
        let mut out = Vec::new();
        let n = self.partitions.len();
        if n == 0 {
            return out;
        }
        for step in 0..n {
            if out.len() >= max {
                break;
            }
            let pid = self.partitions[(self.next_partition + step) % n];
            let pos = self.positions[&pid].load(Ordering::Relaxed);
            let (recs, next) = match self.topic.partition(pid) {
                Ok(p) => p.fetch(pos, max - out.len()),
                Err(_) => continue,
            };
            if !recs.is_empty() {
                self.positions[&pid].store(next, Ordering::Relaxed);
                out.extend(recs);
            }
        }
        self.next_partition = (self.next_partition + 1) % n;
        out
    }

    /// Blocking poll: like [`Consumer::poll_now`], but waits up to
    /// `timeout` for records to arrive when the partitions are drained.
    pub fn poll(&mut self, max: usize, timeout: Duration) -> Vec<Record> {
        let deadline = Instant::now() + timeout;
        loop {
            let seq = self.topic.produce_seq();
            let recs = self.poll_now(max);
            if !recs.is_empty() {
                return recs;
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            self.topic.wait_for_produce(seq, deadline - now);
        }
    }

    /// Current position (next offset to read) of a partition.
    pub fn position(&self, pid: PartitionId) -> Option<u64> {
        self.positions.get(&pid).map(|c| c.load(Ordering::Relaxed))
    }

    /// How many records remain unread across assigned partitions.
    pub fn lag(&self) -> u64 {
        self.partitions
            .iter()
            .map(|&pid| {
                let end = self
                    .topic
                    .partition(pid)
                    .map(|p| p.end_offset())
                    .unwrap_or(0);
                end.saturating_sub(self.positions[&pid].load(Ordering::Relaxed))
            })
            .sum()
    }

    /// Commit current positions to the broker so a future consumer in the
    /// same group resumes here.
    pub fn commit(&self) {
        for (&pid, cell) in &self.positions {
            self.broker.commit(
                &self.group,
                self.topic.name(),
                pid,
                cell.load(Ordering::Relaxed),
            );
        }
    }

    /// Jump all positions to the current log end (skip the backlog).
    pub fn seek_to_end(&mut self) {
        for &pid in &self.partitions {
            if let Ok(p) = self.topic.partition(pid) {
                self.positions[&pid].store(p.end_offset(), Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for Consumer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("group", &self.group)
            .field("topic", &self.topic.name())
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;
    use bytes::Bytes;

    fn setup(parts: u32) -> (Arc<Broker>, Arc<Topic>) {
        let b = Broker::new();
        let t = b.create_topic("t", TopicConfig::in_memory(parts)).unwrap();
        (b, t)
    }

    #[test]
    fn poll_drains_in_order_per_partition() {
        let (b, t) = setup(1);
        for i in 0..10u64 {
            t.produce(1, Bytes::from(vec![i as u8])).unwrap();
        }
        let mut c = b.consumer_all("g", "t").unwrap();
        let recs = c.poll_now(100);
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.payload[0] as usize, i);
        }
        assert!(c.poll_now(100).is_empty());
    }

    #[test]
    fn two_consumers_same_group_resume_from_commit() {
        let (b, t) = setup(1);
        for i in 0..10u64 {
            t.produce(1, Bytes::from(vec![i as u8])).unwrap();
        }
        {
            let mut c = b.consumer_all("g", "t").unwrap();
            let recs = c.poll_now(4);
            assert_eq!(recs.len(), 4);
            c.commit();
        }
        let mut c2 = b.consumer_all("g", "t").unwrap();
        let recs = c2.poll_now(100);
        assert_eq!(recs.len(), 6);
        assert_eq!(recs[0].payload[0], 4);
    }

    #[test]
    fn uncommitted_positions_are_not_persisted() {
        let (b, t) = setup(1);
        t.produce(1, Bytes::from_static(b"x")).unwrap();
        {
            let mut c = b.consumer_all("g", "t").unwrap();
            assert_eq!(c.poll_now(10).len(), 1);
            // no commit
        }
        let mut c2 = b.consumer_all("g", "t").unwrap();
        assert_eq!(c2.poll_now(10).len(), 1, "record re-delivered");
    }

    #[test]
    fn different_groups_are_independent() {
        let (b, t) = setup(1);
        t.produce(1, Bytes::from_static(b"x")).unwrap();
        let mut c1 = b.consumer_all("g1", "t").unwrap();
        let mut c2 = b.consumer_all("g2", "t").unwrap();
        assert_eq!(c1.poll_now(10).len(), 1);
        assert_eq!(c2.poll_now(10).len(), 1);
    }

    #[test]
    fn blocking_poll_wakes_on_produce() {
        let (b, t) = setup(2);
        let mut c = b.consumer_all("g", "t").unwrap();
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            t.produce(9, Bytes::from_static(b"late")).unwrap();
        });
        let recs = c.poll(10, Duration::from_secs(5));
        producer.join().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].payload[..], b"late");
    }

    #[test]
    fn blocking_poll_times_out_empty() {
        let (b, _t) = setup(1);
        let mut c = b.consumer_all("g", "t").unwrap();
        let start = Instant::now();
        let recs = c.poll(10, Duration::from_millis(30));
        assert!(recs.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn lag_and_seek_to_end() {
        let (b, t) = setup(2);
        for i in 0..20u64 {
            t.produce(i, Bytes::from_static(b"z")).unwrap();
        }
        let mut c = b.consumer_all("g", "t").unwrap();
        assert_eq!(c.lag(), 20);
        c.seek_to_end();
        assert_eq!(c.lag(), 0);
        assert!(c.poll_now(10).is_empty());
    }

    #[test]
    fn round_robin_does_not_starve_partitions() {
        let (b, t) = setup(2);
        // Flood partition of key k0; trickle on the other.
        let p0 = t.route(0);
        let other = PartitionId(1 - p0.0);
        for _ in 0..100 {
            t.produce_to(p0, 0, Bytes::from_static(b"flood")).unwrap();
        }
        t.produce_to(other, 1, Bytes::from_static(b"trickle"))
            .unwrap();
        let mut c = b.consumer_all("g", "t").unwrap();
        // Within two polls of 30, the trickle partition must be served.
        let mut seen_trickle = false;
        for _ in 0..2 {
            for r in c.poll_now(30) {
                if &r.payload[..] == b"trickle" {
                    seen_trickle = true;
                }
            }
        }
        assert!(seen_trickle, "round-robin must serve the quiet partition");
    }

    #[test]
    fn multi_threaded_producers_consumer_sees_all() {
        let (b, t) = setup(4);
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    t.produce(th * 1000 + i, Bytes::from_static(b"m")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut c = b.consumer_all("g", "t").unwrap();
        let mut total = 0;
        loop {
            let recs = c.poll_now(500);
            if recs.is_empty() {
                break;
            }
            total += recs.len();
        }
        assert_eq!(total, 4000);
    }
}
