//! Append-only on-disk segment files for durable topics.
//!
//! Format: a flat sequence of `[key: u64 LE][len: u32 LE][payload bytes]`
//! frames. One file per partition. Writes go through a `BufWriter` and are
//! flushed on [`SegmentWriter::sync`]; recovery reads frames until EOF (a
//! truncated trailing frame — torn write — is dropped, like Kafka's log
//! recovery).

use bytes::Bytes;
use helios_types::Result;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Appends frames to a partition's segment file.
#[derive(Debug)]
pub struct SegmentWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl SegmentWriter {
    /// Open (creating or appending to) the segment at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(SegmentWriter {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
        })
    }

    /// Append one frame.
    pub fn append(&mut self, key: u64, payload: &[u8]) -> Result<()> {
        self.out.write_all(&key.to_le_bytes())?;
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(payload)?;
        Ok(())
    }

    /// Flush buffered frames to the OS.
    pub fn sync(&mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read back all intact frames from a segment file. Returns an empty list
/// if the file does not exist.
pub fn read_segment(path: &Path) -> Result<Vec<(u64, Bytes)>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut r = BufReader::new(file);
    let mut out = Vec::new();
    loop {
        let mut key_buf = [0u8; 8];
        match r.read_exact(&mut key_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let mut len_buf = [0u8; 4];
        if r.read_exact(&mut len_buf).is_err() {
            break; // torn frame: drop
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        if r.read_exact(&mut payload).is_err() {
            break; // torn frame: drop
        }
        out.push((u64::from_le_bytes(key_buf), Bytes::from(payload)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("helios-mq-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_then_read_roundtrip() {
        let dir = tmpdir("rt");
        let p = dir.join("p0.seg");
        {
            let mut w = SegmentWriter::open(&p).unwrap();
            for i in 0..100u64 {
                w.append(i, format!("payload-{i}").as_bytes()).unwrap();
            }
            w.sync().unwrap();
        }
        let frames = read_segment(&p).unwrap();
        assert_eq!(frames.len(), 100);
        assert_eq!(frames[42].0, 42);
        assert_eq!(&frames[42].1[..], b"payload-42");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_empty() {
        let dir = tmpdir("missing");
        assert!(read_segment(&dir.join("nope.seg")).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_frame_is_dropped() {
        let dir = tmpdir("torn");
        let p = dir.join("p0.seg");
        {
            let mut w = SegmentWriter::open(&p).unwrap();
            w.append(1, b"complete").unwrap();
            w.sync().unwrap();
        }
        // Append a torn frame by hand: key + length promising 100 bytes
        // but only 3 present.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&2u64.to_le_bytes()).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(b"abc").unwrap();
        }
        let frames = read_segment(&p).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(&frames[0].1[..], b"complete");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_is_cumulative_across_reopens() {
        let dir = tmpdir("reopen");
        let p = dir.join("p0.seg");
        {
            let mut w = SegmentWriter::open(&p).unwrap();
            w.append(1, b"a").unwrap();
            w.sync().unwrap();
        }
        {
            let mut w = SegmentWriter::open(&p).unwrap();
            w.append(2, b"b").unwrap();
            w.sync().unwrap();
        }
        let frames = read_segment(&p).unwrap();
        assert_eq!(frames.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
