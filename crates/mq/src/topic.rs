//! Topics: named sets of partitions with key-hashed routing and a
//! produce-notification used by blocking consumers.

use crate::partition::Partition;
use bytes::Bytes;
use helios_types::{fx_hash_u64, HeliosError, MemGauge, PartitionId, Result};
use parking_lot::{Condvar, Mutex};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration for a topic.
#[derive(Debug, Clone)]
pub struct TopicConfig {
    /// Number of partitions (≥ 1).
    pub partitions: u32,
    /// Per-partition retained record cap (0 = unbounded).
    pub retention_records: usize,
    /// If set, partitions are backed by segment files under this directory
    /// and can be recovered after restart.
    pub segment_dir: Option<PathBuf>,
    /// Gauge mirroring the topic's retained log bytes (all partitions).
    /// Defaults to a fresh unobserved cell; wire the accountant's gauge
    /// in to include this topic in `mem.bytes{component="mq_log"}`.
    pub mem: MemGauge,
}

impl Default for TopicConfig {
    fn default() -> Self {
        TopicConfig {
            partitions: 1,
            retention_records: 0,
            segment_dir: None,
            mem: MemGauge::new(),
        }
    }
}

impl TopicConfig {
    /// In-memory topic with `partitions` partitions.
    pub fn in_memory(partitions: u32) -> Self {
        TopicConfig {
            partitions,
            ..Default::default()
        }
    }
}

/// A named, partitioned log.
pub struct Topic {
    name: String,
    partitions: Vec<Partition>,
    /// Bumped on every produce; consumers block on it.
    produce_seq: Mutex<u64>,
    produced: Condvar,
}

impl Topic {
    pub(crate) fn new(name: &str, config: &TopicConfig) -> Result<Self> {
        if config.partitions == 0 {
            return Err(HeliosError::InvalidConfig(format!(
                "topic '{name}' needs at least one partition"
            )));
        }
        let partitions: Vec<Partition> = (0..config.partitions)
            .map(|i| Partition::new(PartitionId(i), config.retention_records, config.mem.clone()))
            .collect();
        if let Some(dir) = &config.segment_dir {
            for p in &partitions {
                let path = dir.join(format!("{name}-{}.seg", p.id().0));
                p.attach_segment(&path)?;
            }
        }
        Ok(Topic {
            name: name.to_string(),
            partitions,
            produce_seq: Mutex::new(0),
            produced: Condvar::new(),
        })
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Access a partition.
    pub fn partition(&self, id: PartitionId) -> Result<&Partition> {
        self.partitions
            .get(id.0 as usize)
            .ok_or_else(|| HeliosError::NotFound(format!("partition {id:?} of '{}'", self.name)))
    }

    /// Partition a key routes to.
    pub fn route(&self, key: u64) -> PartitionId {
        PartitionId((fx_hash_u64(key) % self.partitions.len() as u64) as u32)
    }

    /// Produce with key-hashed routing. Returns `(partition, offset)`.
    pub fn produce(&self, key: u64, payload: Bytes) -> Result<(PartitionId, u64)> {
        let pid = self.route(key);
        let offset = self.produce_to(pid, key, payload)?;
        Ok((pid, offset))
    }

    /// Produce to an explicit partition.
    pub fn produce_to(&self, pid: PartitionId, key: u64, payload: Bytes) -> Result<u64> {
        let offset = self.partition(pid)?.append(key, payload)?;
        let mut seq = self.produce_seq.lock();
        *seq += 1;
        drop(seq);
        self.produced.notify_all();
        Ok(offset)
    }

    /// Produce a batch with key-hashed routing. Records land in their
    /// partitions in input order (per-key order is preserved), but the
    /// produce sequence is bumped and consumers are woken **once** for
    /// the whole batch rather than once per record. Returns the number
    /// of records produced.
    pub fn produce_many(&self, records: impl IntoIterator<Item = (u64, Bytes)>) -> Result<usize> {
        let mut n = 0usize;
        for (key, payload) in records {
            let pid = self.route(key);
            self.partition(pid)?.append(key, payload)?;
            n += 1;
        }
        if n > 0 {
            let mut seq = self.produce_seq.lock();
            *seq += n as u64;
            drop(seq);
            self.produced.notify_all();
        }
        Ok(n)
    }

    /// [`Topic::produce_many`] with explicit partitions per record (for
    /// producers with their own routing, e.g. the control plane's
    /// vertex-ownership routing).
    pub fn produce_many_to(
        &self,
        records: impl IntoIterator<Item = (PartitionId, u64, Bytes)>,
    ) -> Result<usize> {
        let mut n = 0usize;
        for (pid, key, payload) in records {
            self.partition(pid)?.append(key, payload)?;
            n += 1;
        }
        if n > 0 {
            let mut seq = self.produce_seq.lock();
            *seq += n as u64;
            drop(seq);
            self.produced.notify_all();
        }
        Ok(n)
    }

    pub(crate) fn restore_record(&self, pid: PartitionId, key: u64, payload: Bytes) -> Result<()> {
        self.partition(pid)?.restore(key, payload);
        Ok(())
    }

    /// Block until a produce happens after `last_seq`, or until `timeout`.
    /// Returns the current sequence number.
    pub fn wait_for_produce(&self, last_seq: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut seq = self.produce_seq.lock();
        while *seq == last_seq {
            if self.produced.wait_until(&mut seq, deadline).timed_out() {
                break;
            }
        }
        *seq
    }

    /// Current produce sequence number.
    pub fn produce_seq(&self) -> u64 {
        *self.produce_seq.lock()
    }

    /// Total records currently retained across partitions.
    pub fn total_len(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// Total end-offset across partitions (= records ever produced while
    /// this instance was live, plus recovered ones).
    pub fn total_end_offset(&self) -> u64 {
        self.partitions.iter().map(Partition::end_offset).sum()
    }

    /// Flush all durable segments.
    pub fn sync(&self) -> Result<()> {
        for p in &self.partitions {
            p.sync()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: u64) -> Bytes {
        Bytes::from(i.to_le_bytes().to_vec())
    }

    #[test]
    fn key_routing_is_stable() {
        let t = Topic::new("t", &TopicConfig::in_memory(4)).unwrap();
        let p1 = t.route(42);
        for _ in 0..10 {
            assert_eq!(t.route(42), p1);
        }
    }

    #[test]
    fn same_key_preserves_order() {
        let t = Topic::new("t", &TopicConfig::in_memory(4)).unwrap();
        for i in 0..100u64 {
            t.produce(7, payload(i)).unwrap();
        }
        let pid = t.route(7);
        let (recs, _) = t.partition(pid).unwrap().fetch(0, 1000);
        assert_eq!(recs.len(), 100);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.payload, payload(i as u64));
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        let cfg = TopicConfig {
            partitions: 0,
            ..Default::default()
        };
        assert!(Topic::new("bad", &cfg).is_err());
    }

    #[test]
    fn wait_for_produce_wakes_consumer() {
        use std::sync::Arc;
        let t = Arc::new(Topic::new("t", &TopicConfig::in_memory(1)).unwrap());
        let t2 = Arc::clone(&t);
        let seq0 = t.produce_seq();
        let waiter = std::thread::spawn(move || t2.wait_for_produce(seq0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        t.produce(1, payload(1)).unwrap();
        let seq = waiter.join().unwrap();
        assert_eq!(seq, seq0 + 1);
    }

    #[test]
    fn wait_for_produce_times_out() {
        let t = Topic::new("t", &TopicConfig::in_memory(1)).unwrap();
        let start = Instant::now();
        let seq = t.wait_for_produce(t.produce_seq(), Duration::from_millis(30));
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(seq, t.produce_seq());
    }

    #[test]
    fn produce_many_routes_orders_and_notifies_once() {
        use std::sync::Arc;
        let t = Arc::new(Topic::new("t", &TopicConfig::in_memory(4)).unwrap());
        let seq0 = t.produce_seq();
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || t2.wait_for_produce(seq0, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        let records: Vec<(u64, Bytes)> = (0..60u64).map(|i| (i % 3, payload(i))).collect();
        assert_eq!(t.produce_many(records).unwrap(), 60);
        // Sequence advances by the batch size, and the blocked consumer
        // wakes up.
        assert_eq!(t.produce_seq(), seq0 + 60);
        assert!(waiter.join().unwrap() > seq0);
        // Per-key order matches sequential produce() calls.
        let pid = t.route(1);
        let (recs, _) = t.partition(pid).unwrap().fetch(0, 1000);
        let mine: Vec<_> = recs.iter().filter(|r| r.key == 1).collect();
        assert_eq!(mine.len(), 20);
        for (i, r) in mine.iter().enumerate() {
            assert_eq!(r.payload, payload(i as u64 * 3 + 1));
        }
        // Empty batch: no sequence bump.
        assert_eq!(t.produce_many(Vec::new()).unwrap(), 0);
        assert_eq!(t.produce_seq(), seq0 + 60);
    }

    #[test]
    fn topic_deletion_releases_mem_gauge() {
        let g = MemGauge::new();
        let cfg = TopicConfig {
            partitions: 3,
            mem: g.clone(),
            ..Default::default()
        };
        let t = Topic::new("t", &cfg).unwrap();
        for i in 0..50u64 {
            t.produce(i, payload(i)).unwrap();
        }
        let retained: usize = (0..3)
            .map(|i| t.partition(PartitionId(i)).unwrap().bytes())
            .sum();
        assert!(retained > 0);
        assert_eq!(g.get(), retained as i64);
        drop(t);
        assert_eq!(g.get(), 0, "deleting the topic frees its log bytes");
    }

    #[test]
    fn totals_aggregate_partitions() {
        let t = Topic::new("t", &TopicConfig::in_memory(3)).unwrap();
        for i in 0..50u64 {
            t.produce(i, payload(i)).unwrap();
        }
        assert_eq!(t.total_len(), 50);
        assert_eq!(t.total_end_offset(), 50);
        assert_eq!(t.partition_count(), 3);
    }
}
