//! The broker: a registry of topics plus consumer-group offset storage.

use crate::consumer::Consumer;
use crate::segment::read_segment;
use crate::topic::{Topic, TopicConfig};
use helios_types::{FxHashMap, HeliosError, PartitionId, Result};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Committed offset key: (group, topic, partition).
type OffsetKey = (String, String, u32);

/// Live consumer lag for one (group, topic) pair, as reported by
/// [`Broker::lag_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagEntry {
    pub group: String,
    pub topic: String,
    /// Records produced but not yet polled by the group's consumers.
    pub lag: u64,
}

/// An in-process message broker. Cheaply clonable via `Arc`; every worker
/// in a Helios deployment holds a handle to the same broker (like every
/// node in the paper's cluster talks to the same Kafka deployment).
#[derive(Default)]
pub struct Broker {
    topics: RwLock<FxHashMap<String, Arc<Topic>>>,
    offsets: RwLock<FxHashMap<OffsetKey, u64>>,
    /// Live (uncommitted) consumer positions, shared with the consumers
    /// themselves so the broker can observe lag without polling them.
    positions: RwLock<FxHashMap<OffsetKey, Arc<AtomicU64>>>,
}

impl Broker {
    /// New empty broker.
    pub fn new() -> Arc<Self> {
        Arc::new(Broker::default())
    }

    /// Create a topic. Fails if it already exists.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<Arc<Topic>> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(HeliosError::AlreadyExists(format!("topic '{name}'")));
        }
        let t = Arc::new(Topic::new(name, &config)?);
        topics.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Create a durable topic and replay any existing segment files from
    /// `config.segment_dir` into it (crash recovery).
    pub fn recover_topic(&self, name: &str, config: TopicConfig) -> Result<Arc<Topic>> {
        let dir = config.segment_dir.clone().ok_or_else(|| {
            HeliosError::InvalidConfig("recover_topic requires a segment_dir".into())
        })?;
        // Read old segments *before* creating the topic (which reopens the
        // files for append).
        let mut recovered: Vec<(PartitionId, Vec<(u64, bytes::Bytes)>)> = Vec::new();
        for pid in 0..config.partitions {
            let path = dir.join(format!("{name}-{pid}.seg"));
            recovered.push((PartitionId(pid), read_segment(&path)?));
        }
        let t = self.create_topic(name, config)?;
        for (pid, frames) in recovered {
            for (key, payload) in frames {
                t.restore_record(pid, key, payload)?;
            }
        }
        Ok(t)
    }

    /// Delete a topic and purge every consumer group's committed offsets
    /// and live positions for it. Purging matters when a topic name is
    /// later re-created (e.g. `samples-3` after a scale-in/scale-out
    /// cycle): a fresh topic starts at offset 0, so stale committed
    /// offsets from the previous incarnation would make consumers skip
    /// the entire new log. Existing consumers of the deleted topic keep
    /// their `Arc<Topic>` and simply drain whatever is already buffered.
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        let removed = self.topics.write().remove(name);
        if removed.is_none() {
            return Err(HeliosError::NotFound(format!("topic '{name}'")));
        }
        self.offsets.write().retain(|(_, t, _), _| t != name);
        self.positions.write().retain(|(_, t, _), _| t != name);
        Ok(())
    }

    /// Look up a topic.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| HeliosError::NotFound(format!("topic '{name}'")))
    }

    /// Names of all topics.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Create a consumer in `group` reading the given partitions of a
    /// topic, resuming from committed offsets.
    pub fn consumer(
        self: &Arc<Self>,
        group: &str,
        topic: &str,
        partitions: &[PartitionId],
    ) -> Result<Consumer> {
        let t = self.topic(topic)?;
        for &p in partitions {
            t.partition(p)?; // validate
        }
        Ok(Consumer::new(
            Arc::clone(self),
            group.to_string(),
            t,
            partitions.to_vec(),
        ))
    }

    /// Create a consumer over *all* partitions of a topic.
    pub fn consumer_all(self: &Arc<Self>, group: &str, topic: &str) -> Result<Consumer> {
        let t = self.topic(topic)?;
        let parts: Vec<PartitionId> = (0..t.partition_count()).map(PartitionId).collect();
        self.consumer(group, topic, &parts)
    }

    pub(crate) fn committed(&self, group: &str, topic: &str, partition: PartitionId) -> u64 {
        self.offsets
            .read()
            .get(&(group.to_string(), topic.to_string(), partition.0))
            .copied()
            .unwrap_or(0)
    }

    pub(crate) fn commit(&self, group: &str, topic: &str, partition: PartitionId, offset: u64) {
        self.offsets
            .write()
            .insert((group.to_string(), topic.to_string(), partition.0), offset);
    }

    /// Get-or-create the live position cell for (group, topic, partition)
    /// and reset it to the group's committed offset — a new consumer
    /// resumes from the last commit, not from a dead predecessor's
    /// in-memory position.
    pub(crate) fn register_position(
        &self,
        group: &str,
        topic: &str,
        partition: PartitionId,
    ) -> Arc<AtomicU64> {
        let committed = self.committed(group, topic, partition);
        let cell = Arc::clone(
            self.positions
                .write()
                .entry((group.to_string(), topic.to_string(), partition.0))
                .or_default(),
        );
        cell.store(committed, Ordering::Relaxed);
        cell
    }

    /// Names of all consumer groups that have ever read (or committed)
    /// on this broker, sorted.
    pub fn consumer_groups(&self) -> Vec<String> {
        let mut groups: Vec<String> = self
            .positions
            .read()
            .keys()
            .map(|(g, _, _)| g.clone())
            .chain(self.offsets.read().keys().map(|(g, _, _)| g.clone()))
            .collect();
        groups.sort();
        groups.dedup();
        groups
    }

    /// Total unread records for `group` across the partitions of `topic`
    /// the group is assigned to — those with a live consumer position or
    /// a committed offset. Unassigned partitions are not the group's
    /// backlog (Helios workers deliberately split a topic's partitions
    /// across per-worker groups), and an unknown group has zero lag.
    pub fn group_lag(&self, group: &str, topic: &str) -> u64 {
        let t = match self.topic(topic) {
            Ok(t) => t,
            Err(_) => return 0,
        };
        let positions = self.positions.read();
        let offsets = self.offsets.read();
        (0..t.partition_count())
            .map(|p| {
                let key = (group.to_string(), topic.to_string(), p);
                let pos = match (positions.get(&key), offsets.get(&key)) {
                    (Some(cell), _) => cell.load(Ordering::Relaxed),
                    (None, Some(&committed)) => committed,
                    (None, None) => return 0, // not assigned to this group
                };
                let end = t
                    .partition(PartitionId(p))
                    .map(|p| p.end_offset())
                    .unwrap_or(0);
                end.saturating_sub(pos)
            })
            .sum()
    }

    /// Lag of every (group, topic) pair with a live or committed
    /// position, sorted by group then topic. This is what a periodic
    /// stats reporter polls to watch the sampling→serving pipeline.
    pub fn lag_report(&self) -> Vec<LagEntry> {
        let mut pairs: Vec<(String, String)> = self
            .positions
            .read()
            .keys()
            .map(|(g, t, _)| (g.clone(), t.clone()))
            .chain(
                self.offsets
                    .read()
                    .keys()
                    .map(|(g, t, _)| (g.clone(), t.clone())),
            )
            .collect();
        pairs.sort();
        pairs.dedup();
        pairs
            .into_iter()
            .map(|(group, topic)| {
                let lag = self.group_lag(&group, &topic);
                LagEntry { group, topic, lag }
            })
            .collect()
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::path::PathBuf;

    #[test]
    fn create_and_lookup() {
        let b = Broker::new();
        b.create_topic("updates", TopicConfig::in_memory(4))
            .unwrap();
        assert!(b.topic("updates").is_ok());
        assert!(b.topic("missing").is_err());
        assert!(b
            .create_topic("updates", TopicConfig::in_memory(4))
            .is_err());
        assert_eq!(b.topic_names(), vec!["updates".to_string()]);
    }

    #[test]
    fn delete_topic_purges_offsets_for_reincarnation() {
        let b = Broker::new();
        let t = b
            .create_topic("samples-3", TopicConfig::in_memory(1))
            .unwrap();
        for i in 0..10u64 {
            t.produce(i, Bytes::from_static(b"s")).unwrap();
        }
        let mut c = b.consumer_all("sew-3-r0", "samples-3").unwrap();
        assert_eq!(c.poll_now(100).len(), 10);
        c.commit();
        drop(c);
        b.delete_topic("samples-3").unwrap();
        assert!(b.topic("samples-3").is_err());
        assert!(b.delete_topic("samples-3").is_err());
        // Re-created topic: same name, fresh log. The old committed
        // offset (10) must not survive, or this consumer would skip the
        // new topic's entire contents.
        let t = b
            .create_topic("samples-3", TopicConfig::in_memory(1))
            .unwrap();
        for i in 0..4u64 {
            t.produce(i, Bytes::from_static(b"fresh")).unwrap();
        }
        let mut c = b.consumer_all("sew-3-r0", "samples-3").unwrap();
        assert_eq!(c.poll_now(100).len(), 4);
        assert_eq!(b.group_lag("sew-3-r0", "samples-3"), 0);
    }

    #[test]
    fn consumer_validates_partitions() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::in_memory(2)).unwrap();
        assert!(b.consumer("g", "t", &[PartitionId(0)]).is_ok());
        assert!(b.consumer("g", "t", &[PartitionId(5)]).is_err());
        assert!(b.consumer("g", "missing", &[PartitionId(0)]).is_err());
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("helios-mq-broker-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn durable_topic_recovers_after_restart() {
        let dir = tmpdir("recover");
        let cfg = TopicConfig {
            partitions: 2,
            retention_records: 0,
            segment_dir: Some(dir.clone()),
            ..Default::default()
        };
        {
            let b = Broker::new();
            let t = b.create_topic("dur", cfg.clone()).unwrap();
            for i in 0..100u64 {
                t.produce(i, Bytes::from(format!("m{i}"))).unwrap();
            }
            t.sync().unwrap();
        }
        // "Restart": a fresh broker recovers the topic from disk.
        let b = Broker::new();
        let t = b.recover_topic("dur", cfg).unwrap();
        assert_eq!(t.total_end_offset(), 100);
        // New produces continue after the recovered tail.
        t.produce(7, Bytes::from_static(b"new")).unwrap();
        assert_eq!(t.total_end_offset(), 101);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_requires_segment_dir() {
        let b = Broker::new();
        assert!(b.recover_topic("x", TopicConfig::in_memory(1)).is_err());
    }

    #[test]
    fn group_lag_tracks_live_consumer_positions() {
        let b = Broker::new();
        let t = b.create_topic("t", TopicConfig::in_memory(2)).unwrap();
        for i in 0..20u64 {
            t.produce(i, Bytes::from_static(b"z")).unwrap();
        }
        // An unknown group is assigned no partitions, so it has no lag;
        // creating its consumer registers positions at the committed
        // offset (0) and the full backlog becomes visible.
        assert_eq!(b.group_lag("g", "t"), 0);
        let mut c = b.consumer_all("g", "t").unwrap();
        assert_eq!(b.group_lag("g", "t"), 20);
        let got = c.poll_now(12).len();
        assert_eq!(got, 12);
        // The broker sees the live positions without any commit.
        assert_eq!(b.group_lag("g", "t"), 8);
        assert_eq!(c.lag(), b.group_lag("g", "t"));
        while !c.poll_now(100).is_empty() {}
        assert_eq!(b.group_lag("g", "t"), 0);
        // Unknown topic is zero lag, not a panic.
        assert_eq!(b.group_lag("g", "missing"), 0);
    }

    #[test]
    fn lag_report_covers_all_groups_and_topics() {
        let b = Broker::new();
        let t1 = b.create_topic("a", TopicConfig::in_memory(1)).unwrap();
        let t2 = b.create_topic("b", TopicConfig::in_memory(1)).unwrap();
        for i in 0..5u64 {
            t1.produce(i, Bytes::from_static(b"x")).unwrap();
        }
        for i in 0..3u64 {
            t2.produce(i, Bytes::from_static(b"y")).unwrap();
        }
        let mut c1 = b.consumer_all("g1", "a").unwrap();
        let _c2 = b.consumer_all("g2", "b").unwrap();
        assert_eq!(c1.poll_now(2).len(), 2);
        let report = b.lag_report();
        assert_eq!(
            report,
            vec![
                LagEntry {
                    group: "g1".into(),
                    topic: "a".into(),
                    lag: 3
                },
                LagEntry {
                    group: "g2".into(),
                    topic: "b".into(),
                    lag: 3
                },
            ]
        );
        assert_eq!(
            b.consumer_groups(),
            vec!["g1".to_string(), "g2".to_string()]
        );
    }

    #[test]
    fn new_consumer_resets_live_position_to_committed() {
        let b = Broker::new();
        let t = b.create_topic("t", TopicConfig::in_memory(1)).unwrap();
        for i in 0..10u64 {
            t.produce(i, Bytes::from_static(b"m")).unwrap();
        }
        {
            let mut c = b.consumer_all("g", "t").unwrap();
            assert_eq!(c.poll_now(7).len(), 7);
            // no commit: the live position dies with the consumer
        }
        assert_eq!(b.group_lag("g", "t"), 3, "stale live position visible");
        let _c2 = b.consumer_all("g", "t").unwrap();
        assert_eq!(
            b.group_lag("g", "t"),
            10,
            "a fresh consumer resumes from the committed offset"
        );
    }
}
