//! The broker: a registry of topics plus consumer-group offset storage.

use crate::consumer::Consumer;
use crate::segment::read_segment;
use crate::topic::{Topic, TopicConfig};
use helios_types::{FxHashMap, HeliosError, PartitionId, Result};
use parking_lot::RwLock;
use std::sync::Arc;

/// Committed offset key: (group, topic, partition).
type OffsetKey = (String, String, u32);

/// An in-process message broker. Cheaply clonable via `Arc`; every worker
/// in a Helios deployment holds a handle to the same broker (like every
/// node in the paper's cluster talks to the same Kafka deployment).
#[derive(Default)]
pub struct Broker {
    topics: RwLock<FxHashMap<String, Arc<Topic>>>,
    offsets: RwLock<FxHashMap<OffsetKey, u64>>,
}

impl Broker {
    /// New empty broker.
    pub fn new() -> Arc<Self> {
        Arc::new(Broker::default())
    }

    /// Create a topic. Fails if it already exists.
    pub fn create_topic(&self, name: &str, config: TopicConfig) -> Result<Arc<Topic>> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(HeliosError::AlreadyExists(format!("topic '{name}'")));
        }
        let t = Arc::new(Topic::new(name, &config)?);
        topics.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Create a durable topic and replay any existing segment files from
    /// `config.segment_dir` into it (crash recovery).
    pub fn recover_topic(&self, name: &str, config: TopicConfig) -> Result<Arc<Topic>> {
        let dir = config.segment_dir.clone().ok_or_else(|| {
            HeliosError::InvalidConfig("recover_topic requires a segment_dir".into())
        })?;
        // Read old segments *before* creating the topic (which reopens the
        // files for append).
        let mut recovered: Vec<(PartitionId, Vec<(u64, bytes::Bytes)>)> = Vec::new();
        for pid in 0..config.partitions {
            let path = dir.join(format!("{name}-{pid}.seg"));
            recovered.push((PartitionId(pid), read_segment(&path)?));
        }
        let t = self.create_topic(name, config)?;
        for (pid, frames) in recovered {
            for (key, payload) in frames {
                t.restore_record(pid, key, payload)?;
            }
        }
        Ok(t)
    }

    /// Look up a topic.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| HeliosError::NotFound(format!("topic '{name}'")))
    }

    /// Names of all topics.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Create a consumer in `group` reading the given partitions of a
    /// topic, resuming from committed offsets.
    pub fn consumer(
        self: &Arc<Self>,
        group: &str,
        topic: &str,
        partitions: &[PartitionId],
    ) -> Result<Consumer> {
        let t = self.topic(topic)?;
        for &p in partitions {
            t.partition(p)?; // validate
        }
        Ok(Consumer::new(
            Arc::clone(self),
            group.to_string(),
            t,
            partitions.to_vec(),
        ))
    }

    /// Create a consumer over *all* partitions of a topic.
    pub fn consumer_all(self: &Arc<Self>, group: &str, topic: &str) -> Result<Consumer> {
        let t = self.topic(topic)?;
        let parts: Vec<PartitionId> = (0..t.partition_count()).map(PartitionId).collect();
        self.consumer(group, topic, &parts)
    }

    pub(crate) fn committed(&self, group: &str, topic: &str, partition: PartitionId) -> u64 {
        self.offsets
            .read()
            .get(&(group.to_string(), topic.to_string(), partition.0))
            .copied()
            .unwrap_or(0)
    }

    pub(crate) fn commit(&self, group: &str, topic: &str, partition: PartitionId, offset: u64) {
        self.offsets
            .write()
            .insert((group.to_string(), topic.to_string(), partition.0), offset);
    }
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("topics", &self.topic_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::path::PathBuf;

    #[test]
    fn create_and_lookup() {
        let b = Broker::new();
        b.create_topic("updates", TopicConfig::in_memory(4)).unwrap();
        assert!(b.topic("updates").is_ok());
        assert!(b.topic("missing").is_err());
        assert!(b
            .create_topic("updates", TopicConfig::in_memory(4))
            .is_err());
        assert_eq!(b.topic_names(), vec!["updates".to_string()]);
    }

    #[test]
    fn consumer_validates_partitions() {
        let b = Broker::new();
        b.create_topic("t", TopicConfig::in_memory(2)).unwrap();
        assert!(b.consumer("g", "t", &[PartitionId(0)]).is_ok());
        assert!(b.consumer("g", "t", &[PartitionId(5)]).is_err());
        assert!(b.consumer("g", "missing", &[PartitionId(0)]).is_err());
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("helios-mq-broker-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn durable_topic_recovers_after_restart() {
        let dir = tmpdir("recover");
        let cfg = TopicConfig {
            partitions: 2,
            retention_records: 0,
            segment_dir: Some(dir.clone()),
        };
        {
            let b = Broker::new();
            let t = b.create_topic("dur", cfg.clone()).unwrap();
            for i in 0..100u64 {
                t.produce(i, Bytes::from(format!("m{i}"))).unwrap();
            }
            t.sync().unwrap();
        }
        // "Restart": a fresh broker recovers the topic from disk.
        let b = Broker::new();
        let t = b.recover_topic("dur", cfg).unwrap();
        assert_eq!(t.total_end_offset(), 100);
        // New produces continue after the recovered tail.
        t.produce(7, Bytes::from_static(b"new")).unwrap();
        assert_eq!(t.total_end_offset(), 101);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_requires_segment_dir() {
        let b = Broker::new();
        assert!(b.recover_topic("x", TopicConfig::in_memory(1)).is_err());
    }
}
