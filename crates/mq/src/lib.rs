//! # helios-mq
//!
//! An in-process, partitioned, offset-addressed message queue — the
//! reproduction's stand-in for the Kafka cluster Helios deploys (§4.1:
//! "Helios adopts Kafka to persistently store and transfer the inputs for
//! sampling and serving workers").
//!
//! Semantics preserved from Kafka, because Helios depends on them:
//!
//! * **Topics split into partitions**; records within a partition are
//!   totally ordered and assigned monotonically increasing offsets.
//! * **Key-hashed routing**: producing with a key routes to
//!   `hash(key) % partitions`, so all updates of one vertex land in the
//!   same partition and are consumed in order.
//! * **Consumer groups with committed offsets**: consumers poll batches,
//!   blocking with a timeout, and commit their positions; a restarted
//!   consumer resumes from the last commit.
//! * **Durability (optional)**: a topic may be backed by append-only
//!   segment files; [`Broker::recover_topic`] replays them on restart.
//! * **Retention**: partitions retain a bounded number of records,
//!   truncating from the front like Kafka's size-based retention.
//!
//! What is deliberately *not* reproduced: the network protocol, replication,
//! and rebalancing — Helios's correctness and performance story needs the
//! log semantics, not the distributed implementation of the log itself.

pub mod broker;
pub mod consumer;
pub mod partition;
pub mod record;
pub mod segment;
pub mod topic;

pub use broker::{Broker, LagEntry};
pub use consumer::Consumer;
pub use record::Record;
pub use topic::{Topic, TopicConfig};
