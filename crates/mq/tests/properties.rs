//! Property tests of the queue's delivery guarantees: per-key FIFO under
//! concurrent producers, at-least-once re-delivery without commits,
//! retention monotonicity, and durable recovery equivalence.

use bytes::Bytes;
use helios_mq::{Broker, TopicConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Per-key order is preserved no matter how producers interleave, because
/// a key always routes to the same partition and partitions are FIFO.
#[test]
fn per_key_fifo_under_concurrent_producers() {
    let broker = Broker::new();
    let topic = broker.create_topic("t", TopicConfig::in_memory(4)).unwrap();
    let keys_per_thread = 8u64;
    let msgs_per_key = 200u64;
    let mut handles = Vec::new();
    for th in 0..4u64 {
        let topic = Arc::clone(&topic);
        handles.push(std::thread::spawn(move || {
            for seq in 0..msgs_per_key {
                for k in 0..keys_per_thread {
                    let key = th * keys_per_thread + k;
                    let payload = Bytes::from(format!("{key}:{seq}"));
                    topic.produce(key, payload).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut consumer = broker.consumer_all("g", "t").unwrap();
    let mut last_seq: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut total = 0u64;
    loop {
        let recs = consumer.poll_now(1000);
        if recs.is_empty() {
            break;
        }
        for r in recs {
            let s = String::from_utf8(r.payload.to_vec()).unwrap();
            let (key, seq) = s.split_once(':').unwrap();
            let key: u64 = key.parse().unwrap();
            let seq: i64 = seq.parse().unwrap();
            let prev = last_seq.entry(key).or_insert(-1);
            assert!(seq > *prev, "key {key}: seq {seq} after {prev}");
            *prev = seq;
            total += 1;
        }
    }
    assert_eq!(total, 4 * keys_per_thread * msgs_per_key);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

    /// Any produce sequence: a consumer that never commits re-reads the
    /// same records; a consumer that commits resumes exactly after.
    #[test]
    fn commit_resume_equivalence(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..60),
        commit_at in 0usize..60,
    ) {
        let broker = Broker::new();
        let topic = broker.create_topic("t", TopicConfig::in_memory(2)).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            topic.produce(i as u64, Bytes::from(p.clone())).unwrap();
        }
        let commit_at = commit_at.min(payloads.len());

        // First consumer reads `commit_at` records, commits, drops.
        {
            let mut c = broker.consumer_all("g", "t").unwrap();
            let mut seen = 0;
            while seen < commit_at {
                let recs = c.poll_now(commit_at - seen);
                prop_assert!(!recs.is_empty());
                seen += recs.len();
            }
            c.commit();
        }
        // Second consumer must see exactly the remainder.
        let mut c2 = broker.consumer_all("g", "t").unwrap();
        let mut rest = 0;
        loop {
            let recs = c2.poll_now(1000);
            if recs.is_empty() { break; }
            rest += recs.len();
        }
        prop_assert_eq!(rest, payloads.len() - commit_at);
    }

    /// Retention never loses the *newest* records and never delivers a
    /// record twice within one consumer.
    #[test]
    fn retention_keeps_newest(n in 1usize..200, cap in 1usize..50) {
        let broker = Broker::new();
        let topic = broker
            .create_topic("t", TopicConfig { partitions: 1, retention_records: cap, segment_dir: None, ..Default::default() })
            .unwrap();
        for i in 0..n {
            topic.produce(0, Bytes::from(vec![i as u8])).unwrap();
        }
        let mut c = broker.consumer_all("g", "t").unwrap();
        let recs = c.poll_now(1000);
        let expect = n.min(cap);
        prop_assert_eq!(recs.len(), expect);
        // The retained suffix is exactly the last `expect` records.
        for (j, r) in recs.iter().enumerate() {
            prop_assert_eq!(r.payload[0] as usize, n - expect + j);
        }
        prop_assert!(c.poll_now(10).is_empty());
    }

    /// Durable topics recover the exact same record sequence.
    #[test]
    fn durable_recovery_equivalence(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..40)
    ) {
        let dir = std::env::temp_dir().join(format!(
            "helios-mq-prop-{}-{}",
            std::process::id(),
            payloads.len() * 1000 + payloads.first().map_or(0, |p| p.len())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TopicConfig { partitions: 2, retention_records: 0, segment_dir: Some(dir.clone()), ..Default::default() };
        let before: Vec<Vec<u8>>;
        {
            let broker = Broker::new();
            let topic = broker.create_topic("d", cfg.clone()).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                topic.produce(i as u64, Bytes::from(p.clone())).unwrap();
            }
            topic.sync().unwrap();
            let mut c = broker.consumer_all("g", "d").unwrap();
            before = drain(&mut c);
        }
        let broker = Broker::new();
        let _ = broker.recover_topic("d", cfg).unwrap();
        let mut c = broker.consumer_all("g", "d").unwrap();
        let after = drain(&mut c);
        prop_assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn drain(c: &mut helios_mq::Consumer) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let recs = c.poll_now(1000);
        if recs.is_empty() {
            break;
        }
        for r in recs {
            out.push(r.payload.to_vec());
        }
    }
    out
}
