//! # helios-actor
//!
//! A minimal actor runtime over OS threads and crossbeam channels — the
//! reproduction of the "distributed actor-based framework" the paper's
//! workers are built on (§4.2/§4.3: polling threads, sampling threads,
//! publisher threads; polling threads, data-updating threads, serving
//! threads).
//!
//! Three primitives:
//!
//! * [`spawn`] — one actor on one named thread with a typed mailbox;
//! * [`ShardedPool`] — N actors, each owning a *shard* of a key space;
//!   messages are routed by key hash, so per-key state (reservoir tables!)
//!   needs no locking and per-key message order is preserved;
//! * [`Liveness`] — heartbeat beacons that a coordinator polls to detect
//!   dead workers (§4.1: "monitors the liveliness of all workers via
//!   heartbeats").

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An actor processes messages of one type, sequentially, on its own
/// thread.
pub trait Actor: Send + 'static {
    /// Mailbox message type.
    type Msg: Send + 'static;

    /// Handle one message.
    fn handle(&mut self, msg: Self::Msg);

    /// Called once on the actor's own thread before the first message
    /// (e.g. to register with a thread-local profiler registry).
    fn on_start(&mut self) {}

    /// Called once after the mailbox closes, before the thread exits.
    fn on_stop(&mut self) {}
}

enum Envelope<M> {
    Msg(M),
    Stop,
}

/// Handle to a spawned actor: send messages, then [`ActorHandle::stop`].
pub struct ActorHandle<M: Send + 'static> {
    name: String,
    tx: Sender<Envelope<M>>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl<M: Send + 'static> ActorHandle<M> {
    /// The actor's thread name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueue a message. Returns `false` if the actor has stopped.
    pub fn send(&self, msg: M) -> bool {
        self.tx.send(Envelope::Msg(msg)).is_ok()
    }

    /// Ask the actor to stop after draining its mailbox, and join it.
    pub fn stop(&self) {
        let _ = self.tx.send(Envelope::Stop);
        if let Some(j) = self.join.lock().take() {
            let _ = j.join();
        }
    }

    /// Number of messages waiting in the mailbox.
    pub fn backlog(&self) -> usize {
        self.tx.len()
    }
}

/// Spawn `actor` on a named thread, returning its handle.
pub fn spawn<A: Actor>(name: &str, mut actor: A) -> ActorHandle<A::Msg> {
    let (tx, rx) = unbounded::<Envelope<A::Msg>>();
    let thread_name = name.to_string();
    let join = std::thread::Builder::new()
        .name(thread_name.clone())
        .spawn(move || {
            actor.on_start();
            while let Ok(env) = rx.recv() {
                match env {
                    Envelope::Msg(m) => actor.handle(m),
                    Envelope::Stop => break,
                }
            }
            actor.on_stop();
        })
        .expect("failed to spawn actor thread");
    ActorHandle {
        name: name.to_string(),
        tx,
        join: Mutex::new(Some(join)),
    }
}

/// A pool of N identical actors; messages are routed by a caller-supplied
/// key so that all messages for one key are handled by the same actor, in
/// order. This is how sampling workers shard their reservoir tables over
/// sampling threads without locks.
pub struct ShardedPool<M: Send + 'static> {
    handles: Vec<ActorHandle<M>>,
}

impl<M: Send + 'static> ShardedPool<M> {
    /// Spawn `n` actors produced by `factory(shard_index)`.
    pub fn new<A, F>(name: &str, n: usize, mut factory: F) -> Self
    where
        A: Actor<Msg = M>,
        F: FnMut(usize) -> A,
    {
        assert!(n > 0, "pool needs at least one shard");
        let handles = (0..n)
            .map(|i| spawn(&format!("{name}-{i}"), factory(i)))
            .collect();
        ShardedPool { handles }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Route a message by key hash.
    pub fn send(&self, key: u64, msg: M) -> bool {
        let idx = (helios_shard_hash(key) % self.handles.len() as u64) as usize;
        self.handles[idx].send(msg)
    }

    /// Send to an explicit shard.
    pub fn send_to(&self, shard: usize, msg: M) -> bool {
        self.handles[shard % self.handles.len()].send(msg)
    }

    /// Total backlog across shards.
    pub fn backlog(&self) -> usize {
        self.handles.iter().map(ActorHandle::backlog).sum()
    }

    /// Stop and join every shard (drains mailboxes first).
    pub fn stop(&self) {
        for h in &self.handles {
            h.stop();
        }
    }
}

#[inline]
fn helios_shard_hash(key: u64) -> u64 {
    // Deliberately a *different* mix than helios-types::fx_hash_u64: the
    // deployment routes vertices to workers with that hash, so keys
    // arriving at one worker satisfy `fx_hash(v) ≡ w (mod M)`. Re-using
    // the same hash here would correlate shard choice with worker choice
    // and leave shards idle whenever gcd(M, shards) > 1. (SplitMix64
    // finalizer.)
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A heartbeat beacon held by a worker; cheap to bump.
#[derive(Clone)]
pub struct Beacon {
    last_beat_ms: Arc<AtomicU64>,
    epoch: Instant,
}

impl Beacon {
    /// Record a heartbeat now.
    pub fn beat(&self) {
        let ms = self.epoch.elapsed().as_millis() as u64;
        self.last_beat_ms.store(ms, Ordering::Relaxed);
    }
}

/// Liveness registry: the coordinator's view of worker heartbeats.
pub struct Liveness {
    epoch: Instant,
    workers: Mutex<Vec<(String, Arc<AtomicU64>)>>,
}

impl Default for Liveness {
    fn default() -> Self {
        Self::new()
    }
}

impl Liveness {
    /// New registry.
    pub fn new() -> Self {
        Liveness {
            epoch: Instant::now(),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Register a worker; it should `beat()` periodically.
    pub fn register(&self, name: &str) -> Beacon {
        let cell = Arc::new(AtomicU64::new(self.epoch.elapsed().as_millis() as u64));
        self.workers
            .lock()
            .push((name.to_string(), Arc::clone(&cell)));
        Beacon {
            last_beat_ms: cell,
            epoch: self.epoch,
        }
    }

    /// Names of workers whose last beat is older than `timeout`.
    pub fn dead_workers(&self, timeout: Duration) -> Vec<String> {
        let now = self.epoch.elapsed().as_millis() as u64;
        let cutoff = now.saturating_sub(timeout.as_millis() as u64);
        self.workers
            .lock()
            .iter()
            .filter(|(_, c)| c.load(Ordering::Relaxed) < cutoff)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Remove a worker from the registry (scale-in). Its beacon becomes
    /// inert; a name registered more than once loses every entry.
    pub fn deregister(&self, name: &str) {
        self.workers.lock().retain(|(n, _)| n != name);
    }

    /// Number of registered workers.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counter {
        count: Arc<AtomicUsize>,
        stopped: Arc<AtomicUsize>,
    }

    impl Actor for Counter {
        type Msg = u64;
        fn handle(&mut self, _msg: u64) {
            self.count.fetch_add(1, Ordering::SeqCst);
        }
        fn on_stop(&mut self) {
            self.stopped.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn actor_processes_all_messages_before_stop() {
        let count = Arc::new(AtomicUsize::new(0));
        let stopped = Arc::new(AtomicUsize::new(0));
        let h = spawn(
            "counter",
            Counter {
                count: Arc::clone(&count),
                stopped: Arc::clone(&stopped),
            },
        );
        for i in 0..1000 {
            assert!(h.send(i));
        }
        h.stop();
        assert_eq!(count.load(Ordering::SeqCst), 1000);
        assert_eq!(stopped.load(Ordering::SeqCst), 1);
        assert!(!h.send(1), "send after stop must fail");
    }

    #[test]
    fn stop_is_idempotent() {
        let count = Arc::new(AtomicUsize::new(0));
        let stopped = Arc::new(AtomicUsize::new(0));
        let h = spawn(
            "idem",
            Counter {
                count,
                stopped: Arc::clone(&stopped),
            },
        );
        h.stop();
        h.stop();
        assert_eq!(stopped.load(Ordering::SeqCst), 1);
    }

    struct Recorder {
        shard: usize,
        seen: Arc<Mutex<Vec<(usize, u64)>>>,
    }

    impl Actor for Recorder {
        type Msg = u64;
        fn handle(&mut self, msg: u64) {
            self.seen.lock().push((self.shard, msg));
        }
    }

    #[test]
    fn sharded_pool_routes_consistently_and_in_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let pool = ShardedPool::new("pool", 4, |shard| Recorder {
            shard,
            seen: Arc::clone(&seen),
        });
        assert_eq!(pool.shards(), 4);
        // Send 50 messages for each of 20 keys.
        for seq in 0..50u64 {
            for key in 0..20u64 {
                assert!(pool.send(key, key * 1000 + seq));
            }
        }
        pool.stop();
        let seen = seen.lock();
        assert_eq!(seen.len(), 1000);
        // Per key: all messages on one shard, sequence increasing.
        for key in 0..20u64 {
            let msgs: Vec<(usize, u64)> = seen
                .iter()
                .filter(|(_, m)| m / 1000 == key)
                .copied()
                .collect();
            assert_eq!(msgs.len(), 50);
            let shard = msgs[0].0;
            let mut last = None;
            for (s, m) in msgs {
                assert_eq!(s, shard, "key {key} hopped shards");
                if let Some(l) = last {
                    assert!(m > l, "key {key} reordered");
                }
                last = Some(m);
            }
        }
    }

    #[test]
    fn send_to_explicit_shard() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let pool = ShardedPool::new("pool", 2, |shard| Recorder {
            shard,
            seen: Arc::clone(&seen),
        });
        pool.send_to(0, 100);
        pool.send_to(1, 200);
        pool.send_to(5, 300); // wraps mod 2 -> shard 1
        pool.stop();
        let mut seen = seen.lock().clone();
        seen.sort();
        assert_eq!(seen, vec![(0, 100), (1, 200), (1, 300)]);
    }

    #[test]
    fn liveness_detects_silent_workers() {
        let live = Liveness::new();
        let b1 = live.register("sampler-0");
        let _b2 = live.register("sampler-1");
        assert_eq!(live.worker_count(), 2);
        std::thread::sleep(Duration::from_millis(30));
        b1.beat();
        let dead = live.dead_workers(Duration::from_millis(20));
        assert_eq!(dead, vec!["sampler-1".to_string()]);
        let dead = live.dead_workers(Duration::from_secs(10));
        assert!(dead.is_empty());
    }

    #[test]
    fn liveness_deregister_removes_worker() {
        let live = Liveness::new();
        let _b0 = live.register("serving-0");
        let _b1 = live.register("serving-1");
        assert_eq!(live.worker_count(), 2);
        live.deregister("serving-1");
        assert_eq!(live.worker_count(), 1);
        // A departed worker that stops beating no longer reads as dead.
        std::thread::sleep(Duration::from_millis(30));
        _b0.beat();
        assert!(live.dead_workers(Duration::from_millis(20)).is_empty());
        // Deregistering an unknown name is a no-op.
        live.deregister("serving-9");
        assert_eq!(live.worker_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_pool_panics() {
        let _ = ShardedPool::new("p", 0, |shard| Recorder {
            shard,
            seen: Arc::new(Mutex::new(Vec::new())),
        });
    }
}

#[cfg(test)]
mod hash_tests {
    use super::*;

    /// Regression: shard choice must not correlate with worker-routing
    /// residues. With the old (fx-identical) hash, keys with even fx-hash
    /// could only ever reach even shards, idling half a 4-shard pool
    /// behind a 2-worker router.
    #[test]
    fn shard_hash_decorrelated_from_fx_routing() {
        // Reproduce fx_hash_u64 here (helios-actor is dependency-free).
        let fx = |v: u64| {
            let mut h: u64 = 0;
            h = (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
            let mut x = h;
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            x ^= x >> 33;
            x
        };
        let workers = 2u64;
        let shards = 4u64;
        // Keys landing on worker 0:
        let mut shard_counts = vec![0u32; shards as usize];
        for v in 0..100_000u64 {
            if fx(v) % workers == 0 {
                shard_counts[(helios_shard_hash(v) % shards) as usize] += 1;
            }
        }
        let total: u32 = shard_counts.iter().sum();
        for (i, &c) in shard_counts.iter().enumerate() {
            let frac = f64::from(c) / f64::from(total);
            assert!(
                (0.15..0.35).contains(&frac),
                "shard {i} got {frac:.2} of worker-0 keys: {shard_counts:?}"
            );
        }
    }
}
