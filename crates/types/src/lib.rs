//! # helios-types
//!
//! Foundation types shared by every Helios crate: identifiers for graph
//! entities and workers, graph-update events, a fast non-cryptographic
//! hasher used for partition routing, a compact binary wire encoding
//! (used by the message queue and KV store), logical timestamps, and the
//! common error type.
//!
//! Helios (PPoPP'25) models a dynamic graph as an append-only stream of
//! [`GraphUpdate`] events: vertex insertions/feature updates and edge
//! insertions (§4.2 of the paper). Everything downstream — reservoir
//! pre-sampling, subscription propagation, the query-aware sample cache —
//! consumes these events.

pub mod affinity;
pub mod encode;
pub mod error;
pub mod event;
pub mod hash;
pub mod ids;
pub mod mem;
pub mod profile;
pub mod time;

pub use encode::{Decode, Encode};
pub use mem::MemGauge;
pub use error::{HeliosError, Result};
pub use event::{EdgeUpdate, GraphUpdate, VertexUpdate};
pub use hash::{fx_hash_u64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{
    EdgeType, PartitionId, QueryHopId, SamplingWorkerId, ServingWorkerId, VertexId, VertexType,
};
pub use time::{LogicalClock, Timestamp};
