//! Named-thread registry and cooperative frame stacks for the in-process
//! sampling profiler.
//!
//! No crate in the workspace (and nothing in the container) can unwind
//! *another* thread's native call stack — `std::backtrace::Backtrace`
//! only captures the calling thread, and signal-based samplers need a
//! libc dependency this workspace deliberately avoids. Instead Helios
//! threads cooperate: long-lived worker threads [`register_thread`]
//! themselves under their OS thread name, and hot paths annotate their
//! phases with [`push_frame`] guards — a seqlock-protected fixed array
//! of interned `&'static str` labels, two relaxed RMWs plus two stores
//! per push/pop. A sampler (the telemetry crate's `/profile` handler)
//! periodically snapshots every registered thread's current stack via
//! [`sample_stacks`] and folds them into flamegraph-compatible
//! `thread;frame;frame count` lines. Torn reads (a push/pop racing the
//! snapshot) are detected by the seqlock and reported as dropped
//! samples, never as a corrupt stack.
//!
//! The registry is process-global so kvstore/mq background threads can
//! register without plumbing a handle; thread names are unique enough
//! in practice (`sew0r0-serve-1`, `helios-kv-flush`, …) and the sampler
//! reports whatever is alive at snapshot time.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum tracked frame depth per thread. Deeper pushes keep the
/// push/pop protocol balanced but record no label; the sampler renders
/// the stack truncated at this depth.
pub const MAX_FRAMES: usize = 8;

/// Process-global switch for frame annotation. On by default; the
/// overhead benchmark flips it off to measure the annotation cost of
/// the serve path A/B in one process.
static PROFILING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable frame annotation process-wide. Thread
/// registration is unaffected (registered threads still show up as
/// `name;idle`).
pub fn set_profiling_enabled(on: bool) {
    PROFILING_ENABLED.store(on, Ordering::Relaxed);
}

/// Current state of the frame-annotation switch.
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING_ENABLED.load(Ordering::Relaxed)
}

/// A frame label interned on first use. Declare as a `static` next to
/// the annotated code:
///
/// ```
/// use helios_types::profile::{FrameLabel, push_frame};
/// static GATHER: FrameLabel = FrameLabel::new("feature_gather");
/// let _frame = push_frame(&GATHER);
/// ```
pub struct FrameLabel {
    name: &'static str,
    /// Interned id, 0 = not yet interned (ids start at 1).
    id: AtomicU32,
}

impl FrameLabel {
    /// A label with the given display name.
    pub const fn new(name: &'static str) -> Self {
        FrameLabel {
            name,
            id: AtomicU32::new(0),
        }
    }

    /// The interned id, interning on first call (one global lock, once
    /// per label per process).
    fn intern(&self) -> u32 {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let mut table = label_table().lock().unwrap();
        // Re-check under the lock: another thread may have interned it.
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        table.push(self.name);
        let id = table.len() as u32;
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

fn label_table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

fn label_name(id: u32) -> Option<&'static str> {
    let table = label_table().lock().unwrap();
    table.get(id as usize - 1).copied()
}

/// One registered thread's sampling slot.
struct ThreadSlot {
    name: String,
    /// Seqlock: odd while a push/pop is in flight.
    seq: AtomicU32,
    depth: AtomicU32,
    frames: [AtomicU32; MAX_FRAMES],
    alive: AtomicBool,
}

impl ThreadSlot {
    fn new(name: String) -> Self {
        ThreadSlot {
            name,
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: Default::default(),
            alive: AtomicBool::new(true),
        }
    }

    #[inline]
    fn push(&self, id: u32) {
        self.seq.fetch_add(1, Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed) as usize;
        if d < MAX_FRAMES {
            self.frames[d].store(id, Ordering::Relaxed);
        }
        self.depth.store(d as u32 + 1, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
    }

    #[inline]
    fn pop(&self) {
        self.seq.fetch_add(1, Ordering::Release);
        let d = self.depth.load(Ordering::Relaxed);
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Snapshot the stack: `Some(label ids)` or `None` on a torn read.
    fn sample(&self) -> Option<Vec<u32>> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 % 2 != 0 {
            return None;
        }
        let depth = (self.depth.load(Ordering::Relaxed) as usize).min(MAX_FRAMES);
        let ids: Vec<u32> = (0..depth)
            .map(|i| self.frames[i].load(Ordering::Relaxed))
            .collect();
        let s2 = self.seq.load(Ordering::Acquire);
        if s1 != s2 {
            return None;
        }
        Some(ids)
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<ThreadSlot>>> =
        const { std::cell::RefCell::new(None) };
}

/// Register the current thread under `name` for profiling. The returned
/// token deregisters on drop; hold it for the thread's lifetime. A
/// second registration on the same thread replaces the first.
pub fn register_thread(name: impl Into<String>) -> ThreadToken {
    let slot = Arc::new(ThreadSlot::new(name.into()));
    registry().lock().unwrap().push(Arc::clone(&slot));
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&slot)));
    ThreadToken { slot }
}

/// Deregistration guard returned by [`register_thread`].
pub struct ThreadToken {
    slot: Arc<ThreadSlot>,
}

impl Drop for ThreadToken {
    fn drop(&mut self) {
        self.slot.alive.store(false, Ordering::Relaxed);
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if cur
                .as_ref()
                .is_some_and(|s| Arc::ptr_eq(s, &self.slot))
            {
                *cur = None;
            }
        });
    }
}

/// Push a frame on the current thread's stack; the frame pops when the
/// returned guard drops. No-op (one thread-local read) on unregistered
/// threads or when profiling is disabled.
#[inline]
pub fn push_frame(label: &'static FrameLabel) -> FrameGuard {
    if !profiling_enabled() {
        return FrameGuard { pushed: false };
    }
    let pushed = CURRENT.with(|c| {
        if let Some(slot) = &*c.borrow() {
            slot.push(label.intern());
            true
        } else {
            false
        }
    });
    FrameGuard { pushed }
}

/// RAII frame guard; see [`push_frame`].
pub struct FrameGuard {
    pushed: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.pushed {
            CURRENT.with(|c| {
                if let Some(slot) = &*c.borrow() {
                    slot.pop();
                }
            });
        }
    }
}

/// One sampling pass over every registered thread. Returns the folded
/// stack of each live thread (`thread;frame;…`, `thread;idle` when the
/// stack is empty) and the number of torn reads dropped. Dead slots are
/// pruned as a side effect.
pub fn sample_stacks() -> (Vec<String>, u64) {
    let mut reg = registry().lock().unwrap();
    reg.retain(|s| s.alive.load(Ordering::Relaxed));
    let mut stacks = Vec::with_capacity(reg.len());
    let mut dropped = 0u64;
    for slot in reg.iter() {
        match slot.sample() {
            None => dropped += 1,
            Some(ids) => {
                let mut line = slot.name.clone();
                if ids.is_empty() {
                    line.push_str(";idle");
                } else {
                    for id in ids {
                        line.push(';');
                        line.push_str(label_name(id).unwrap_or("?"));
                    }
                }
                stacks.push(line);
            }
        }
    }
    (stacks, dropped)
}

/// Names of all currently registered (live) threads, for tests and
/// `/vars`-style introspection.
pub fn registered_threads() -> Vec<String> {
    registry()
        .lock()
        .unwrap()
        .iter()
        .filter(|s| s.alive.load(Ordering::Relaxed))
        .map(|s| s.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    static OUTER: FrameLabel = FrameLabel::new("outer-frame");
    static INNER: FrameLabel = FrameLabel::new("inner-frame");

    #[test]
    fn registered_thread_samples_with_frames() {
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            let _token = register_thread("profile-test-worker");
            let _f1 = push_frame(&OUTER);
            let _f2 = push_frame(&INNER);
            ready_tx.send(()).unwrap();
            rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();
        assert!(registered_threads().contains(&"profile-test-worker".to_string()));
        let line = loop {
            let (stacks, _) = sample_stacks();
            if let Some(l) = stacks
                .iter()
                .find(|s| s.starts_with("profile-test-worker"))
            {
                if l.contains("inner-frame") {
                    break l.clone();
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(line, "profile-test-worker;outer-frame;inner-frame");
        tx.send(()).unwrap();
        h.join().unwrap();
        // Deregistered: the next sample prunes the slot.
        let _ = sample_stacks();
        assert!(!registered_threads().contains(&"profile-test-worker".to_string()));
    }

    #[test]
    fn idle_thread_renders_idle() {
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            let _token = register_thread("profile-test-idle");
            ready_tx.send(()).unwrap();
            rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();
        let (stacks, _) = sample_stacks();
        assert!(
            stacks.iter().any(|s| s == "profile-test-idle;idle"),
            "{stacks:?}"
        );
        tx.send(()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn unregistered_thread_frames_are_noops() {
        // This test thread never registers: the guard must be free of
        // side effects.
        let before = sample_stacks().0.len();
        let _f = push_frame(&OUTER);
        assert!(sample_stacks().0.len() <= before + 1); // other tests' threads may appear
    }

    #[test]
    fn disabling_profiling_skips_frames() {
        let _token = register_thread("profile-test-disabled");
        set_profiling_enabled(false);
        let f = push_frame(&OUTER);
        drop(f);
        set_profiling_enabled(true);
        let (stacks, _) = sample_stacks();
        assert!(
            stacks.iter().any(|s| s == "profile-test-disabled;idle"),
            "disabled frames must not appear: {stacks:?}"
        );
    }

    #[test]
    fn depth_overflow_stays_balanced() {
        let _token = register_thread("profile-test-deep");
        let guards: Vec<_> = (0..MAX_FRAMES + 4).map(|_| push_frame(&OUTER)).collect();
        let (stacks, _) = sample_stacks();
        let line = stacks
            .iter()
            .find(|s| s.starts_with("profile-test-deep"))
            .unwrap();
        assert_eq!(line.matches("outer-frame").count(), MAX_FRAMES);
        drop(guards);
        let (stacks, _) = sample_stacks();
        assert!(stacks.iter().any(|s| s == "profile-test-deep;idle"));
    }
}
