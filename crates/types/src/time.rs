//! Logical timestamps for dynamic-graph events.
//!
//! Helios's event streams carry monotonically non-decreasing timestamps
//! (milliseconds in the datasets we replay). Timestamp-based TopK sampling
//! (§5.2) compares these values, and TTL expiry (§4.2/§6) subtracts them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A logical event timestamp, in milliseconds since an arbitrary epoch.
///
/// Timestamps are totally ordered; dataset replay produces non-decreasing
/// timestamps but Helios never *requires* that (late events simply lose
/// TopK comparisons).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Raw millisecond value.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Saturating addition of a millisecond delta.
    #[inline]
    pub const fn saturating_add(self, delta_ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(delta_ms))
    }

    /// Saturating subtraction of a millisecond delta. Used for TTL
    /// horizon computation (`now - ttl`).
    #[inline]
    pub const fn saturating_sub(self, delta_ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta_ms))
    }

    /// Milliseconds elapsed since `earlier` (0 if `earlier` is later).
    #[inline]
    pub const fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u64> for Timestamp {
    #[inline]
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// A shared, monotonically increasing logical clock.
///
/// Dataset replay and tests use this to mint strictly increasing
/// timestamps from many threads without locking.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl LogicalClock {
    /// New clock starting at `start`.
    pub fn new(start: Timestamp) -> Self {
        LogicalClock {
            now: AtomicU64::new(start.0),
        }
    }

    /// Current time without advancing.
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now.load(Ordering::Relaxed))
    }

    /// Advance by one millisecond and return the *new* time. Each caller
    /// across all threads observes a unique value.
    #[inline]
    pub fn tick(&self) -> Timestamp {
        Timestamp(self.now.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Advance the clock to at least `to` (no-op if already past).
    pub fn advance_to(&self, to: Timestamp) {
        self.now.fetch_max(to.0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t.saturating_add(50), Timestamp(150));
        assert_eq!(t.saturating_sub(150), Timestamp::ZERO);
        assert_eq!(Timestamp(200).since(t), 100);
        assert_eq!(t.since(Timestamp(200)), 0);
        assert_eq!(t.millis(), 100);
    }

    #[test]
    fn clock_monotonic_single_thread() {
        let c = LogicalClock::new(Timestamp(10));
        assert_eq!(c.now(), Timestamp(10));
        assert_eq!(c.tick(), Timestamp(11));
        assert_eq!(c.tick(), Timestamp(12));
        c.advance_to(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        c.advance_to(Timestamp(5)); // no-op, never goes backwards
        assert_eq!(c.now(), Timestamp(100));
    }

    #[test]
    fn clock_unique_across_threads() {
        let c = Arc::new(LogicalClock::new(Timestamp::ZERO));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick().millis()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "every tick must be unique");
        assert_eq!(*all.last().unwrap(), 8000);
    }
}
