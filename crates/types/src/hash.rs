//! FxHash-style fast hashing and partition routing.
//!
//! Vertex-id keyed tables dominate Helios's hot paths (reservoir tables,
//! sample tables, subscription tables), and the keys are integers, so the
//! default SipHash hasher would be needlessly slow. This module implements
//! the Firefox/rustc "Fx" multiply-rotate hash in-repo (the sanctioned
//! dependency list excludes `rustc-hash`), plus the deterministic routing
//! functions that slice graph updates across sampling workers and inference
//! requests across serving workers (§4.1).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx hash: a fast, non-cryptographic, deterministic
/// hasher. Not HashDoS-resistant — fine here because all keys are
/// internally generated vertex ids, never attacker-controlled strings.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a single `u64` with the Fx mix. This is the *routing* hash used
/// everywhere a vertex id must be mapped to a partition / worker, so it
/// must stay stable across the whole deployment.
#[inline]
pub fn fx_hash_u64(v: u64) -> u64 {
    // A single multiply-rotate round is too weak for low-entropy
    // sequential ids (they would all land in a few partitions), so run
    // two rounds like hashing one u64 through the full hasher.
    let mut h = FxHasher::default();
    h.write_u64(v);
    // finalize with an avalanche so consecutive ids spread over partitions
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

/// Route a vertex id onto one of `n` partitions/workers. Panics if `n == 0`.
#[inline]
pub fn route(vertex_raw: u64, n: usize) -> usize {
    assert!(n > 0, "cannot route onto zero partitions");
    (fx_hash_u64(vertex_raw) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fx_hash_u64(42), fx_hash_u64(42));
        assert_ne!(fx_hash_u64(42), fx_hash_u64(43));
    }

    #[test]
    fn route_is_stable_and_in_range() {
        for v in 0..1000u64 {
            let r = route(v, 7);
            assert!(r < 7);
            assert_eq!(r, route(v, 7));
        }
    }

    #[test]
    fn sequential_ids_spread_evenly() {
        // Sequential ids are the common case (datasets assign dense id
        // ranges); the router must not funnel them into few partitions.
        let n = 8;
        let mut counts = vec![0usize; n];
        let total = 80_000u64;
        for v in 0..total {
            counts[route(v, n)] += 1;
        }
        let expect = total as usize / n;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect * 9 / 10 && c < expect * 11 / 10,
                "partition {i} got {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn hashmap_alias_works() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn hasher_handles_all_write_widths() {
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_usize(5);
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write_u8(1);
        h2.write_u16(2);
        h2.write_u32(3);
        h2.write_u64(4);
        h2.write_usize(5);
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(a, h2.finish());
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn route_zero_panics() {
        route(1, 0);
    }
}
