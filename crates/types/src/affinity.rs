//! Best-effort CPU affinity for serve lanes and bench drivers.
//!
//! The multicore serve path pins each serve lane (and, in the bench rig,
//! each client thread) to one core so the threads×cores sweeps measure
//! core scaling rather than scheduler migration noise. Pinning is always
//! best-effort: on non-Linux targets, or when the syscall is refused
//! (containers with a restricted cpuset), [`pin_to_core`] returns `false`
//! and the thread runs unpinned — never an error.
//!
//! The call goes straight to glibc's `sched_setaffinity` symbol (already
//! linked by `std`), so no external crate is needed.

/// Number of usable cores, as reported by the standard library (1 when
/// unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pin the *calling* thread to `core` (modulo the kernel cpuset width).
/// Returns `true` when the affinity call succeeded.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    // A glibc cpu_set_t is 1024 bits; pid 0 targets the calling thread.
    unsafe extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16];
    let bit = core % (mask.len() * 64);
    mask[bit / 64] |= 1u64 << (bit % 64);
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux fallback: affinity is not available, report `false`.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pinning_is_best_effort_and_never_panics() {
        // Core 0 always exists; out-of-range cores wrap into the mask
        // width instead of producing an empty (invalid) mask.
        let _ = pin_to_core(0);
        let _ = pin_to_core(usize::MAX);
    }
}
