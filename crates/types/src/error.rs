//! Common error type for all Helios crates.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, HeliosError>;

/// Errors surfaced by Helios components.
#[derive(Debug)]
pub enum HeliosError {
    /// A topic/partition/worker/query name did not resolve.
    NotFound(String),
    /// An entity was registered twice.
    AlreadyExists(String),
    /// Malformed wire data encountered while decoding.
    Codec(String),
    /// Invalid user-supplied configuration (e.g. zero fan-out).
    InvalidConfig(String),
    /// A channel/queue peer shut down while an operation was in flight.
    Disconnected(String),
    /// The component has been shut down and refuses new work.
    ShuttingDown,
    /// A blocking operation timed out.
    Timeout(String),
    /// Admission control rejected the request: the component's bounded
    /// in-flight budget is full and it sheds rather than queues.
    Overloaded(String),
    /// Underlying I/O failure (kvstore spill, mq segment, checkpoint).
    Io(std::io::Error),
}

impl fmt::Display for HeliosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeliosError::NotFound(s) => write!(f, "not found: {s}"),
            HeliosError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            HeliosError::Codec(s) => write!(f, "codec error: {s}"),
            HeliosError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            HeliosError::Disconnected(s) => write!(f, "disconnected: {s}"),
            HeliosError::ShuttingDown => write!(f, "component is shutting down"),
            HeliosError::Timeout(s) => write!(f, "timed out: {s}"),
            HeliosError::Overloaded(s) => write!(f, "overloaded: {s}"),
            HeliosError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HeliosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeliosError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HeliosError {
    fn from(e: std::io::Error) -> Self {
        HeliosError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            HeliosError::NotFound("topic x".into()).to_string(),
            "not found: topic x"
        );
        assert_eq!(
            HeliosError::InvalidConfig("fanout=0".into()).to_string(),
            "invalid config: fanout=0"
        );
        assert_eq!(
            HeliosError::ShuttingDown.to_string(),
            "component is shutting down"
        );
        assert_eq!(
            HeliosError::Overloaded("budget 64 full".into()).to_string(),
            "overloaded: budget 64 full"
        );
    }

    #[test]
    fn io_error_wraps_with_source() {
        use std::error::Error;
        let e: HeliosError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
    }
}
