//! Compact binary wire encoding.
//!
//! The message queue (`helios-mq`) transports opaque byte payloads and the
//! KV store (`helios-kvstore`) persists opaque byte values, exactly like
//! Kafka and RocksDB do for the real Helios. This module defines the
//! little-endian, length-prefixed encoding those payloads use. It is
//! hand-rolled over [`bytes`] rather than pulling in serde: the schema is
//! small, closed, and performance-sensitive.

use crate::error::{HeliosError, Result};
use crate::event::{EdgeUpdate, GraphUpdate, VertexUpdate};
use crate::ids::{
    EdgeType, PartitionId, QueryHopId, SamplingWorkerId, ServingWorkerId, VertexId, VertexType,
};
use crate::time::Timestamp;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Types that can be appended to a byte buffer.
pub trait Encode {
    /// Append the encoded representation of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encode into a fresh buffer and freeze it.
    fn encode_to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Types that can be decoded from a byte buffer.
pub trait Decode: Sized {
    /// Consume bytes from the front of `buf` and reconstruct a value.
    fn decode(buf: &mut impl Buf) -> Result<Self>;

    /// Decode from a byte slice, requiring full consumption.
    fn decode_from_slice(mut slice: &[u8]) -> Result<Self> {
        let v = Self::decode(&mut slice)?;
        if !slice.is_empty() {
            return Err(HeliosError::Codec(format!(
                "{} trailing bytes after decode",
                slice.len()
            )));
        }
        Ok(v)
    }
}

#[inline]
fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(HeliosError::Codec(format!(
            "truncated input: need {n} bytes for {what}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

macro_rules! impl_prim {
    ($ty:ty, $put:ident, $get:ident, $n:expr) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut impl Buf) -> Result<Self> {
                need(buf, $n, stringify!($ty))?;
                Ok(buf.$get())
            }
        }
    };
}

impl_prim!(u8, put_u8, get_u8, 1);
impl_prim!(u16, put_u16_le, get_u16_le, 2);
impl_prim!(u32, put_u32_le, get_u32_le, 4);
impl_prim!(u64, put_u64_le, get_u64_le, 8);
impl_prim!(f32, put_f32_le, get_f32_le, 4);
impl_prim!(f64, put_f64_le, get_f64_le, 8);

macro_rules! impl_newtype {
    ($ty:ty, $inner:ty) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, buf: &mut BytesMut) {
                self.0.encode(buf);
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(buf: &mut impl Buf) -> Result<Self> {
                Ok(Self(<$inner>::decode(buf)?))
            }
        }
    };
}

impl_newtype!(VertexId, u64);
impl_newtype!(VertexType, u16);
impl_newtype!(EdgeType, u16);
impl_newtype!(QueryHopId, u16);
impl_newtype!(SamplingWorkerId, u32);
impl_newtype!(ServingWorkerId, u32);
impl_newtype!(PartitionId, u32);
impl_newtype!(Timestamp, u64);

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        // Guard against adversarial/corrupt lengths: never pre-reserve more
        // than what could plausibly fit in the remaining bytes.
        let cap = len.min(buf.remaining());
        let mut v = Vec::with_capacity(cap);
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len, "string body")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        String::from_utf8(raw).map_err(|e| HeliosError::Codec(format!("invalid utf8: {e}")))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(HeliosError::Codec(format!("invalid Option tag {t}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl Encode for VertexUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        self.vtype.encode(buf);
        self.id.encode(buf);
        self.ts.encode(buf);
        self.feature.encode(buf);
    }
}

impl Decode for VertexUpdate {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(VertexUpdate {
            vtype: VertexType::decode(buf)?,
            id: VertexId::decode(buf)?,
            ts: Timestamp::decode(buf)?,
            feature: Vec::<f32>::decode(buf)?,
        })
    }
}

impl Encode for EdgeUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        self.etype.encode(buf);
        self.src_type.encode(buf);
        self.src.encode(buf);
        self.dst_type.encode(buf);
        self.dst.encode(buf);
        self.ts.encode(buf);
        self.weight.encode(buf);
    }
}

impl Decode for EdgeUpdate {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(EdgeUpdate {
            etype: EdgeType::decode(buf)?,
            src_type: VertexType::decode(buf)?,
            src: VertexId::decode(buf)?,
            dst_type: VertexType::decode(buf)?,
            dst: VertexId::decode(buf)?,
            ts: Timestamp::decode(buf)?,
            weight: f32::decode(buf)?,
        })
    }
}

const TAG_VERTEX: u8 = 0;
const TAG_EDGE: u8 = 1;

impl Encode for GraphUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            GraphUpdate::Vertex(v) => {
                buf.put_u8(TAG_VERTEX);
                v.encode(buf);
            }
            GraphUpdate::Edge(e) => {
                buf.put_u8(TAG_EDGE);
                e.encode(buf);
            }
        }
    }
}

impl Decode for GraphUpdate {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match u8::decode(buf)? {
            TAG_VERTEX => Ok(GraphUpdate::Vertex(VertexUpdate::decode(buf)?)),
            TAG_EDGE => Ok(GraphUpdate::Edge(EdgeUpdate::decode(buf)?)),
            t => Err(HeliosError::Codec(format!("invalid GraphUpdate tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_vertex() -> VertexUpdate {
        VertexUpdate {
            vtype: VertexType(3),
            id: VertexId(123456789),
            feature: vec![1.0, -2.5, 3.25],
            ts: Timestamp(42),
        }
    }

    fn sample_edge() -> EdgeUpdate {
        EdgeUpdate {
            etype: EdgeType(2),
            src_type: VertexType(0),
            src: VertexId(17),
            dst_type: VertexType(1),
            dst: VertexId(99),
            ts: Timestamp(1000),
            weight: 0.5,
        }
    }

    #[test]
    fn roundtrip_vertex_update() {
        let v = sample_vertex();
        let bytes = GraphUpdate::Vertex(v.clone()).encode_to_bytes();
        let back = GraphUpdate::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, GraphUpdate::Vertex(v));
    }

    #[test]
    fn roundtrip_edge_update() {
        let e = sample_edge();
        let bytes = GraphUpdate::Edge(e.clone()).encode_to_bytes();
        let back = GraphUpdate::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, GraphUpdate::Edge(e));
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let back = Vec::<u64>::decode_from_slice(&v.encode_to_bytes()).unwrap();
        assert_eq!(back, v);

        let s = "hello Helios".to_string();
        assert_eq!(String::decode_from_slice(&s.encode_to_bytes()).unwrap(), s);

        let o: Option<u32> = Some(7);
        assert_eq!(
            Option::<u32>::decode_from_slice(&o.encode_to_bytes()).unwrap(),
            o
        );
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::decode_from_slice(&none.encode_to_bytes()).unwrap(),
            none
        );

        let pair: (u16, String) = (9, "x".into());
        assert_eq!(
            <(u16, String)>::decode_from_slice(&pair.encode_to_bytes()).unwrap(),
            pair
        );
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = GraphUpdate::Edge(sample_edge()).encode_to_bytes();
        for cut in 0..bytes.len() {
            let r = GraphUpdate::decode_from_slice(&bytes[..cut]);
            assert!(r.is_err(), "decoding {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw = sample_vertex().encode_to_bytes().to_vec();
        raw.push(0xFF);
        // VertexUpdate alone doesn't consume the trailing byte
        assert!(VertexUpdate::decode_from_slice(&raw).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(GraphUpdate::decode_from_slice(&[9]).is_err());
        assert!(Option::<u8>::decode_from_slice(&[7]).is_err());
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        // A Vec length of u32::MAX with a 4-byte body must error, not OOM.
        let mut buf = BytesMut::new();
        u32::MAX.encode(&mut buf);
        0u32.encode(&mut buf);
        assert!(Vec::<u64>::decode_from_slice(&buf).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        2u32.encode(&mut buf);
        buf.put_slice(&[0xFF, 0xFE]);
        assert!(String::decode_from_slice(&buf).is_err());
    }

    proptest! {
        #[test]
        fn prop_edge_roundtrip(
            etype in 0u16..16, st in 0u16..8, s in any::<u64>(),
            dt in 0u16..8, d in any::<u64>(), ts in any::<u64>(), w in any::<f32>()
        ) {
            prop_assume!(!w.is_nan());
            let e = EdgeUpdate {
                etype: EdgeType(etype),
                src_type: VertexType(st),
                src: VertexId(s),
                dst_type: VertexType(dt),
                dst: VertexId(d),
                ts: Timestamp(ts),
                weight: w,
            };
            let back = EdgeUpdate::decode_from_slice(&e.encode_to_bytes()).unwrap();
            prop_assert_eq!(back, e);
        }

        #[test]
        fn prop_vertex_roundtrip(
            vt in 0u16..8, id in any::<u64>(), ts in any::<u64>(),
            feat in proptest::collection::vec(-1e6f32..1e6, 0..64)
        ) {
            let v = VertexUpdate { vtype: VertexType(vt), id: VertexId(id), feature: feat, ts: Timestamp(ts) };
            let back = VertexUpdate::decode_from_slice(&v.encode_to_bytes()).unwrap();
            prop_assert_eq!(back, v);
        }

        #[test]
        fn prop_random_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding arbitrary garbage must return Err or Ok, never panic.
            let _ = GraphUpdate::decode_from_slice(&raw);
            let _ = Vec::<u64>::decode_from_slice(&raw);
            let _ = String::decode_from_slice(&raw);
        }
    }
}
