//! Graph update events (§4.2).
//!
//! Helios categorizes graph updates into **vertex updates** (insertion of a
//! new vertex, or a feature refresh of a previously observed vertex) and
//! **edge updates** (insertion of a new edge — the dynamic graph is
//! append-only; stale data is removed by TTL, not by deletes).

use crate::ids::{EdgeType, VertexId, VertexType};
use crate::time::Timestamp;

/// Insertion of a vertex, or a feature update of an existing vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexUpdate {
    /// Vertex label.
    pub vtype: VertexType,
    /// Vertex id.
    pub id: VertexId,
    /// Dense feature vector (the paper's datasets use 10- or 128-dim
    /// float features; see Table 1).
    pub feature: Vec<f32>,
    /// Event time.
    pub ts: Timestamp,
}

/// Insertion of a new directed edge `src → dst`.
///
/// For undirected graphs the ingestion layer replicates the edge in both
/// directions (the `Both` partition policy, §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeUpdate {
    /// Edge label.
    pub etype: EdgeType,
    /// Label of the source vertex (needed to match one-hop query target
    /// vertex types without a storage lookup).
    pub src_type: VertexType,
    /// Source vertex.
    pub src: VertexId,
    /// Label of the destination vertex.
    pub dst_type: VertexType,
    /// Destination vertex.
    pub dst: VertexId,
    /// Event time — the value compared by timestamp-TopK sampling.
    pub ts: Timestamp,
    /// Edge weight — the value used by weighted (EdgeWeight) sampling.
    pub weight: f32,
}

impl EdgeUpdate {
    /// The same edge with direction reversed (used by the `Both`/undirected
    /// partition policies).
    pub fn reversed(&self) -> EdgeUpdate {
        EdgeUpdate {
            etype: self.etype,
            src_type: self.dst_type,
            src: self.dst,
            dst_type: self.src_type,
            dst: self.src,
            ts: self.ts,
            weight: self.weight,
        }
    }
}

/// A single event in the dynamic-graph update stream.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphUpdate {
    /// Vertex insertion / feature refresh.
    Vertex(VertexUpdate),
    /// Edge insertion.
    Edge(EdgeUpdate),
}

impl GraphUpdate {
    /// Event timestamp.
    #[inline]
    pub fn ts(&self) -> Timestamp {
        match self {
            GraphUpdate::Vertex(v) => v.ts,
            GraphUpdate::Edge(e) => e.ts,
        }
    }

    /// The vertex id whose hash decides which sampling-worker partition
    /// receives this update: the vertex itself for vertex updates, the
    /// *source* vertex for edge updates (BySrc; the ingestion layer emits
    /// an extra reversed copy under ByDest/Both).
    #[inline]
    pub fn routing_vertex(&self) -> VertexId {
        match self {
            GraphUpdate::Vertex(v) => v.id,
            GraphUpdate::Edge(e) => e.src,
        }
    }

    /// Is this a vertex update?
    #[inline]
    pub fn is_vertex(&self) -> bool {
        matches!(self, GraphUpdate::Vertex(_))
    }

    /// Is this an edge update?
    #[inline]
    pub fn is_edge(&self) -> bool {
        matches!(self, GraphUpdate::Edge(_))
    }

    /// Approximate in-flight size in bytes, used by the network model to
    /// charge bandwidth.
    pub fn wire_size(&self) -> usize {
        match self {
            GraphUpdate::Vertex(v) => 1 + 2 + 8 + 8 + 4 + v.feature.len() * 4,
            GraphUpdate::Edge(_) => 1 + 2 + 2 + 2 + 8 + 8 + 8 + 4,
        }
    }
}

impl From<VertexUpdate> for GraphUpdate {
    fn from(v: VertexUpdate) -> Self {
        GraphUpdate::Vertex(v)
    }
}

impl From<EdgeUpdate> for GraphUpdate {
    fn from(e: EdgeUpdate) -> Self {
        GraphUpdate::Edge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: u64, dst: u64, ts: u64) -> EdgeUpdate {
        EdgeUpdate {
            etype: EdgeType(1),
            src_type: VertexType(0),
            src: VertexId(src),
            dst_type: VertexType(1),
            dst: VertexId(dst),
            ts: Timestamp(ts),
            weight: 1.5,
        }
    }

    #[test]
    fn reversed_swaps_endpoints_and_types() {
        let e = edge(1, 2, 10);
        let r = e.reversed();
        assert_eq!(r.src, VertexId(2));
        assert_eq!(r.dst, VertexId(1));
        assert_eq!(r.src_type, VertexType(1));
        assert_eq!(r.dst_type, VertexType(0));
        assert_eq!(r.ts, e.ts);
        assert_eq!(r.weight, e.weight);
        assert_eq!(r.reversed(), e, "double reverse is identity");
    }

    #[test]
    fn routing_vertex_is_src_for_edges() {
        let g: GraphUpdate = edge(7, 9, 1).into();
        assert_eq!(g.routing_vertex(), VertexId(7));
        assert!(g.is_edge());
        assert!(!g.is_vertex());
        assert_eq!(g.ts(), Timestamp(1));
    }

    #[test]
    fn routing_vertex_is_self_for_vertices() {
        let g: GraphUpdate = VertexUpdate {
            vtype: VertexType(0),
            id: VertexId(5),
            feature: vec![0.0; 10],
            ts: Timestamp(3),
        }
        .into();
        assert_eq!(g.routing_vertex(), VertexId(5));
        assert!(g.is_vertex());
        assert_eq!(g.ts(), Timestamp(3));
    }

    #[test]
    fn wire_size_scales_with_feature_dim() {
        let small: GraphUpdate = VertexUpdate {
            vtype: VertexType(0),
            id: VertexId(5),
            feature: vec![0.0; 10],
            ts: Timestamp(3),
        }
        .into();
        let big: GraphUpdate = VertexUpdate {
            vtype: VertexType(0),
            id: VertexId(5),
            feature: vec![0.0; 128],
            ts: Timestamp(3),
        }
        .into();
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(big.wire_size() - small.wire_size(), (128 - 10) * 4);
    }
}
