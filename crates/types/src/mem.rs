//! Byte-accurate memory gauges.
//!
//! A [`MemGauge`] is a cheap, cloneable handle to a shared signed byte
//! counter. Components adjust it with one relaxed atomic RMW at the
//! exact site where bytes are allocated or freed (memtable insert, block
//! cache evict, mq retention pop, …), so the gauge tracks *measured*
//! occupancy rather than a config knob. The telemetry crate's
//! `MemAccountant` collects these handles per component and exports them
//! as `mem.bytes{component,…}` registry gauges; this type lives in
//! `helios-types` so leaf crates (kvstore, mq) can account bytes without
//! a telemetry dependency.
//!
//! The counter is signed on purpose: a transient negative value is a
//! bug, but saturating at zero would hide it — tests assert gauges
//! return exactly to their pre-state instead.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Shared byte counter with relaxed-atomic adjustment. Cloning shares
/// the underlying cell, so one logical component (e.g. "memtables of
/// the samples table") can be fed from many shards.
#[derive(Clone, Debug, Default)]
pub struct MemGauge(Arc<AtomicI64>);

impl MemGauge {
    /// New gauge at zero bytes.
    pub fn new() -> Self {
        MemGauge::default()
    }

    /// Account `bytes` allocated.
    #[inline]
    pub fn add(&self, bytes: usize) {
        self.0.fetch_add(bytes as i64, Ordering::Relaxed);
    }

    /// Account `bytes` freed.
    #[inline]
    pub fn sub(&self, bytes: usize) {
        self.0.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Apply a signed delta (overwrite paths that shrink or grow an
    /// entry in place).
    #[inline]
    pub fn add_signed(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `bytes` if it is currently lower — high-water
    /// tracking for scratch arenas whose buffers only matter at peak.
    #[inline]
    pub fn raise_to(&self, bytes: usize) {
        self.0.fetch_max(bytes as i64, Ordering::Relaxed);
    }

    /// Current value in bytes (negative values indicate an accounting
    /// bug; nothing clamps them).
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// True when both handles share the same underlying counter.
    pub fn same_cell(&self, other: &MemGauge) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let g = MemGauge::new();
        g.add(100);
        g.add(28);
        g.sub(100);
        assert_eq!(g.get(), 28);
        g.sub(28);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn clones_share_the_cell() {
        let g = MemGauge::new();
        let h = g.clone();
        g.add(7);
        h.add(3);
        assert_eq!(g.get(), 10);
        assert!(g.same_cell(&h));
        assert!(!g.same_cell(&MemGauge::new()));
    }

    #[test]
    fn raise_to_is_monotone() {
        let g = MemGauge::new();
        g.raise_to(50);
        g.raise_to(20);
        assert_eq!(g.get(), 50);
        g.raise_to(80);
        assert_eq!(g.get(), 80);
    }

    #[test]
    fn signed_delta_can_go_negative() {
        let g = MemGauge::new();
        g.add_signed(-5);
        assert_eq!(g.get(), -5, "accounting bugs must stay visible");
    }
}
