//! Strongly-typed identifiers for graph entities, workers, and queries.
//!
//! Using newtypes instead of bare integers prevents an entire class of
//! routing bugs (e.g. hashing a serving-worker id where a vertex id was
//! expected) at zero runtime cost: every type here is `#[repr(transparent)]`
//! over a primitive integer.

use std::fmt;

/// Identifier of a graph vertex.
///
/// Vertex ids are globally unique across vertex types in the synthetic
/// datasets (the generator assigns disjoint id ranges per type), matching
/// how the LDBC benchmarks assign ids.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Raw id value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

impl From<u64> for VertexId {
    #[inline]
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

/// Identifier of a vertex *type* (label), e.g. `User`, `Item`, `Account`.
///
/// Schemas in Helios are small (a handful of labels), so a `u16` suffices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexType(pub u16);

impl fmt::Debug for VertexType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{}", self.0)
    }
}

/// Identifier of an edge *type* (label), e.g. `Click`, `Co-purchase`,
/// `TransferTo`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct EdgeType(pub u16);

impl fmt::Debug for EdgeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ET{}", self.0)
    }
}

/// Index of a one-hop query within a decomposed K-hop query (0-based hop
/// number). The paper decomposes a K-hop query into K one-hop queries
/// Q₁..Q_K (§5.1); `QueryHopId(0)` is Q₁.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct QueryHopId(pub u16);

impl QueryHopId {
    /// The one-hop query for the next hop (Q_{k+1}).
    #[inline]
    pub const fn next(self) -> QueryHopId {
        QueryHopId(self.0 + 1)
    }

    /// 0-based hop index as usize, convenient for indexing `Vec`s of
    /// per-hop state.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QueryHopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0 + 1)
    }
}

/// Identifier of a sampling worker (SAW in the paper's Fig. 7).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct SamplingWorkerId(pub u32);

impl fmt::Debug for SamplingWorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SAW{}", self.0)
    }
}

/// Identifier of a serving worker (SEW in the paper's Fig. 7).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct ServingWorkerId(pub u32);

impl fmt::Debug for ServingWorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SEW{}", self.0)
    }
}

/// Identifier of a partition of a message-queue topic or of the graph
/// update stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct PartitionId(pub u32);

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip_and_ordering() {
        let a = VertexId::from(3);
        let b = VertexId(7);
        assert!(a < b);
        assert_eq!(a.raw(), 3);
        assert_eq!(format!("{a:?}"), "V3");
        assert_eq!(a.to_string(), "V3");
    }

    #[test]
    fn query_hop_next_and_index() {
        let q1 = QueryHopId(0);
        assert_eq!(q1.index(), 0);
        assert_eq!(q1.next(), QueryHopId(1));
        assert_eq!(format!("{:?}", q1), "Q1");
        assert_eq!(format!("{:?}", q1.next()), "Q2");
    }

    #[test]
    fn ids_are_transparent_size() {
        use std::mem::size_of;
        assert_eq!(size_of::<VertexId>(), size_of::<u64>());
        assert_eq!(size_of::<VertexType>(), size_of::<u16>());
        assert_eq!(size_of::<EdgeType>(), size_of::<u16>());
        assert_eq!(size_of::<SamplingWorkerId>(), size_of::<u32>());
        assert_eq!(size_of::<ServingWorkerId>(), size_of::<u32>());
    }

    #[test]
    fn worker_id_debug_matches_paper_notation() {
        assert_eq!(format!("{:?}", SamplingWorkerId(1)), "SAW1");
        assert_eq!(format!("{:?}", ServingWorkerId(2)), "SEW2");
        assert_eq!(format!("{:?}", PartitionId(5)), "P5");
    }
}
