//! Live elastic-membership tests: scale the serving fleet out and back in
//! while updates and queries are flowing, and prove nothing was dropped —
//! zero serve errors mid-handoff, and (after a quiesce) byte-identical
//! served subgraphs to a deployment that never rescaled. Sampler shard
//! RNGs are seeded from `(worker, shard)` only, so two deployments fed
//! the same stream hold identical reservoirs regardless of how the
//! serving side was resized along the way.

use helios_core::{HeliosConfig, HeliosDeployment, ScalePolicy, ScaleSignals};
use helios_query::{KHopQuery, SampledSubgraph, SamplingStrategy};
use helios_telemetry::EventKind;
use helios_types::{
    EdgeType, EdgeUpdate, GraphUpdate, Timestamp, VertexId, VertexType, VertexUpdate,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const USER: VertexType = VertexType(0);
const ITEM: VertexType = VertexType(1);
const CLICK: EdgeType = EdgeType(0);
const COP: EdgeType = EdgeType(1);
const SETTLE: Duration = Duration::from_secs(60);
const USERS: u64 = 24;

fn vertex(id: u64, vt: VertexType, ts: u64) -> GraphUpdate {
    GraphUpdate::Vertex(VertexUpdate {
        vtype: vt,
        id: VertexId(id),
        feature: vec![id as f32, (id % 7) as f32],
        ts: Timestamp(ts),
    })
}

fn edge(
    etype: EdgeType,
    st: VertexType,
    src: u64,
    dt: VertexType,
    dst: u64,
    ts: u64,
) -> GraphUpdate {
    GraphUpdate::Edge(EdgeUpdate {
        etype,
        src_type: st,
        src: VertexId(src),
        dst_type: dt,
        dst: VertexId(dst),
        ts: Timestamp(ts),
        weight: 1.0 + (src % 5) as f32,
    })
}

fn query() -> KHopQuery {
    // Random at hop 0 on purpose: it consumes the sampler shard RNG, so
    // reference equality below also proves rescales never touch it.
    KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 2, SamplingStrategy::Random)
        .hop(COP, ITEM, 2, SamplingStrategy::TopK)
        .build()
        .unwrap()
}

/// Deterministic churny workload in `segments` chunks: every user keeps
/// clicking a rotating window of items (constant reservoir replacement),
/// items keep co-purchasing, features keep updating.
fn workload(segments: usize) -> Vec<Vec<GraphUpdate>> {
    let mut ts = 0u64;
    let mut out = Vec::new();
    let mut setup = Vec::new();
    for u in 1..=USERS {
        ts += 1;
        setup.push(vertex(u, USER, ts));
    }
    for i in 100..140u64 {
        ts += 1;
        setup.push(vertex(i, ITEM, ts));
    }
    out.push(setup);
    for seg in 0..segments.saturating_sub(1) as u64 {
        let mut chunk = Vec::new();
        for round in 0..6u64 {
            for u in 1..=USERS {
                ts += 1;
                let item = 100 + (u * 3 + seg * 11 + round) % 40;
                chunk.push(edge(CLICK, USER, u, ITEM, item, ts));
            }
            for i in 100..140u64 {
                if (i + seg + round) % 4 == 0 {
                    ts += 1;
                    let j = 100 + (i * 5 + seg + round) % 40;
                    chunk.push(edge(COP, ITEM, i, ITEM, j, ts));
                }
            }
            for i in 100..140u64 {
                if (i + round) % 9 == 0 {
                    ts += 1;
                    chunk.push(vertex(i, ITEM, ts));
                }
            }
        }
        out.push(chunk);
    }
    out
}

type Normalized = (
    Vec<(u64, Vec<u64>)>,
    Vec<(u64, Vec<u64>)>,
    BTreeMap<u64, Vec<u32>>,
);

/// Order-independent form of a served subgraph, features as exact bits.
fn normalize(sg: &SampledSubgraph) -> Normalized {
    let mut hops: Vec<Vec<(u64, Vec<u64>)>> = sg
        .hops
        .iter()
        .map(|h| {
            let mut groups: Vec<(u64, Vec<u64>)> = h
                .groups
                .iter()
                .map(|(p, cs)| {
                    let mut cs: Vec<u64> = cs.iter().map(|v| v.raw()).collect();
                    cs.sort_unstable();
                    (p.raw(), cs)
                })
                .collect();
            groups.sort();
            groups
        })
        .collect();
    let feats: BTreeMap<u64, Vec<u32>> = sg
        .features
        .iter()
        .map(|(v, f)| (v.raw(), f.iter().map(|x| x.to_bits()).collect()))
        .collect();
    assert_eq!(hops.len(), 2);
    let h1 = hops.pop().unwrap();
    let h0 = hops.pop().unwrap();
    (h0, h1, feats)
}

fn serve_all(helios: &HeliosDeployment) -> Vec<Normalized> {
    (1..=USERS)
        .map(|u| normalize(&helios.serve(VertexId(u)).unwrap()))
        .collect()
}

/// A deployment that never rescaled, fed the same stream — the ground
/// truth the elastic runs must converge to.
fn reference(chunks: &[Vec<GraphUpdate>]) -> Vec<Normalized> {
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), query()).unwrap();
    for c in chunks {
        helios.ingest_batch(c).unwrap();
    }
    assert!(helios.quiesce(SETTLE));
    let served = serve_all(&helios);
    helios.shutdown();
    served
}

/// The headline acceptance test: 2 → 4 → 3 mid-stream, with a prober
/// hammering serves the whole time. Zero serve errors, and the final
/// state is indistinguishable from never having rescaled.
#[test]
fn live_rescale_preserves_served_samples() {
    let chunks = workload(4);
    let expect = reference(&chunks);

    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), query()).unwrap();
    helios.ingest_batch(&chunks[0]).unwrap();
    helios.ingest_batch(&chunks[1]).unwrap();

    let stop = AtomicBool::new(false);
    let errors = AtomicU64::new(0);
    let probes = AtomicU64::new(0);
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let u = 1 + i % USERS;
                if helios.serve(VertexId(u)).is_err() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                probes.fetch_add(1, Ordering::Relaxed);
                i += 1;
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        // Keep updates flowing while the first handoff runs.
        s.spawn(|| helios.ingest_batch(&chunks[2]).unwrap());
        assert_eq!(helios.scale_to(4).unwrap(), 1);
        assert_eq!(helios.serving_workers().len(), 4);
        s.spawn(|| helios.ingest_batch(&chunks[3]).unwrap());
        assert_eq!(helios.scale_to(3).unwrap(), 2);
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "serve errors during handoff ({} probes)",
        probes.load(Ordering::Relaxed)
    );
    assert!(probes.load(Ordering::Relaxed) > 0);

    assert!(helios.quiesce(SETTLE));
    assert_eq!(helios.route_epoch(), 2);
    assert_eq!(helios.router().table().workers(), 3);
    assert_eq!(helios.serving_workers().len(), 3);

    let got = serve_all(&helios);
    for (u, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
        assert_eq!(
            g,
            e,
            "user {} diverged from never-rescaled reference",
            u + 1
        );
    }

    // The handoff left its audit trail in the flight recorder.
    let events = helios.flight_recorder().events();
    let bumps: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == EventKind::EpochBump)
        .map(|e| e.a)
        .collect();
    assert_eq!(bumps, vec![1, 2], "{events:?}");
    let started = events
        .iter()
        .filter(|e| e.kind == EventKind::HandoffStarted)
        .count();
    let completed = events
        .iter()
        .filter(|e| e.kind == EventKind::HandoffCompleted)
        .count();
    assert_eq!((started, completed), (2, 2));
    helios.shutdown();
}

/// Scale-out → scale-in cycles under continuous ingest; `HELIOS_RESCALE_SOAK`
/// raises the cycle count (CI runs the reduced default). Ends back at the
/// starting size and must be cache-equivalent to the never-rescaled run.
#[test]
fn rescale_soak_cycles_stay_cache_equivalent() {
    let cycles: usize = std::env::var("HELIOS_RESCALE_SOAK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let chunks = workload(2 * cycles + 1);
    let expect = reference(&chunks);

    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), query()).unwrap();
    helios.ingest_batch(&chunks[0]).unwrap();
    let mut epoch = 0;
    for cycle in 0..cycles {
        std::thread::scope(|s| {
            s.spawn(|| helios.ingest_batch(&chunks[1 + 2 * cycle]).unwrap());
            epoch = helios.scale_to(4).unwrap();
        });
        std::thread::scope(|s| {
            s.spawn(|| helios.ingest_batch(&chunks[2 + 2 * cycle]).unwrap());
            epoch = helios.scale_to(2).unwrap();
        });
    }
    assert_eq!(epoch, 2 * cycles as u64);
    assert!(helios.quiesce(SETTLE));
    assert_eq!(serve_all(&helios), expect);

    // Scale-in tore down every departed worker's subscriptions: the
    // samplers hold refcounts only for serving workers 0 and 1.
    for w in helios.sampling_workers() {
        for snap in w.inspect().unwrap() {
            for subs in snap.sample_subs.iter().chain([&snap.feat_subs]) {
                for (v, by_sew) in subs {
                    for sew in by_sew.keys() {
                        assert!(*sew < 2, "stale sub for {v:?} on departed sew{sew}");
                    }
                }
            }
        }
    }
    helios.shutdown();
}

/// An abandoned handoff must leave no trace: an impossible deadline makes
/// every attempt time out before its prepare watermark, and afterwards
/// routing is untouched, a `HandoffAborted` event carries each attempt's
/// epoch (strictly increasing — abandoned epochs are burned, never
/// reused), serves still succeed, and the Abort broadcasts discharge the
/// charges the abandoned Prepare scans made, so samplers converge back to
/// subscriptions for the original two workers only.
#[test]
fn abandoned_rescale_rolls_back_and_burns_epochs() {
    let mut config = HeliosConfig::with_workers(2, 2);
    // Smallest valid timeout: the deadline expires before the samplers
    // can possibly ack a prepare scan (that takes a poll round-trip).
    config.rescale_timeout = Duration::from_nanos(1);
    let helios = HeliosDeployment::start(config, query()).unwrap();
    let chunks = workload(2);
    helios.ingest_batch(&chunks[0]).unwrap();
    helios.ingest_batch(&chunks[1]).unwrap();
    assert!(helios.quiesce(SETTLE));

    assert!(helios.scale_to(4).is_err(), "zero deadline must abandon");
    assert!(helios.scale_to(3).is_err(), "retry must abandon too");

    // Routing never moved off the initial table.
    assert_eq!(helios.route_epoch(), 0);
    assert_eq!(helios.router().table().workers(), 2);
    // Every attempt burned its own epoch: 1, then 2 — the retry's
    // watermarks can never be satisfied by the first attempt's scans.
    let aborted: Vec<u64> = helios
        .flight_recorder()
        .events()
        .into_iter()
        .filter(|e| e.kind == EventKind::HandoffAborted)
        .map(|e| e.a)
        .collect();
    assert_eq!(aborted, vec![1, 2]);
    // Queries are unaffected.
    for u in 1..=USERS {
        helios.serve(VertexId(u)).unwrap();
    }
    // The Abort broadcasts roll the abandoned Prepare charges back:
    // samplers converge to holding subscriptions for workers 0/1 only
    // (the prepared-but-never-committed owners 2/3 are discharged).
    let deadline = std::time::Instant::now() + SETTLE;
    'converge: loop {
        let stale = helios
            .sampling_workers()
            .iter()
            .flat_map(|w| w.inspect().unwrap())
            .any(|snap| {
                snap.sample_subs
                    .iter()
                    .chain([&snap.feat_subs])
                    .flat_map(|subs| subs.values())
                    .any(|by_sew| by_sew.keys().any(|sew| *sew >= 2))
            });
        if !stale {
            break 'converge;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned charges never discharged"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    helios.shutdown();
}

/// Minimal test-side HTTP client (one request per connection).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    let (head, body) = out.split_once("\r\n\r\n").unwrap();
    (head.lines().next().unwrap().to_string(), body.to_string())
}

/// The ops-plane surface: `/membership` reports the live table, `/scale`
/// drives a handoff from an HTTP request, `/vars` exports the epoch.
#[test]
fn scale_endpoint_drives_live_rescale() {
    let mut config = HeliosConfig::with_workers(2, 2);
    config.ops_addr = Some("127.0.0.1:0".into());
    config.stats_interval = Some(Duration::from_millis(50));
    let helios = std::sync::Arc::new(HeliosDeployment::start(config, query()).unwrap());
    helios.register_scale_endpoint();
    let addr = helios.ops_addr().unwrap();

    let chunks = workload(2);
    helios.ingest_batch(&chunks[0]).unwrap();
    helios.ingest_batch(&chunks[1]).unwrap();
    assert!(helios.quiesce(SETTLE));

    let (status, body) = http_get(addr, "/membership");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"epoch\":0"), "{body}");
    assert!(body.contains("\"workers\":2"), "{body}");

    let (status, _) = http_get(addr, "/scale");
    assert!(status.contains("400"), "{status}");
    let (status, body) = http_get(addr, "/scale?target=3");
    assert!(status.contains("202"), "{status} {body}");

    // 202 means "running in the background": poll for the commit.
    let deadline = std::time::Instant::now() + SETTLE;
    while helios.route_epoch() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "scale never committed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(helios.serving_workers().len(), 3);
    let (_, body) = http_get(addr, "/membership");
    assert!(body.contains("\"epoch\":1"), "{body}");
    assert!(body.contains("\"workers\":3"), "{body}");

    // The stats reporter exports the new epoch to /vars.
    let deadline = std::time::Instant::now() + SETTLE;
    loop {
        let (_, vars) = http_get(addr, "/vars");
        if vars.contains("\"membership.epoch\":1") && vars.contains("\"membership.workers\":3") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stats never caught up: {vars}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Serving still answers for every user after the HTTP-driven handoff.
    for u in 1..=USERS {
        helios.serve(VertexId(u)).unwrap();
    }
    // The background scale thread has finished (epoch committed), so the
    // Arc is unique again modulo a tiny race; spin briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut helios = Some(helios);
    loop {
        match std::sync::Arc::try_unwrap(helios.take().unwrap()) {
            Ok(h) => {
                h.shutdown();
                break;
            }
            Err(back) => {
                assert!(std::time::Instant::now() < deadline, "arc still shared");
                helios = Some(back);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// The autoscaler closes the loop: sustained p99 pressure (threshold 0
/// makes any serve traffic qualify) scales out without anyone calling
/// `scale_to` directly.
#[test]
fn autoscaler_scales_out_under_pressure() {
    let helios = std::sync::Arc::new(
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), query()).unwrap(),
    );
    let chunks = workload(2);
    helios.ingest_batch(&chunks[0]).unwrap();
    helios.ingest_batch(&chunks[1]).unwrap();
    assert!(helios.quiesce(SETTLE));
    // Put real latency samples in the histograms so p99 > 0.
    for u in 1..=USERS {
        helios.serve(VertexId(u)).unwrap();
    }
    let signals: ScaleSignals = helios.scale_signals();
    assert!(signals.serve_p99_ms > 0.0, "{signals:?}");

    let policy = ScalePolicy {
        max_workers: 3,
        out_p99_ms: 0.0, // any observed serve latency counts as pressure
        in_p99_ms: 0.0,  // …and calm is unreachable: never scale back in
        sustain_out: 2,
        cooldown: 2,
        ..Default::default()
    };
    let guard = helios.start_autoscaler(policy, Duration::from_millis(10));
    let deadline = std::time::Instant::now() + SETTLE;
    while helios.route_epoch() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "autoscaler never scaled out"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(helios.router().table().workers(), 3);
    assert_eq!(helios.serving_workers().len(), 3);
    drop(guard);
    let helios = std::sync::Arc::try_unwrap(helios).ok().expect("sole owner");
    helios.shutdown();
}
