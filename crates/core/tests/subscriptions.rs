//! Tests of the subscription protocol's bookkeeping (§5.3, Fig. 7):
//! refcounted subscriptions must neither leak cache entries (evicted
//! hop-2 subtrees linger) nor over-evict (entries still referenced by
//! another parent disappear).

use helios_core::{HeliosConfig, HeliosDeployment};
use helios_query::{KHopQuery, SamplingStrategy};
use helios_types::{
    EdgeType, EdgeUpdate, GraphUpdate, Timestamp, VertexId, VertexType, VertexUpdate,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::time::Duration;

const USER: VertexType = VertexType(0);
const ITEM: VertexType = VertexType(1);
const CLICK: EdgeType = EdgeType(0);
const COP: EdgeType = EdgeType(1);
const SETTLE: Duration = Duration::from_secs(30);

fn vertex(id: u64, vt: VertexType, ts: u64) -> GraphUpdate {
    GraphUpdate::Vertex(VertexUpdate {
        vtype: vt,
        id: VertexId(id),
        feature: vec![id as f32; 2],
        ts: Timestamp(ts),
    })
}

fn edge(
    etype: EdgeType,
    st: VertexType,
    src: u64,
    dt: VertexType,
    dst: u64,
    ts: u64,
) -> GraphUpdate {
    GraphUpdate::Edge(EdgeUpdate {
        etype,
        src_type: st,
        src: VertexId(src),
        dst_type: dt,
        dst: VertexId(dst),
        ts: Timestamp(ts),
        weight: 1.0,
    })
}

fn one_by_one_query() -> KHopQuery {
    KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 1, SamplingStrategy::TopK)
        .hop(COP, ITEM, 1, SamplingStrategy::TopK)
        .build()
        .unwrap()
}

/// TopK(1) hop-1: each new click evicts the previous item. The serving
/// cache must track the *current* chain only — after hundreds of
/// replacements the cache cannot keep growing (no subscription leaks).
#[test]
fn replacements_do_not_leak_cache_entries() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 1), one_by_one_query()).unwrap();

    // Items 100..400, each with one co-purchase edge to item 900.
    let mut setup = vec![vertex(1, USER, 1), vertex(900, ITEM, 2)];
    for i in 100..400u64 {
        setup.push(vertex(i, ITEM, 3));
        setup.push(edge(COP, ITEM, i, ITEM, 900, 4));
    }
    helios.ingest_and_settle(&setup, SETTLE).unwrap();

    // Click items one after another: each click replaces the hop-1 sample.
    for (k, i) in (100..400u64).enumerate() {
        helios
            .ingest(&edge(CLICK, USER, 1, ITEM, i, 1000 + k as u64))
            .unwrap();
    }
    assert!(helios.quiesce(SETTLE));

    // The final chain must be exactly: 1 -> 399 -> 900, fully featured.
    let sg = helios.serve(VertexId(1)).unwrap();
    let hop1: Vec<u64> = sg.hops[0].flat().map(|v| v.raw()).collect();
    assert_eq!(hop1, vec![399]);
    let hop2: Vec<u64> = sg.hops[1].flat().map(|v| v.raw()).collect();
    assert_eq!(hop2, vec![900]);
    assert_eq!(sg.feature_coverage(), 1.0, "{sg:?}");

    // No leaks: compact away tombstones, then check the cache holds only
    // the live chain (Q1[user] + Q2[current item]; features of 1, 399,
    // 900) — not the 299 evicted subscriptions.
    let sw = &helios.serving_workers()[0];
    sw.expire_before(Timestamp(0)).unwrap(); // compacts tombstones only
    let (samples, features) = sw.cache_stats();
    assert!(
        samples.mem_entries <= 4,
        "sample table leaked: {} entries",
        samples.mem_entries
    );
    assert!(
        features.mem_entries <= 6,
        "feature table leaked: {} entries",
        features.mem_entries
    );
    helios.shutdown();
}

/// Two seeds sample the *same* hop-1 item; when one seed's sample is
/// replaced, the shared item's hop-2 entries and features must survive
/// for the other seed (refcount > 0).
#[test]
fn shared_subscriptions_survive_partial_unsubscribe() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 1), one_by_one_query()).unwrap();

    let shared = 500u64;
    let mut setup = vec![
        vertex(1, USER, 1),
        vertex(2, USER, 1),
        vertex(shared, ITEM, 1),
        vertex(600, ITEM, 1),
        vertex(901, ITEM, 1),
        edge(COP, ITEM, shared, ITEM, 901, 2),
        edge(COP, ITEM, 600, ITEM, 901, 2),
        // Both users click the shared item.
        edge(CLICK, USER, 1, ITEM, shared, 10),
        edge(CLICK, USER, 2, ITEM, shared, 10),
    ];
    setup.push(vertex(700, ITEM, 1));
    helios.ingest_and_settle(&setup, SETTLE).unwrap();

    // User 1 clicks a newer item: its hop-1 sample moves off `shared`.
    helios
        .ingest_and_settle(&[edge(CLICK, USER, 1, ITEM, 600, 99)], SETTLE)
        .unwrap();

    let sg1 = helios.serve(VertexId(1)).unwrap();
    assert_eq!(
        sg1.hops[0].flat().map(|v| v.raw()).collect::<Vec<_>>(),
        vec![600]
    );
    // User 2 still samples the shared item, with its hop-2 chain intact.
    let sg2 = helios.serve(VertexId(2)).unwrap();
    assert_eq!(
        sg2.hops[0].flat().map(|v| v.raw()).collect::<Vec<_>>(),
        vec![shared]
    );
    assert_eq!(
        sg2.hops[1].flat().map(|v| v.raw()).collect::<Vec<_>>(),
        vec![901]
    );
    assert_eq!(sg2.feature_coverage(), 1.0, "{sg2:?}");
    helios.shutdown();
}

/// A diamond: both hop-1 samples of one seed point at the same hop-2
/// vertex. Replacing ONE of them must not evict the shared hop-2 entry.
#[test]
fn diamond_refcounts() {
    let q = KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 2, SamplingStrategy::TopK)
        .hop(COP, ITEM, 1, SamplingStrategy::TopK)
        .build()
        .unwrap();
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 1), q).unwrap();

    let mut setup = vec![vertex(1, USER, 1), vertex(999, ITEM, 1)];
    for i in [100u64, 101, 102] {
        setup.push(vertex(i, ITEM, 1));
        setup.push(edge(COP, ITEM, i, ITEM, 999, 2));
    }
    setup.push(edge(CLICK, USER, 1, ITEM, 100, 10));
    setup.push(edge(CLICK, USER, 1, ITEM, 101, 11));
    helios.ingest_and_settle(&setup, SETTLE).unwrap();

    let sg = helios.serve(VertexId(1)).unwrap();
    // Both hop-1 items co-purchase 999.
    assert_eq!(sg.hops[1].edge_count(), 2);
    assert!(sg.hops[1].flat().all(|v| v == VertexId(999)));

    // Replace one hop-1 sample (102 is newer than 100).
    helios
        .ingest_and_settle(&[edge(CLICK, USER, 1, ITEM, 102, 50)], SETTLE)
        .unwrap();
    let sg = helios.serve(VertexId(1)).unwrap();
    let hop1: Vec<u64> = sg.hops[0].flat().map(|v| v.raw()).collect();
    assert!(hop1.contains(&102) && hop1.contains(&101), "{hop1:?}");
    // 999 must still be served through both branches with its feature.
    assert_eq!(sg.hops[1].edge_count(), 2, "{sg:?}");
    assert!(sg.feature(VertexId(999)).is_some());
    helios.shutdown();
}

// ---- subscription-churn property test ----
//
// The refcount tables are a *derived* index over the reservoir tables:
// whatever interleaving of subscribes, unsubscribes, replacements and TTL
// evictions the stream produced, after a quiesce the subscription state
// must be exactly what a from-scratch derivation over the live reservoir
// contents would produce (the same derivation `Rescale::Rebuild` runs).
// Any drift is a leak (stale subs pin evicted cache entries forever) or an
// over-eviction (live entries lose their subscription and go stale).

/// One step of churn against a 2-hop CLICK→COP query.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// USER u clicks ITEM i (hop-0 reservoir offer; may evict).
    Click(u64, u64),
    /// ITEM i co-purchased with ITEM j (hop-1 reservoir offer).
    Cop(u64, u64),
    /// Feature update for USER u (also charges the implicit seed sub).
    UserVertex(u64),
    /// Feature update for ITEM i.
    ItemVertex(u64),
    /// TTL expiry of everything older than the recent window.
    Expire,
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        4 => (1..=4u64, 100..110u64).prop_map(|(u, i)| ChurnOp::Click(u, i)),
        4 => (100..110u64, 100..110u64).prop_map(|(i, j)| ChurnOp::Cop(i, j)),
        1 => (1..=4u64).prop_map(ChurnOp::UserVertex),
        1 => (100..110u64).prop_map(ChurnOp::ItemVertex),
        1 => Just(ChurnOp::Expire),
    ]
}

type Refcounts = HashMap<(u64, u32), u32>;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Tiny fan-outs (2 then 1) over a small vertex space force constant
    /// reservoir replacement; interleaved TTL expiry tears entries out
    /// from under in-flight subscriptions. After quiescing, the global
    /// `sample_subs`/`feat_subs` refcounts must equal the from-scratch
    /// derivation over the surviving reservoir contents.
    #[test]
    fn subscription_churn_converges_to_reservoir_contents(
        ops in proptest::collection::vec(churn_op(), 1..120),
    ) {
        let q = KHopQuery::builder(USER)
            .hop(CLICK, ITEM, 2, SamplingStrategy::TopK)
            .hop(COP, ITEM, 1, SamplingStrategy::TopK)
            .build()
            .unwrap();
        let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), q).unwrap();

        let mut ts = 0u64;
        for op in &ops {
            ts += 1;
            match *op {
                ChurnOp::Click(u, i) => helios.ingest(&edge(CLICK, USER, u, ITEM, i, ts)).unwrap(),
                ChurnOp::Cop(i, j) => helios.ingest(&edge(COP, ITEM, i, ITEM, j, ts)).unwrap(),
                ChurnOp::UserVertex(u) => helios.ingest(&vertex(u, USER, ts)).unwrap(),
                ChurnOp::ItemVertex(i) => helios.ingest(&vertex(i, ITEM, ts)).unwrap(),
                ChurnOp::Expire => helios
                    .expire_before(Timestamp(ts.saturating_sub(10)))
                    .unwrap(),
            }
        }
        prop_assert!(helios.quiesce(SETTLE), "deployment failed to quiesce");

        // Union the per-shard snapshots into one global view. Keys are
        // sharded by vertex, so summing refcounts merges disjoint maps.
        let mut res: [HashMap<u64, Vec<u64>>; 2] = [HashMap::new(), HashMap::new()];
        let mut seeds: HashMap<u64, u32> = HashMap::new();
        let mut got_samples: [Refcounts; 2] = [HashMap::new(), HashMap::new()];
        let mut got_feats: Refcounts = HashMap::new();
        for w in helios.sampling_workers() {
            for snap in w.inspect().unwrap() {
                for (h, table) in snap.reservoirs.iter().enumerate() {
                    for (k, neighbors) in table {
                        res[h].insert(k.raw(), neighbors.iter().map(|v| v.raw()).collect());
                    }
                }
                for (h, subs) in snap.sample_subs.iter().enumerate() {
                    for (v, by_sew) in subs {
                        for (sew, rc) in by_sew {
                            prop_assert!(*rc > 0, "zero refcount kept for {v:?}");
                            *got_samples[h].entry((v.raw(), *sew)).or_insert(0) += rc;
                        }
                    }
                }
                for (v, by_sew) in &snap.feat_subs {
                    for (sew, rc) in by_sew {
                        prop_assert!(*rc > 0, "zero feat refcount kept for {v:?}");
                        *got_feats.entry((v.raw(), *sew)).or_insert(0) += rc;
                    }
                }
                for (v, sew) in &snap.seeds {
                    prop_assert!(
                        seeds.insert(v.raw(), *sew).is_none(),
                        "seed {} tracked by two shards",
                        v.raw()
                    );
                }
            }
        }

        // From-scratch derivation. Every seed is charged once to its
        // routed owner: the hop-0 sample sub plus one feature refcount.
        let mut exp_samples: [Refcounts; 2] = [HashMap::new(), HashMap::new()];
        let mut exp_feats: Refcounts = HashMap::new();
        for (&s, &owner) in &seeds {
            prop_assert_eq!(
                owner,
                helios.router().owner_of(VertexId(s)).0,
                "seed {} charged to a non-owner",
                s
            );
            *exp_samples[0].entry((s, owner)).or_insert(0) += 1;
            *exp_feats.entry((s, owner)).or_insert(0) += 1;
        }
        // Each subscribed hop-0 cell pins its sampled neighbors: one
        // hop-1 sub and one feature refcount per sampled occurrence.
        let hop0_pairs: Vec<(u64, u32)> = exp_samples[0].keys().copied().collect();
        for (k, sew) in hop0_pairs {
            for w in res[0].get(&k).into_iter().flatten() {
                *exp_samples[1].entry((*w, sew)).or_insert(0) += 1;
                *exp_feats.entry((*w, sew)).or_insert(0) += 1;
            }
        }
        // Hop-1 cells cascade features once per *distinct* subscriber
        // (the cascade fires on 0→1 transitions, not per refcount).
        let hop1_pairs: HashSet<(u64, u32)> = exp_samples[1].keys().copied().collect();
        for (w, sew) in hop1_pairs {
            for x in res[1].get(&w).into_iter().flatten() {
                *exp_feats.entry((*x, sew)).or_insert(0) += 1;
            }
        }

        prop_assert_eq!(&got_samples[0], &exp_samples[0], "hop-0 (seed) subs diverged");
        prop_assert_eq!(&got_samples[1], &exp_samples[1], "hop-1 subs diverged");
        prop_assert_eq!(&got_feats, &exp_feats, "feature subs diverged");
        helios.shutdown();
    }
}

/// Random strategy with a churning stream: serving results must always be
/// structurally valid (samples ⊆ true neighbors; counts ≤ fan-outs).
#[test]
fn random_strategy_structural_validity_under_churn() {
    let q = KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 3, SamplingStrategy::Random)
        .hop(COP, ITEM, 2, SamplingStrategy::Random)
        .build()
        .unwrap();
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), q).unwrap();

    let mut true_clicks: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    let mut true_cops: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    let mut updates = Vec::new();
    let mut ts = 0u64;
    for u in 1..=5u64 {
        ts += 1;
        updates.push(vertex(u, USER, ts));
    }
    for i in 100..140u64 {
        ts += 1;
        updates.push(vertex(i, ITEM, ts));
    }
    // Churn: interleaved clicks and co-purchases, many per vertex.
    for round in 0..40u64 {
        for u in 1..=5u64 {
            ts += 1;
            let item = 100 + (u * 7 + round) % 40;
            updates.push(edge(CLICK, USER, u, ITEM, item, ts));
            true_clicks.entry(u).or_default().insert(item);
        }
        for i in 100..140u64 {
            if (i + round) % 5 == 0 {
                ts += 1;
                let j = 100 + (i * 3 + round) % 40;
                updates.push(edge(COP, ITEM, i, ITEM, j, ts));
                true_cops.entry(i).or_default().insert(j);
            }
        }
    }
    helios.ingest_and_settle(&updates, SETTLE).unwrap();

    for u in 1..=5u64 {
        let sg = helios.serve(VertexId(u)).unwrap();
        let hop1: Vec<u64> = sg.hops[0].flat().map(|v| v.raw()).collect();
        assert!(hop1.len() <= 3);
        for &i in &hop1 {
            assert!(
                true_clicks[&u].contains(&i),
                "user {u} sampled non-neighbor {i}"
            );
        }
        for (parent, children) in &sg.hops[1].groups {
            assert!(children.len() <= 2);
            for c in children {
                assert!(
                    true_cops
                        .get(&parent.raw())
                        .is_some_and(|s| s.contains(&c.raw())),
                    "item {parent:?} sampled non-neighbor {c:?}"
                );
            }
        }
        assert_eq!(sg.feature_coverage(), 1.0, "user {u}");
    }
    helios.shutdown();
}
