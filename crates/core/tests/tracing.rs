//! Always-on tail-sampled tracing, end to end: per-stage latency
//! attribution on the serve and update paths, tail retention of slow
//! traces, the `/traces` ops endpoint, and exemplars on `/metrics`.
//!
//! Tracing state (enable flag, sample rate, span journals) is process
//! global, so this file keeps everything in one sequential test.

use helios_core::{HeliosConfig, HeliosDeployment};
use helios_query::{KHopQuery, SamplingStrategy};
use helios_types::{
    EdgeType, EdgeUpdate, GraphUpdate, Timestamp, VertexId, VertexType, VertexUpdate,
};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const USER: VertexType = VertexType(0);
const ITEM: VertexType = VertexType(1);
const CLICK: EdgeType = EdgeType(0);
const SETTLE: Duration = Duration::from_secs(20);

fn world(users: u64, items_per_user: u64) -> Vec<GraphUpdate> {
    let mut updates = Vec::new();
    let mut ts = 0u64;
    for u in 1..=users {
        ts += 1;
        updates.push(GraphUpdate::Vertex(VertexUpdate {
            vtype: USER,
            id: VertexId(u),
            feature: vec![u as f32, 1.0],
            ts: Timestamp(ts),
        }));
    }
    for i in 1000..(1000 + users * items_per_user) {
        ts += 1;
        updates.push(GraphUpdate::Vertex(VertexUpdate {
            vtype: ITEM,
            id: VertexId(i),
            feature: vec![i as f32, 2.0],
            ts: Timestamp(ts),
        }));
    }
    for u in 1..=users {
        for k in 0..items_per_user {
            ts += 1;
            let item = 1000 + ((u - 1) * items_per_user + k) % (users * items_per_user);
            updates.push(GraphUpdate::Edge(EdgeUpdate {
                etype: CLICK,
                src_type: USER,
                src: VertexId(u),
                dst_type: ITEM,
                dst: VertexId(item),
                ts: Timestamp(ts),
                weight: 1.0,
            }));
        }
    }
    updates
}

fn query() -> KHopQuery {
    KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 3, SamplingStrategy::TopK)
        .build()
        .unwrap()
}

/// Minimal HTTP/1.0 GET against the embedded ops server.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: helios\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let mut parts = raw.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or_default().to_string();
    let body = parts.next().unwrap_or_default().to_string();
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body)
}

#[test]
fn tail_sampled_tracing_attributes_every_stage() {
    let mut config = HeliosConfig::with_workers(2, 2);
    // Every serve is "slow" against a 1 ns threshold, so retention is
    // deterministic — no timing games needed to induce a slow request.
    config.trace_slow_threshold = Duration::from_nanos(1);
    config.trace_sample = 1.0;
    config.retained_traces = 64;
    config.ops_addr = Some("127.0.0.1:0".into());
    config.stats_interval = Some(Duration::from_millis(25));
    let helios = HeliosDeployment::start(config, query()).unwrap();

    helios_telemetry::set_tracing(true);
    helios.ingest_and_settle(&world(8, 4), SETTLE).unwrap();
    for round in 0..25 {
        for u in 1..=8u64 {
            let _ = helios.serve(VertexId(u)).unwrap();
            if round == 0 {
                let _ = helios.serve_queued(VertexId(u)).unwrap();
            }
        }
    }
    helios_telemetry::set_tracing(false);

    // --- Per-stage histograms exist on both hot paths. -----------------
    let snap = helios.telemetry_snapshot();
    let stage = snap
        .histogram_total("serving.stage_latency")
        .expect("stage histograms");
    let total = snap
        .histogram_total("serving.latency")
        .expect("end-to-end histogram");
    assert!(total.count >= 208, "200 direct + 8 queued serves");
    assert_eq!(
        stage.count,
        4 * total.count,
        "four stages per serve: cache_lookup, hop_expand, feature_gather, encode"
    );
    // The stage decomposition accounts for the end-to-end time: stage
    // sums may only miss loop scaffolding between the stage clocks
    // (acceptance bound: within 10%).
    let ratio = stage.sum as f64 / total.sum.max(1) as f64;
    assert!(
        (0.9..=1.02).contains(&ratio),
        "stage sums ≈ end-to-end sum, got ratio {ratio:.3} ({} vs {})",
        stage.sum,
        total.sum
    );
    for h in [
        "router.route_latency",
        "serving.queue_wait",
        "serving.cache_apply_latency",
        "sampler.apply_latency",
        "sampler.propagate_latency",
    ] {
        let s = snap.histogram_total(h).unwrap_or_else(|| panic!("{h} registered"));
        assert!(s.count > 0, "{h} recorded ({s:?})");
    }
    // mq dwell from the wire-level produced_at stamp, on both consumers.
    let dwell = snap.histogram_total("mq.dwell").expect("mq.dwell");
    assert!(dwell.count > 0, "dwell recorded");
    // apply + propagate = the sampler's total busy split: neither side
    // exceeds the updates processed count.
    let apply = snap.histogram_total("sampler.apply_latency").unwrap();
    assert_eq!(
        apply.count,
        snap.counter_total("sampler.updates_processed"),
        "one apply observation per update"
    );

    // --- Tail retention: slow serves are kept with their stage spans. --
    let retained = helios.retained_traces();
    retained.sweep();
    assert!(!retained.is_empty(), "slow serves retained");
    assert!(retained.interesting() > 0);
    let summary = retained
        .list()
        .into_iter()
        .find(|s| s.root_name == "router.serve" && s.reasons.contains(&"slow"))
        .expect("a retained slow serve");
    let spans = retained.get(summary.trace).expect("trace fetchable");
    let root = spans.iter().find(|s| s.parent == 0).expect("root span");
    let root_dur = root.end_ns - root.start_ns;
    let stage_sum: u64 = spans
        .iter()
        .filter(|s| {
            matches!(
                s.name,
                "serving.cache_lookup"
                    | "serving.hop_expand"
                    | "serving.feature_gather"
                    | "serving.encode"
            )
        })
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    assert!(stage_sum > 0, "stage spans present: {spans:?}");
    assert!(
        stage_sum <= root_dur,
        "stages nest inside the root ({stage_sum} vs {root_dur})"
    );

    // --- `/traces` ops endpoint: list, fetch, chrome export. -----------
    let addr = helios.ops_addr().expect("ops server bound");
    let (status, body) = http_get(addr, "/traces");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains(&format!("\"trace\":{}", summary.trace)), "{body}");
    assert!(body.contains("\"reasons\":[\"slow\"]"), "{body}");
    let (status, body) = http_get(addr, &format!("/traces?id={}", summary.trace));
    assert!(status.contains("200"), "{status}");
    for stage_name in ["serving.cache_lookup", "serving.hop_expand"] {
        assert!(body.contains(stage_name), "{stage_name} in trace: {body}");
    }
    let (status, body) = http_get(addr, &format!("/traces?id={}&format=chrome", summary.trace));
    assert!(status.contains("200"), "{status}");
    assert!(body.starts_with('[') && body.trim_end().ends_with(']'));

    // --- `/metrics`: histogram buckets carry trace-id exemplars. -------
    let (status, metrics) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let exemplar_line = metrics
        .lines()
        .find(|l| l.starts_with("serving_latency_bucket{") && l.contains("trace_id"))
        .expect("an exemplared serve bucket");
    assert!(
        exemplar_line.contains(" # {trace_id=\""),
        "OpenMetrics exemplar syntax: {exemplar_line}"
    );
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("serving_ingestion_latency_bucket{") && l.contains("trace_id")),
        "update path exemplars too"
    );

    // --- Reporter tick folded dwell percentiles into gauges. -----------
    std::thread::sleep(Duration::from_millis(120));
    let snap = helios.telemetry_snapshot();
    assert!(
        snap.gauge_total("mq.dwell_p99_ns") >= snap.gauge_total("mq.dwell_p50_ns"),
        "dwell percentile gauges populated by the stats reporter"
    );
    assert!(snap.gauge_total("mq.dwell_p99_ns") > 0);

    // --- Head sampling: rate 0 records nothing new. --------------------
    helios_telemetry::set_tracing(true);
    helios_telemetry::set_trace_sample_rate(0.0);
    let cursor = helios_telemetry::current_span_cursor();
    for u in 1..=8u64 {
        let _ = helios.serve(VertexId(u)).unwrap();
    }
    let (spans, _) = helios_telemetry::read_spans_since(cursor);
    assert!(
        spans.is_empty(),
        "sample rate 0 must record no spans: {spans:?}"
    );
    helios_telemetry::set_trace_sample_rate(1.0);
    helios_telemetry::set_tracing(false);

    helios.shutdown();
}
