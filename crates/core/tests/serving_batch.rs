//! Tests for the batched serving hot path: `apply_batch` must be
//! indistinguishable from sequential `apply`, and malformed sample-queue
//! records must be counted as decode errors — not as applied — without
//! wedging the drain accounting.

use helios_core::messages::{SampleEntryLite, SampleMsg};
use helios_core::sampler::topics;
use helios_core::{HeliosConfig, HeliosDeployment};
use helios_query::{KHopQuery, SamplingStrategy};
use helios_telemetry::TraceCtx;
use helios_types::{
    EdgeType, EdgeUpdate, GraphUpdate, QueryHopId, Timestamp, VertexId, VertexType, VertexUpdate,
};
use std::time::Duration;

const USER: VertexType = VertexType(0);
const ITEM: VertexType = VertexType(1);
const CLICK: EdgeType = EdgeType(0);
const COP: EdgeType = EdgeType(1);
const SETTLE: Duration = Duration::from_secs(20);

fn two_hop_topk() -> KHopQuery {
    KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 2, SamplingStrategy::TopK)
        .hop(COP, ITEM, 2, SamplingStrategy::TopK)
        .build()
        .unwrap()
}

fn entries(neighbors: &[u64]) -> Vec<SampleEntryLite> {
    neighbors
        .iter()
        .map(|&n| SampleEntryLite {
            neighbor: VertexId(n),
            ts: Timestamp(1),
            weight: 1.0,
        })
        .collect()
}

/// A mixed batch — sample updates, overwrites of the same key, feature
/// updates, and evictions — applied via `apply_batch` must leave the
/// cache in exactly the state sequential `apply` calls produce.
#[test]
fn apply_batch_matches_sequential_apply() {
    let msgs = vec![
        SampleMsg::SampleUpdate {
            hop: QueryHopId(0),
            key: VertexId(1),
            entries: entries(&[10, 11]),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        SampleMsg::FeatureUpdate {
            vertex: VertexId(1),
            feature: vec![1.0],
            ts: Timestamp(1),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        SampleMsg::FeatureUpdate {
            vertex: VertexId(10),
            feature: vec![10.0],
            ts: Timestamp(1),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        SampleMsg::FeatureUpdate {
            vertex: VertexId(11),
            feature: vec![11.0],
            ts: Timestamp(1),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        SampleMsg::SampleUpdate {
            hop: QueryHopId(1),
            key: VertexId(10),
            entries: entries(&[20]),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        SampleMsg::FeatureUpdate {
            vertex: VertexId(20),
            feature: vec![20.0],
            ts: Timestamp(1),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        // Same-key overwrite later in the batch must win.
        SampleMsg::SampleUpdate {
            hop: QueryHopId(0),
            key: VertexId(1),
            entries: entries(&[10]),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        // Eviction after an update must stick.
        SampleMsg::FeatureUpdate {
            vertex: VertexId(99),
            feature: vec![99.0],
            ts: Timestamp(1),
            caused_at: 0,
            trace: TraceCtx::NONE,
        },
        SampleMsg::EvictFeature {
            vertex: VertexId(99),
        },
    ];

    let batched =
        HeliosDeployment::start(HeliosConfig::with_workers(1, 1), two_hop_topk()).unwrap();
    let sequential =
        HeliosDeployment::start(HeliosConfig::with_workers(1, 1), two_hop_topk()).unwrap();
    let wb = &batched.serving_workers()[0];
    let ws = &sequential.serving_workers()[0];
    wb.apply_batch(&msgs);
    for m in &msgs {
        ws.apply(m);
    }

    let sb = wb.serve(VertexId(1)).unwrap();
    let ss = ws.serve(VertexId(1)).unwrap();
    assert_eq!(sb.hops.len(), ss.hops.len());
    for (hb, hs) in sb.hops.iter().zip(&ss.hops) {
        assert_eq!(hb.groups, hs.groups);
    }
    assert_eq!(sb.features, ss.features);
    // And the overwrite actually won: hop 0 of seed 1 is [10], not [10, 11].
    let hop1: Vec<VertexId> = sb.hops[0].flat().collect();
    assert_eq!(hop1, vec![VertexId(10)]);
    assert_eq!(sb.feature(VertexId(20)).unwrap(), &[20.0]);
    assert!(sb.feature(VertexId(99)).is_none());

    batched.shutdown();
    sequential.shutdown();
}

/// Malformed records on the sample queue are counted in
/// `serving.decode_errors`, are excluded from `serving.applied`, and do
/// not wedge `quiesce`'s drain accounting.
#[test]
fn malformed_sample_records_counted_not_applied() {
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(1, 1), two_hop_topk()).unwrap();

    // Inject garbage straight onto the serving worker's sample queue.
    let topic = helios.broker().topic(&topics::samples(0)).unwrap();
    topic
        .produce(7, bytes::Bytes::from_static(&[0xFF, 0xEE, 0xDD]))
        .unwrap();

    // A real workload alongside the garbage.
    let mut updates = vec![
        GraphUpdate::Vertex(VertexUpdate {
            vtype: USER,
            id: VertexId(1),
            feature: vec![1.0],
            ts: Timestamp(1),
        }),
        GraphUpdate::Vertex(VertexUpdate {
            vtype: ITEM,
            id: VertexId(1000),
            feature: vec![2.0],
            ts: Timestamp(2),
        }),
    ];
    updates.push(GraphUpdate::Edge(EdgeUpdate {
        etype: CLICK,
        src_type: USER,
        src: VertexId(1),
        dst_type: ITEM,
        dst: VertexId(1000),
        ts: Timestamp(3),
        weight: 1.0,
    }));
    helios.ingest_and_settle(&updates, SETTLE).unwrap();

    let total_errors: u64 = helios
        .serving_workers()
        .iter()
        .map(|w| w.decode_errors())
        .sum();
    assert_eq!(total_errors, 1, "exactly the injected garbage record");

    // The drain equation applied + decode_errors == produced still holds,
    // so quiesce converges rather than hanging.
    assert!(helios.quiesce(SETTLE));

    // And the real update made it through.
    let sg = helios.serve(VertexId(1)).unwrap();
    let hop1: Vec<VertexId> = sg.hops[0].flat().collect();
    assert_eq!(hop1, vec![VertexId(1000)]);
    helios.shutdown();
}
