//! End-to-end tests of the Helios deployment: ingest → pre-sample →
//! subscription propagation → query-aware cache → serve.

use helios_core::{HeliosConfig, HeliosDeployment};
use helios_query::{KHopQuery, SampledSubgraph, SamplingStrategy};
use helios_types::{
    EdgeType, EdgeUpdate, GraphUpdate, Timestamp, VertexId, VertexType, VertexUpdate,
};
use std::time::Duration;

const USER: VertexType = VertexType(0);
const ITEM: VertexType = VertexType(1);
const CLICK: EdgeType = EdgeType(0);
const COP: EdgeType = EdgeType(1);

fn vertex(id: u64, vt: VertexType, ts: u64) -> GraphUpdate {
    GraphUpdate::Vertex(VertexUpdate {
        vtype: vt,
        id: VertexId(id),
        feature: vec![id as f32, 1.0, 2.0, 3.0],
        ts: Timestamp(ts),
    })
}

fn click(src: u64, dst: u64, ts: u64) -> GraphUpdate {
    GraphUpdate::Edge(EdgeUpdate {
        etype: CLICK,
        src_type: USER,
        src: VertexId(src),
        dst_type: ITEM,
        dst: VertexId(dst),
        ts: Timestamp(ts),
        weight: 1.0,
    })
}

fn cop(src: u64, dst: u64, ts: u64) -> GraphUpdate {
    GraphUpdate::Edge(EdgeUpdate {
        etype: COP,
        src_type: ITEM,
        src: VertexId(src),
        dst_type: ITEM,
        dst: VertexId(dst),
        ts: Timestamp(ts),
        weight: 1.0,
    })
}

fn two_hop_topk(f1: u32, f2: u32) -> KHopQuery {
    KHopQuery::builder(USER)
        .hop(CLICK, ITEM, f1, SamplingStrategy::TopK)
        .hop(COP, ITEM, f2, SamplingStrategy::TopK)
        .build()
        .unwrap()
}

const SETTLE: Duration = Duration::from_secs(20);

/// Users 1..=U each click items; items co-purchase other items.
fn world(users: u64, items_per_user: u64) -> Vec<GraphUpdate> {
    let mut updates = Vec::new();
    let mut ts = 0u64;
    let mut t = || {
        ts += 1;
        ts
    };
    for u in 1..=users {
        updates.push(vertex(u, USER, t()));
    }
    for i in 1000..(1000 + users * items_per_user) {
        updates.push(vertex(i, ITEM, t()));
    }
    // Co-purchase chains among items.
    for i in 1000..(1000 + users * items_per_user) {
        for j in 0..3 {
            let dst = 1000 + ((i - 1000) * 7 + j * 13 + 1) % (users * items_per_user);
            updates.push(cop(i, dst, t()));
        }
    }
    // Clicks last (so hop-2 reservoirs exist when hop-1 subscribes).
    for u in 1..=users {
        for k in 0..items_per_user {
            let item = 1000 + ((u - 1) * items_per_user + k) % (users * items_per_user);
            updates.push(click(u, item, t()));
        }
    }
    updates
}

#[test]
fn two_hop_pipeline_end_to_end() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(8, 5), SETTLE).unwrap();

    for u in 1..=8u64 {
        let sg = helios.serve(VertexId(u)).unwrap();
        assert_eq!(sg.seed, VertexId(u));
        assert_eq!(sg.hop_count(), 2);
        let hop1: Vec<VertexId> = sg.hops[0].flat().collect();
        assert_eq!(hop1.len(), 2, "user {u}: TopK(2) over 5 clicks");
        // Each hop-1 item must have 2 co-purchase samples (every item has
        // 3 co-purchase edges).
        for (parent, children) in &sg.hops[1].groups {
            assert!(hop1.contains(parent));
            assert_eq!(children.len(), 2, "item {parent:?}");
        }
        // Every referenced vertex must have its feature in the cache.
        assert_eq!(
            sg.feature_coverage(),
            1.0,
            "user {u}: missing features {sg:?}"
        );
        // Feature contents propagated correctly.
        let f = sg.feature(VertexId(u)).unwrap();
        assert_eq!(f[0], u as f32);
    }
    helios.shutdown();
}

#[test]
fn topk_results_match_oracle() {
    // TopK is deterministic, so Helios's pre-sampled results must equal
    // ad-hoc sampling over the full graph.
    use helios_gnn::OracleSampler;

    let query = two_hop_topk(3, 2);
    let updates = world(6, 6);
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(3, 2), query.clone()).unwrap();
    helios.ingest_and_settle(&updates, SETTLE).unwrap();
    let oracle = OracleSampler::from_events(updates.iter().cloned());

    let mut rng = rand::thread_rng();
    for u in 1..=6u64 {
        let got = helios.serve(VertexId(u)).unwrap();
        let want = oracle.sample(VertexId(u), &query, &mut rng);
        let norm = |sg: &SampledSubgraph, hop: usize| -> Vec<(u64, Vec<u64>)> {
            sg.hops[hop]
                .groups
                .iter()
                .map(|(p, cs)| {
                    let mut cs: Vec<u64> = cs.iter().map(|c| c.raw()).collect();
                    cs.sort_unstable();
                    (p.raw(), cs)
                })
                .collect::<Vec<_>>()
        };
        let mut got1 = norm(&got, 0);
        let mut want1 = norm(&want, 0);
        got1.sort();
        want1.sort();
        assert_eq!(got1, want1, "user {u} hop 1");
        let mut got2 = norm(&got, 1);
        let mut want2 = norm(&want, 1);
        got2.sort();
        want2.sort();
        assert_eq!(got2, want2, "user {u} hop 2");
    }
    helios.shutdown();
}

#[test]
fn new_edges_are_reflected_after_settle() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(4, 4), SETTLE).unwrap();

    let before = helios.serve(VertexId(1)).unwrap();
    let hop1_before: Vec<VertexId> = before.hops[0].flat().collect();

    // A brand-new item with the newest timestamps: must displace an old
    // hop-1 sample under TopK.
    let new_item = 99_999u64;
    helios
        .ingest_and_settle(
            &[
                vertex(new_item, ITEM, 1_000_000),
                cop(new_item, 1001, 1_000_001),
                cop(new_item, 1002, 1_000_002),
                click(1, new_item, 1_000_003),
            ],
            SETTLE,
        )
        .unwrap();

    let after = helios.serve(VertexId(1)).unwrap();
    let hop1_after: Vec<VertexId> = after.hops[0].flat().collect();
    assert!(
        hop1_after.contains(&VertexId(new_item)),
        "new click must appear: before {hop1_before:?}, after {hop1_after:?}"
    );
    // The new item's own co-purchases must be served (subscription chased
    // the hop-1 change) with features.
    let group = after.hops[1]
        .groups
        .iter()
        .find(|(p, _)| *p == VertexId(new_item))
        .expect("hop-2 group for the new item");
    assert_eq!(group.1.len(), 2);
    assert_eq!(after.feature_coverage(), 1.0, "{after:?}");
    helios.shutdown();
}

#[test]
fn feature_updates_propagate() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(3, 3), SETTLE).unwrap();

    let sg = helios.serve(VertexId(2)).unwrap();
    let item = sg.hops[0].flat().next().unwrap();

    // Refresh that item's feature.
    let refreshed = GraphUpdate::Vertex(VertexUpdate {
        vtype: ITEM,
        id: item,
        feature: vec![-7.0; 4],
        ts: Timestamp(500_000),
    });
    helios.ingest_and_settle(&[refreshed], SETTLE).unwrap();

    let sg2 = helios.serve(VertexId(2)).unwrap();
    assert_eq!(
        sg2.feature(item).unwrap(),
        &[-7.0; 4],
        "feature refresh must reach the serving cache"
    );
    helios.shutdown();
}

#[test]
fn three_hop_query_transitive_subscriptions() {
    // Person-Knows-Person-Knows-Person-like chain on one vertex type.
    let knows = EdgeType(7);
    let person = VertexType(3);
    let q = KHopQuery::builder(person)
        .hop(knows, person, 2, SamplingStrategy::TopK)
        .hop(knows, person, 2, SamplingStrategy::TopK)
        .hop(knows, person, 2, SamplingStrategy::TopK)
        .build()
        .unwrap();
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 3), q).unwrap();

    let mut updates = Vec::new();
    let mut ts = 0u64;
    let n = 30u64;
    for v in 0..n {
        ts += 1;
        updates.push(GraphUpdate::Vertex(VertexUpdate {
            vtype: person,
            id: VertexId(v),
            feature: vec![v as f32; 4],
            ts: Timestamp(ts),
        }));
    }
    // Ring with chords: everyone knows the next 3 people.
    for v in 0..n {
        for d in 1..=3u64 {
            ts += 1;
            updates.push(GraphUpdate::Edge(EdgeUpdate {
                etype: knows,
                src_type: person,
                src: VertexId(v),
                dst_type: person,
                dst: VertexId((v + d) % n),
                ts: Timestamp(ts),
                weight: 1.0,
            }));
        }
    }
    helios.ingest_and_settle(&updates, SETTLE).unwrap();

    for v in 0..n {
        let sg = helios.serve(VertexId(v)).unwrap();
        assert_eq!(sg.hop_count(), 3, "seed {v}");
        assert_eq!(sg.hops[0].edge_count(), 2);
        assert_eq!(sg.hops[1].edge_count(), 4);
        assert_eq!(sg.hops[2].edge_count(), 8, "seed {v}: {sg:?}");
        assert_eq!(sg.feature_coverage(), 1.0, "seed {v}");
    }
    helios.shutdown();
}

#[test]
fn checkpoint_and_restore_preserve_serving_state() {
    let dir = std::env::temp_dir().join(format!("helios-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let query = two_hop_topk(2, 2);
    let updates = world(5, 4);

    let config = HeliosConfig::with_workers(2, 2);
    let baseline: Vec<SampledSubgraph>;
    {
        let helios = HeliosDeployment::start(config.clone(), query.clone()).unwrap();
        helios.ingest_and_settle(&updates, SETTLE).unwrap();
        baseline = (1..=5u64)
            .map(|u| helios.serve(VertexId(u)).unwrap())
            .collect();
        helios.checkpoint(&dir).unwrap();
        helios.shutdown();
    }

    // Restart from the checkpoint; ingest one more click; the reservoirs
    // must continue from the checkpointed state.
    let helios = HeliosDeployment::start_from_checkpoint(config, query, &dir).unwrap();
    // Without replaying anything, subscriptions were checkpointed on the
    // sampling side but the serving caches start empty; re-subscribing
    // happens as updates flow. Ingest a fresh click per user so every
    // reservoir republishes to its subscribers.
    let mut fresh = Vec::new();
    for u in 1..=5u64 {
        fresh.push(click(u, 1000 + u, 2_000_000 + u));
    }
    helios.ingest_and_settle(&fresh, SETTLE).unwrap();

    for (i, u) in (1..=5u64).enumerate() {
        let sg = helios.serve(VertexId(u)).unwrap();
        let hop1: Vec<VertexId> = sg.hops[0].flat().collect();
        assert_eq!(hop1.len(), 2, "user {u}");
        // The fresh click is the newest edge, so it must be in TopK(2);
        // the other slot comes from the *checkpointed* reservoir.
        assert!(hop1.contains(&VertexId(1000 + u)), "user {u}: {hop1:?}");
        let old_hop1: Vec<VertexId> = baseline[i].hops[0].flat().collect();
        assert!(
            hop1.iter().any(|v| old_hop1.contains(v)),
            "user {u}: checkpointed sample must survive ({old_hop1:?} → {hop1:?})"
        );
    }
    helios.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ttl_expiry_removes_stale_samples() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(3, 2)).unwrap();
    let mut updates = vec![vertex(1, USER, 1)];
    for (i, ts) in [(1000u64, 10u64), (1001, 20), (1002, 30)] {
        updates.push(vertex(i, ITEM, ts));
        updates.push(click(1, i, ts));
    }
    helios.ingest_and_settle(&updates, SETTLE).unwrap();
    assert_eq!(helios.serve(VertexId(1)).unwrap().hops[0].edge_count(), 3);

    helios.expire_before(Timestamp(15)).unwrap();
    assert!(helios.quiesce(SETTLE));
    let sg = helios.serve(VertexId(1)).unwrap();
    let hop1: Vec<u64> = sg.hops[0].flat().map(|v| v.raw()).collect();
    assert_eq!(hop1.len(), 2, "edge at ts=10 must be expired: {hop1:?}");
    assert!(!hop1.contains(&1000));
    helios.shutdown();
}

#[test]
fn ingestion_latency_is_recorded() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(1, 1), two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(3, 3), SETTLE).unwrap();
    let total: u64 = helios
        .serving_workers()
        .iter()
        .map(|s| s.ingestion_latency().count())
        .sum();
    assert!(total > 0, "ingestion latency samples must be recorded");
    let p99_ms = helios.serving_workers()[0]
        .ingestion_latency()
        .percentile_ms(99.0);
    assert!(p99_ms < 30_000.0, "p99 ingestion {p99_ms} ms is absurd");
    helios.shutdown();
}

#[test]
fn serving_unknown_seed_returns_empty() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(1, 2), two_hop_topk(2, 2)).unwrap();
    let sg = helios.serve(VertexId(777)).unwrap();
    assert_eq!(sg.sampled_edge_count(), 0);
    helios.shutdown();
}

#[test]
fn concurrent_serving_while_ingesting() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let helios = Arc::new(
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(2, 2)).unwrap(),
    );
    helios.ingest_and_settle(&world(10, 4), SETTLE).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut servers = Vec::new();
    for t in 0..4 {
        let helios = Arc::clone(&helios);
        let stop = Arc::clone(&stop);
        servers.push(std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let u = 1 + (served + t) % 10;
                let sg = helios.serve(VertexId(u)).unwrap();
                assert_eq!(sg.seed, VertexId(u));
                served += 1;
            }
            served
        }));
    }
    // Ingest while serving (the isolation property of §7.2.3).
    for round in 0..50u64 {
        let mut batch = Vec::new();
        for u in 1..=10u64 {
            batch.push(click(
                u,
                1000 + (round * 10 + u) % 40,
                10_000 + round * 100 + u,
            ));
        }
        helios.ingest_batch(&batch).unwrap();
    }
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = servers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert!(helios.quiesce(SETTLE));
    match Arc::try_unwrap(helios) {
        Ok(h) => h.shutdown(),
        Err(_) => panic!("serving threads still hold the deployment"),
    }
}

#[test]
fn periodic_checkpoints_fire_and_are_restorable() {
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("helios-periodic-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let query = two_hop_topk(2, 2);
    let config = HeliosConfig::with_workers(2, 2);
    {
        let helios = Arc::new(HeliosDeployment::start(config.clone(), query.clone()).unwrap());
        let _guard = helios.start_periodic_checkpoints(&dir, Duration::from_millis(50));
        helios.ingest_and_settle(&world(4, 3), SETTLE).unwrap();
        // Wait for at least one trigger to fire.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let files = std::fs::read_dir(&dir).unwrap().count();
            if files > 0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no checkpoint fired");
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(_guard);
        match Arc::try_unwrap(helios) {
            Ok(h) => h.shutdown(),
            Err(_) => panic!("guard still holds the deployment"),
        }
    }
    // Checkpoint files exist for every (worker, shard), plus the
    // topology manifest.
    let files = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(
        files,
        config.sampling_workers * config.sampling_threads + 1,
        "one checkpoint file per sampling shard plus manifest.ckpt"
    );
    assert!(dir.join("manifest.ckpt").is_file());
    // And a fresh deployment can restore from them.
    let restored = HeliosDeployment::start_from_checkpoint(config, query, &dir).unwrap();
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serving_replicas_converge_and_share_load() {
    let mut config = HeliosConfig::with_workers(2, 2);
    config.serving_replicas = 3;
    let helios = HeliosDeployment::start(config, two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(6, 4), SETTLE).unwrap();

    // 2 logical workers × 3 replicas.
    assert_eq!(helios.serving_workers().len(), 6);
    assert_eq!(helios.serving_replicas_of(0).len(), 3);

    // Replicas of the same logical worker converge to identical caches:
    // serving any seed through each replica directly gives the same
    // (TopK-deterministic) result.
    for u in 1..=6u64 {
        let owner = helios.serving_worker_for(VertexId(u)).id();
        let results: Vec<_> = helios
            .serving_replicas_of(owner.0)
            .iter()
            .map(|w| w.serve(VertexId(u)).unwrap())
            .collect();
        for r in &results[1..] {
            assert_eq!(r.hops, results[0].hops, "replica divergence for {u}");
            assert_eq!(
                r.feature_coverage(),
                results[0].feature_coverage(),
                "feature divergence for {u}"
            );
        }
    }

    // Round-robin spreads requests across replicas.
    for _ in 0..300 {
        let _ = helios.serve(VertexId(1)).unwrap();
    }
    let served: Vec<u64> = helios
        .serving_replicas_of(helios.serving_worker_for(VertexId(1)).id().0)
        .iter()
        .map(|w| w.served())
        .collect();
    let min = *served.iter().min().unwrap();
    assert!(min > 0, "every replica must take load: {served:?}");
    helios.shutdown();
}

#[test]
fn pipeline_lag_is_zero_after_drain() {
    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(6, 4), SETTLE).unwrap();

    let report = helios.broker().lag_report();
    assert!(!report.is_empty(), "workers must have registered consumers");
    // Every worker consumer group drained its topic completely.
    for e in &report {
        assert_eq!(
            e.lag, 0,
            "group {} on topic {} still lags after quiesce",
            e.group, e.topic
        );
    }
    // The update stream was consumed by every sampling worker's group.
    let groups = helios.broker().consumer_groups();
    assert!(groups.len() >= 2, "expected worker groups, got {groups:?}");
    for g in &groups {
        assert_eq!(helios.broker().group_lag(g, "updates"), 0);
    }
    helios.shutdown();
}

#[test]
fn telemetry_snapshot_covers_subsystems() {
    let mut config = HeliosConfig::with_workers(2, 2);
    config.stats_interval = Some(Duration::from_millis(25));
    let helios = HeliosDeployment::start(config, two_hop_topk(2, 2)).unwrap();
    helios.ingest_and_settle(&world(6, 4), SETTLE).unwrap();
    for u in 1..=6u64 {
        let _ = helios.serve(VertexId(u)).unwrap();
    }
    // Let the stats reporter refresh the pipeline gauges at least once.
    std::thread::sleep(Duration::from_millis(120));

    let snap = helios.telemetry_snapshot();
    let subsystems = snap.subsystems();
    for want in ["sampler", "serving", "mq", "actor", "kvstore"] {
        assert!(
            subsystems.iter().any(|s| s == want),
            "snapshot must cover {want}: {subsystems:?}"
        );
    }
    assert!(snap.counter_total("sampler.updates_processed") > 0);
    assert!(snap.counter_total("serving.served") >= 6);
    assert!(snap.counter_total("serving.applied") > 0);
    let hist = snap
        .histogram_total("serving.latency")
        .expect("latency histogram");
    assert!(hist.count > 0);
    // Rendered form mentions each subsystem (what --stats prints).
    let rendered = snap.render();
    for want in ["sampler.", "serving.", "mq.", "kvstore."] {
        assert!(
            rendered.contains(want),
            "render missing {want}:\n{rendered}"
        );
    }
    helios.shutdown();
}

#[test]
fn traces_follow_request_and_update_paths() {
    use helios_telemetry::{drain_spans, set_tracing, to_chrome_trace, to_jsonl};

    let helios =
        HeliosDeployment::start(HeliosConfig::with_workers(2, 2), two_hop_topk(2, 2)).unwrap();
    // Enable tracing only around the traffic we want journaled.
    set_tracing(true);
    helios.ingest_and_settle(&world(4, 3), SETTLE).unwrap();
    let _ = helios.serve(VertexId(1)).unwrap();
    set_tracing(false);
    let spans = drain_spans();

    // One inference request: router.serve → serving.serve → per-stage
    // grandchildren (cache lookup, hop expansion, feature gather, encode).
    let router = spans
        .iter()
        .find(|s| s.name == "router.serve")
        .expect("router root span");
    let serve = spans
        .iter()
        .find(|s| s.name == "serving.serve" && s.trace == router.trace)
        .expect("serving.serve child");
    assert_eq!(serve.parent, router.span, "serve nests under the router");
    for stage in [
        "serving.cache_lookup",
        "serving.hop_expand",
        "serving.feature_gather",
        "serving.encode",
    ] {
        let st = spans
            .iter()
            .find(|s| s.name == stage && s.trace == router.trace)
            .unwrap_or_else(|| panic!("{stage} grandchild"));
        assert_eq!(st.parent, serve.span, "{stage} nests under the serve");
    }

    // One graph update: sampler.poll → sampler.shard → sampler.reservoir,
    // then serving.cache_apply on the same trace across threads and
    // queues. Anchor on an update whose reservoir change reached a
    // serving cache (vertex updates and sub-less edges don't fan out).
    let apply = spans
        .iter()
        .find(|s| {
            s.name == "serving.cache_apply"
                && spans
                    .iter()
                    .any(|r| r.name == "sampler.reservoir" && r.trace == s.trace)
        })
        .expect("an update's trace reaches the serving cache");
    let t = apply.trace;
    let poll = spans
        .iter()
        .find(|s| s.name == "sampler.poll" && s.trace == t)
        .expect("update poll span");
    let shard = spans
        .iter()
        .find(|s| s.name == "sampler.shard" && s.trace == t && s.parent == poll.span)
        .expect("shard span under the poll span");
    assert!(
        spans
            .iter()
            .any(|s| s.name == "sampler.reservoir" && s.trace == t && s.parent == shard.span),
        "reservoir offer nests under the shard actor"
    );
    assert_ne!(
        apply.thread, shard.thread,
        "apply runs on a serving updater thread, not the sampling shard"
    );

    // Dumpable as JSONL (one parseable object per line, ids intact) …
    let jsonl = to_jsonl(&spans);
    assert_eq!(jsonl.lines().count(), spans.len());
    let line = jsonl
        .lines()
        .find(|l| l.contains(&format!("\"span\":{},", apply.span)))
        .expect("apply span serialized");
    assert!(line.contains("\"name\":\"serving.cache_apply\""));
    assert!(line.contains(&format!("\"trace\":{},", apply.trace)));
    assert!(line.contains(&format!("\"parent\":{},", apply.parent)));
    // … and as a chrome://tracing event array.
    let chrome = to_chrome_trace(&spans);
    assert!(chrome.starts_with('[') && chrome.trim_end().ends_with(']'));
    assert!(chrome.contains("\"router.serve\""));
    helios.shutdown();
}

#[test]
fn both_policy_serves_undirected_neighborhoods() {
    // With the `Both` partition policy, an edge (a -CoP-> b) also makes
    // `a` appear among b's out-neighbors, so a query over an undirected
    // relation samples in both directions.
    use helios_graphstore::PartitionPolicy;
    let q = KHopQuery::builder(ITEM)
        .hop(COP, ITEM, 5, SamplingStrategy::TopK)
        .build()
        .unwrap();
    let mut config = HeliosConfig::with_workers(2, 2);
    config.policy = PartitionPolicy::Both;
    let helios = HeliosDeployment::start(config, q).unwrap();

    let updates = vec![
        vertex(100, ITEM, 1),
        vertex(101, ITEM, 1),
        vertex(102, ITEM, 1),
        // Directed edges all *into* 102.
        cop(100, 102, 10),
        cop(101, 102, 11),
    ];
    helios.ingest_and_settle(&updates, SETTLE).unwrap();

    // Under BySrc, 102 would have no out-neighbors; under Both it has the
    // reversed copies.
    let sg = helios.serve(VertexId(102)).unwrap();
    let mut hop1: Vec<u64> = sg.hops[0].flat().map(|v| v.raw()).collect();
    hop1.sort_unstable();
    assert_eq!(hop1, vec![100, 101], "{sg:?}");
    // And the forward direction still works.
    let sg = helios.serve(VertexId(100)).unwrap();
    let hop1: Vec<u64> = sg.hops[0].flat().map(|v| v.raw()).collect();
    assert_eq!(hop1, vec![102]);
    assert_eq!(sg.feature_coverage(), 1.0);
    helios.shutdown();
}
