//! Failure injection: corrupt queue records, worker shutdown, and
//! mismatched checkpoint topology must degrade gracefully, never wedge
//! the pipeline.

use bytes::Bytes;
use helios_core::sampler::topics;
use helios_core::{HeliosConfig, HeliosDeployment};
use helios_query::{KHopQuery, SamplingStrategy};
use helios_telemetry::EventKind;
use helios_types::{
    EdgeType, EdgeUpdate, GraphUpdate, Timestamp, VertexId, VertexType, VertexUpdate,
};
use std::time::Duration;

const USER: VertexType = VertexType(0);
const ITEM: VertexType = VertexType(1);
const CLICK: EdgeType = EdgeType(0);
const SETTLE: Duration = Duration::from_secs(30);

fn one_hop() -> KHopQuery {
    KHopQuery::builder(USER)
        .hop(CLICK, ITEM, 3, SamplingStrategy::TopK)
        .build()
        .unwrap()
}

fn world() -> Vec<GraphUpdate> {
    let mut updates = Vec::new();
    for u in 1..=4u64 {
        updates.push(GraphUpdate::Vertex(VertexUpdate {
            vtype: USER,
            id: VertexId(u),
            feature: vec![u as f32; 2],
            ts: Timestamp(u),
        }));
        for k in 0..3u64 {
            updates.push(GraphUpdate::Edge(EdgeUpdate {
                etype: CLICK,
                src_type: USER,
                src: VertexId(u),
                dst_type: ITEM,
                dst: VertexId(100 + u * 10 + k),
                ts: Timestamp(10 + u * 10 + k),
                weight: 1.0,
            }));
        }
    }
    updates
}

/// Garbage records on every topic: the pollers must skip them, the drain
/// accounting must stay consistent (quiesce still converges), and the
/// valid records around them must be fully processed.
#[test]
fn corrupt_queue_records_are_skipped() {
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), one_hop()).unwrap();
    let broker = helios.broker().clone();

    // Corruption on the updates topic, interleaved with valid traffic.
    let updates_topic = broker.topic(topics::UPDATES).unwrap();
    for p in 0..updates_topic.partition_count() {
        updates_topic
            .produce_to(
                helios_types::PartitionId(p),
                0,
                Bytes::from_static(b"\xDE\xAD\xBE\xEF garbage"),
            )
            .unwrap();
    }
    helios.ingest_batch(&world()).unwrap();
    // Corruption on the control topic too.
    let control_topic = broker.topic(topics::CONTROL).unwrap();
    for p in 0..control_topic.partition_count() {
        control_topic
            .produce_to(helios_types::PartitionId(p), 0, Bytes::from_static(b"\xFF"))
            .unwrap();
    }
    // And on a sample queue (the serving side counts-but-skips).
    let sample_topic = broker.topic(&topics::samples(0)).unwrap();
    sample_topic
        .produce(0, Bytes::from_static(b"\x99 not a sample msg"))
        .unwrap();

    assert!(
        helios.quiesce(SETTLE),
        "corruption must not wedge drain accounting"
    );
    for u in 1..=4u64 {
        let sg = helios.serve(VertexId(u)).unwrap();
        assert_eq!(sg.hops[0].edge_count(), 3, "user {u}");
    }
    helios.shutdown();
}

/// A serving worker can be shut down while the rest of the system runs;
/// its cache stays readable (the paper's serving workers are stateless
/// consumers of their queue — restartable at will).
#[test]
fn serving_worker_shutdown_leaves_cache_readable() {
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(1, 2), one_hop()).unwrap();
    helios.ingest_and_settle(&world(), SETTLE).unwrap();

    // Stop worker 0's threads.
    helios.serving_workers()[0].shutdown();

    // All seeds still serve: workers route by hash, and the stopped
    // worker's cache remains readable for direct serves.
    for u in 1..=4u64 {
        let sg = helios.serve(VertexId(u)).unwrap();
        assert_eq!(sg.hops[0].edge_count(), 3, "user {u}");
    }
    // Queued serving on the stopped worker fails cleanly, not by hanging.
    let stopped = &helios.serving_workers()[0];
    assert!(stopped.serve_queued(VertexId(1)).is_err());
    helios.shutdown();
}

/// The coordinator detects a dead worker via missed heartbeats.
#[test]
fn dead_worker_detected_by_heartbeat() {
    let helios = HeliosDeployment::start(HeliosConfig::with_workers(1, 1), one_hop()).unwrap();
    // Stop the serving worker's polling loops (its beacon goes quiet).
    helios.serving_workers()[0].shutdown();
    std::thread::sleep(Duration::from_millis(120));
    let dead = helios
        .coordinator()
        .dead_workers(Duration::from_millis(100));
    assert!(
        dead.iter().any(|n| n.starts_with("sew0")),
        "stopped serving worker must be reported dead: {dead:?}"
    );
    // Sampling workers still beat.
    assert!(!dead.iter().any(|n| n.starts_with("saw")), "{dead:?}");
    helios.shutdown();
}

/// Restoring a checkpoint into a *different* topology (more serving
/// workers, more sampling threads) is detected via the checkpoint
/// manifest: a `TopologyMismatch` flight event is raised and every
/// subscription is rebuilt from reservoir contents under the fresh
/// routing table, so restored data is re-routed to the workers that now
/// own it instead of being silently stranded on checkpoint-era owners.
#[test]
fn checkpoint_topology_mismatch_rebuilds_and_reroutes() {
    let dir = std::env::temp_dir().join(format!("helios-faults-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut config = HeliosConfig::with_workers(1, 1);
        config.sampling_threads = 2;
        let helios = HeliosDeployment::start(config, one_hop()).unwrap();
        helios.ingest_and_settle(&world(), SETTLE).unwrap();
        helios.checkpoint(&dir).unwrap();
        helios.shutdown();
    }
    // Restart with MORE serving workers and MORE threads than were
    // checkpointed.
    let mut config = HeliosConfig::with_workers(1, 2);
    config.sampling_threads = 4;
    let helios = HeliosDeployment::start_from_checkpoint(config, one_hop(), &dir).unwrap();
    // The mismatch was recorded: checkpointed 1 serving worker, now 2.
    let mismatches: Vec<_> = helios
        .flight_recorder()
        .events()
        .into_iter()
        .filter(|e| e.kind == EventKind::TopologyMismatch)
        .collect();
    assert_eq!(mismatches.len(), 1, "one TopologyMismatch event");
    assert_eq!(mismatches[0].a, 1, "checkpointed serving workers");
    assert_eq!(mismatches[0].b, 2, "configured serving workers");
    // The rebuild republished every restored reservoir to its owner under
    // the new table; wait for the pushes to land.
    assert!(helios.quiesce(SETTLE), "rebuild pushes drain");
    // Restored seeds serve their checkpointed neighbors from whichever
    // worker the router now assigns them to — no stranded data.
    for u in 1..=4u64 {
        let seed = VertexId(u);
        assert_eq!(
            helios.serving_worker_for(seed).id(),
            helios.router().owner_of(seed),
            "front-end and router agree on the owner of seed {u}"
        );
        let sg = helios.serve(seed).unwrap();
        assert_eq!(
            sg.hops[0].flat().count(),
            3,
            "seed {u} serves its checkpointed hop-0 samples"
        );
    }
    // Fresh ingestion proceeds normally.
    helios
        .ingest_and_settle(
            &[GraphUpdate::Edge(EdgeUpdate {
                etype: CLICK,
                src_type: USER,
                src: VertexId(1),
                dst_type: ITEM,
                dst: VertexId(999),
                ts: Timestamp(10_000),
                weight: 1.0,
            })],
            SETTLE,
        )
        .unwrap();
    let sg = helios.serve(VertexId(1)).unwrap();
    assert!(sg.hops[0].flat().any(|v| v == VertexId(999)));
    helios.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
