//! Multicore serve-path stress: N client threads hammering one hot seed
//! plus a uniform mix through the per-lane queued pool, proving
//!
//! 1. **result equivalence** — every concurrent serve returns bytes
//!    identical (in the canonical normalized encoding) to a sequential
//!    serve of the same seed, coalesced or not;
//! 2. **single-flight coalescing fires** — under the FIN supernode skew
//!    the hot seed's lane observes `serving.coalesce_hits > 0`, and
//!    every coalesced request still counts as served;
//! 3. **the borrowed encode path agrees** — `serve_encoded` produces the
//!    same canonical bytes as encoding the owned result.

use helios_core::{HeliosConfig, HeliosDeployment};
use helios_datagen::Preset;
use helios_query::SamplingStrategy;
use helios_types::VertexId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SETTLE: Duration = Duration::from_secs(60);
const CLIENTS: usize = 8;
const ITERS_PER_CLIENT: usize = 250;

#[test]
fn concurrent_serves_match_sequential_and_coalesce_on_hot_seeds() {
    let dataset = Preset::Fin.dataset(0.02);
    let query = dataset.table2_query(SamplingStrategy::TopK, false);
    let mut config = HeliosConfig::with_workers(2, 1);
    // Few lanes + deep drain batches: the hot seed's lane saturates and
    // drains multi-request batches, which is where coalescing lives.
    config.serving_threads = 2;
    config.serve_drain_batch = 64;
    config.coalesce_max_waiters = 16;
    let helios = HeliosDeployment::start(config, query).unwrap();
    let events: Vec<_> = dataset.events().collect();
    helios.ingest_and_settle(&events, SETTLE).unwrap();

    let (lo, hi) = dataset.id_range(dataset.seed_population());
    let seeds: Vec<VertexId> = (lo..hi).map(VertexId).collect();
    assert!(seeds.len() >= 4, "FIN at scale 0.02 has a seed population");
    let hot = seeds[0];

    // Sequential reference pass: no concurrency, no updates flowing, so
    // each serve is deterministic. Normalize via the canonical encoding.
    let mut reference: HashMap<VertexId, Vec<u8>> = HashMap::new();
    for &seed in &seeds {
        let owned = helios.serve(seed).unwrap();
        let mut bytes = Vec::new();
        owned.encode_into(&mut bytes);
        // The borrowed encode path must agree with the owned one.
        let mut borrowed = Vec::new();
        helios.serve_encoded(seed, &mut borrowed).unwrap();
        assert_eq!(
            borrowed, bytes,
            "serve_encoded bytes differ from owned encoding for seed {seed:?}"
        );
        reference.insert(seed, bytes);
    }

    let served_before: u64 = helios.serving_workers().iter().map(|w| w.served()).sum();

    // Concurrent pass: 75% hot seed, 25% uniform mix, all clients through
    // the queued per-lane pool at once.
    let calls = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let helios = &helios;
            let seeds = &seeds;
            let reference = &reference;
            let calls = &calls;
            let mismatches = &mismatches;
            scope.spawn(move || {
                let mut bytes = Vec::new();
                for i in 0..ITERS_PER_CLIENT {
                    let seed = if i % 4 != 3 {
                        hot
                    } else {
                        seeds[(i * 13 + c * 7) % seeds.len()]
                    };
                    let result = helios.serve_queued(seed).unwrap();
                    calls.fetch_add(1, Ordering::Relaxed);
                    bytes.clear();
                    result.encode_into(&mut bytes);
                    if bytes != reference[&seed] {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "every concurrent serve must be byte-identical to its sequential reference"
    );
    let total_calls = calls.load(Ordering::Relaxed);
    assert_eq!(total_calls, (CLIENTS * ITERS_PER_CLIENT) as u64);

    // Every request — leader or coalesced waiter — counts as served.
    let served: u64 = helios.serving_workers().iter().map(|w| w.served()).sum();
    assert!(
        served - served_before >= total_calls,
        "served {} of {total_calls} queued calls",
        served - served_before
    );

    // The hot seed saturates one lane, so single-flight must have fired.
    let hits: u64 = helios
        .serving_workers()
        .iter()
        .map(|w| w.coalesce_hits())
        .sum();
    assert!(
        hits > 0,
        "8 clients x 75% hot-seed traffic on 2 lanes must coalesce at least once"
    );
    // Coalescing shows in the snapshot too (README metrics table).
    let snap = helios.telemetry_snapshot();
    assert_eq!(snap.counter_total("serving.coalesce_hits"), hits);

    helios.shutdown();
}

#[test]
fn coalescing_disabled_still_serves_correctly() {
    let dataset = Preset::Fin.dataset(0.02);
    let query = dataset.table2_query(SamplingStrategy::TopK, false);
    let mut config = HeliosConfig::with_workers(1, 1);
    config.serving_threads = 2;
    config.coalesce_max_waiters = 0; // off: every request expands alone
    let helios = HeliosDeployment::start(config, query).unwrap();
    let events: Vec<_> = dataset.events().collect();
    helios.ingest_and_settle(&events, SETTLE).unwrap();

    let (lo, _) = dataset.id_range(dataset.seed_population());
    let hot = VertexId(lo);
    let reference = {
        let mut b = Vec::new();
        helios.serve(hot).unwrap().encode_into(&mut b);
        b
    };
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let helios = &helios;
            let reference = &reference;
            scope.spawn(move || {
                let mut bytes = Vec::new();
                for _ in 0..100 {
                    bytes.clear();
                    helios.serve_queued(hot).unwrap().encode_into(&mut bytes);
                    assert_eq!(&bytes, reference);
                }
            });
        }
    });
    let hits: u64 = helios
        .serving_workers()
        .iter()
        .map(|w| w.coalesce_hits())
        .sum();
    assert_eq!(hits, 0, "coalesce_max_waiters = 0 disables single-flight");
    helios.shutdown();
}
