//! The serving worker and its query-aware sample cache (§4.3, §6).
//!
//! Each serving worker owns the inference traffic of one slice of the
//! seed-vertex space. Its cache has two parts, both over `helios-kvstore`
//! (the paper uses RocksDB's hybrid memory-disk mode):
//!
//! * a **sample table** per one-hop query: `(hop, vertex) → sampled
//!   neighbors`;
//! * a **feature table**: `vertex → latest feature`.
//!
//! **Data-updating threads** drain the worker's sample queue and apply
//! [`SampleMsg`]s; **serving threads** are the caller's threads — `serve`
//! is `&self` and lock-free above the kvstore shards, so any number of
//! front-end threads can call it concurrently (§4.3's serving threads).
//!
//! Serving a K-hop query costs exactly `1 + Σ ∏ Cᵢ` sample-table lookups
//! and at most `1 + Σ ∏ Cᵢ` feature lookups — independent of vertex
//! degree, which is the whole point (§6).

use crate::config::HeliosConfig;
use crate::messages::{now_nanos, SampleEntryLite, SampleMsg};
use crate::sampler::topics;
use bytes::{Bytes, BytesMut};
use helios_kvstore::{KvConfig, KvEvent, KvMemGauges, KvStats, KvStore, WriteOp};
use helios_metrics::{Histogram, StripedHistogram};
use helios_mq::Broker;
use helios_query::{KHopQuery, SampledSubgraph, SubgraphArena, SubgraphView};
use helios_telemetry::{span, Counter, EventKind, FlightRecorder, Registry, TraceCtx};
use helios_types::profile::{push_frame, register_thread, FrameLabel};
use helios_types::{
    Decode, Encode, FxHashSet, MemGauge, PartitionId, QueryHopId, Result, ServingWorkerId,
    Timestamp, VertexId,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

// Logical profiler frames for the worker's registered threads (serve
// lanes and updaters); see `helios_types::profile`.
static SERVE: FrameLabel = FrameLabel::new("serve");
static CACHE_LOOKUP: FrameLabel = FrameLabel::new("cache_lookup");
static HOP_EXPAND: FrameLabel = FrameLabel::new("hop_expand");
static FEATURE_GATHER: FrameLabel = FrameLabel::new("feature_gather");
static ENCODE: FrameLabel = FrameLabel::new("encode");
static CACHE_APPLY: FrameLabel = FrameLabel::new("cache_apply");

fn sample_key(hop: QueryHopId, v: VertexId) -> [u8; 10] {
    let mut k = [0u8; 10];
    k[..2].copy_from_slice(&hop.0.to_be_bytes());
    k[2..].copy_from_slice(&v.raw().to_be_bytes());
    k
}

fn feature_key(v: VertexId) -> [u8; 8] {
    v.raw().to_be_bytes()
}

/// Seed-affine lane choice (splitmix64 finalizer): spreads adjacent ids
/// across lanes while keeping the mapping stable, so concurrent requests
/// for one hot seed always land on the same lane — the single-flight
/// coalescing table is lane-local and needs no cross-lane coordination.
fn lane_for(seed: VertexId, lanes: usize) -> usize {
    let mut x = seed.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x ^ (x >> 31)) % lanes.max(1) as u64) as usize
}

/// Byte gauges of one serving replica's cache resources, registered with
/// the deployment's memory accountant as `mem.bytes{component=…}`. The
/// two kvstores split their memtable bytes by table but share the block
/// cache and SST-index cells (they are one resource pool per replica).
#[derive(Debug, Clone, Default)]
pub struct ServingMemGauges {
    /// Sample-table memtable bytes (active + immutable).
    pub sample_table: MemGauge,
    /// Feature-table memtable bytes (active + immutable).
    pub feature_table: MemGauge,
    /// Decoded SST granules resident in the shared block caches.
    pub block_cache: MemGauge,
    /// Decoded SST bloom + sparse-index metadata.
    pub sst_index: MemGauge,
    /// Sum of the serve lanes' current scratch footprints (arena +
    /// reusable buffers); each lane re-charges its delta per batch.
    pub serve_scratch: MemGauge,
}

/// A running serving worker. Its latency histograms and hit/served
/// counters live in the deployment's telemetry registry under
/// `serving.*{worker=<id>,replica=<r>}`.
pub struct ServingWorker {
    id: ServingWorkerId,
    replica: u32,
    query: KHopQuery,
    samples: KvStore,
    features: KvStore,
    serve_latency: Arc<Histogram>,
    ingestion_latency: Arc<Histogram>,
    /// Per-stage serve-path attribution (`serving.stage_latency{stage=…}`):
    /// `cache_lookup + hop_expand + feature_gather + encode` covers the
    /// whole of `serve_traced`, so these sum to `serving.latency`. Striped
    /// per serve lane (`lane=<i>` label; the last stripe belongs to direct
    /// `serve` callers) so N lanes recording four stage observations per
    /// request never contend on shared bucket counters; reads fold the
    /// stripes back together.
    stage_cache_lookup: StripedHistogram,
    stage_hop_expand: StripedHistogram,
    stage_feature_gather: StripedHistogram,
    stage_encode: StripedHistogram,
    /// Queued-path extra: enqueue → pickup by a serving thread.
    queue_wait: Arc<Histogram>,
    /// Update-path attribution: sample-queue dwell (produce → consume
    /// stamp on the wire record) and batch cache-apply time.
    mq_dwell: Arc<Histogram>,
    cache_apply_latency: Arc<Histogram>,
    served: Arc<Counter>,
    applied: Arc<Counter>,
    decode_errors: Arc<Counter>,
    sample_hits: Arc<Counter>,
    sample_misses: Arc<Counter>,
    feature_hits: Arc<Counter>,
    feature_misses: Arc<Counter>,
    /// Queued requests answered from another request's expansion
    /// (single-flight coalescing), and requests that found a full waiter
    /// list and degraded to independent serves.
    coalesce_hits: Arc<Counter>,
    coalesce_overflow: Arc<Counter>,
    /// Bumped after every cache mutation batch (and TTL expiry). Requests
    /// stamp the epoch at enqueue; only requests that observed the same
    /// epoch may share one expansion, so coalescing never papers over a
    /// cache update that landed between two enqueues.
    apply_epoch: AtomicU64,
    /// Floor (and initial value) of each lane's adaptive coalesce cap;
    /// `0` disables coalescing entirely.
    coalesce_max_waiters: usize,
    stop: Arc<AtomicBool>,
    updaters: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    /// One channel per serve lane; dropped (set to `None`) at shutdown so
    /// lane threads exit their recv loops and the `Arc` cycle through
    /// them is broken.
    serve_lanes: parking_lot::RwLock<Option<Vec<crossbeam::channel::Sender<ServeRequest>>>>,
    serve_threads: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    mem: ServingMemGauges,
}

/// Adaptive bound on coalesced waiters per leader. The original static
/// cap of 16 overflowed ~15k times per run under 75%-skewed load: hot
/// seeds arrive in bursts far deeper than any fixed cap, while a cap
/// sized for the burst wastes clone work on uniform traffic. So each
/// lane doubles its cap on any batch that overflowed and halves it back
/// toward the configured floor after [`AdaptiveCap::SHRINK_AFTER`]
/// consecutive calm batches. A floor of `0` keeps the off switch:
/// coalescing stays disabled and the cap never moves.
pub(crate) struct AdaptiveCap {
    floor: usize,
    cap: usize,
    calm: u32,
}

impl AdaptiveCap {
    /// Hard ceiling: one leader cloning for 1024 waiters is already far
    /// past the depth any drain batch can queue.
    const MAX: usize = 1024;
    /// Calm batches before one halving step back toward the floor.
    const SHRINK_AFTER: u32 = 64;

    pub(crate) fn new(floor: usize) -> AdaptiveCap {
        AdaptiveCap {
            floor,
            cap: floor,
            calm: 0,
        }
    }

    /// The cap to apply to the next batch.
    pub(crate) fn current(&self) -> usize {
        self.cap
    }

    /// Feed one batch's outcome; returns `true` when the cap moved.
    pub(crate) fn observe(&mut self, overflowed: bool) -> bool {
        if self.floor == 0 {
            return false;
        }
        if overflowed {
            self.calm = 0;
            if self.cap < Self::MAX {
                self.cap = (self.cap * 2).min(Self::MAX);
                return true;
            }
            return false;
        }
        if self.cap > self.floor {
            self.calm += 1;
            if self.calm >= Self::SHRINK_AFTER {
                self.calm = 0;
                self.cap = (self.cap / 2).max(self.floor);
                return true;
            }
        }
        false
    }
}

/// One queued serve request, in flight from `serve_queued` to a lane.
struct ServeRequest {
    seed: VertexId,
    trace: TraceCtx,
    /// Enqueue instant: lets the picking lane attribute the queue wait
    /// (`serving.queue_wait`).
    enqueued: std::time::Instant,
    /// Cache epoch observed at enqueue (coalescing eligibility).
    epoch: u64,
    /// Per-request reply channel. The caller holds only the receiver and
    /// this is the only sender, so a lane that dies mid-request
    /// disconnects the caller instead of wedging it.
    reply: crossbeam::channel::Sender<Result<SampledSubgraph>>,
}

/// Per-lane (or per-caller-thread) reusable serve state: frontier double
/// buffer, key/value batch buffers, the dedup set, and the response
/// arena. At steady state a serve allocates nothing — every buffer is
/// cleared, not dropped, between requests.
#[derive(Default)]
struct ServeScratch {
    arena: SubgraphArena,
    frontier: Vec<VertexId>,
    keys10: Vec<[u8; 10]>,
    keys8: Vec<[u8; 8]>,
    values: Vec<Option<Bytes>>,
    dedup: FxHashSet<VertexId>,
    vertices: Vec<VertexId>,
}

impl ServeScratch {
    /// Steady-state bytes this scratch pins across requests (buffer
    /// capacities, not lengths — cleared buffers keep their allocation).
    fn footprint(&self) -> usize {
        self.arena.capacity_bytes()
            + self.frontier.capacity() * std::mem::size_of::<VertexId>()
            + self.keys10.capacity() * 10
            + self.keys8.capacity() * 8
            + self.values.capacity() * std::mem::size_of::<Option<Bytes>>()
            + self.dedup.capacity() * std::mem::size_of::<VertexId>()
            + self.vertices.capacity() * std::mem::size_of::<VertexId>()
    }
}

impl ServingWorker {
    /// Start replica `replica` of serving worker `id`: opens its cache
    /// stores and spawns data-updating threads over the partitions of
    /// `samples-<id>`. Each replica consumes the full sample queue under
    /// its own consumer group, so replicas converge to identical caches
    /// (§4.1's replication of highly loaded serving workers).
    #[allow(clippy::too_many_arguments)] // deployment-internal constructor
    pub fn start(
        id: ServingWorkerId,
        replica: u32,
        config: &HeliosConfig,
        query: &KHopQuery,
        broker: &Arc<Broker>,
        beacon: helios_actor::Beacon,
        registry: &Registry,
        recorder: &Arc<FlightRecorder>,
    ) -> Result<Arc<ServingWorker>> {
        let mem = ServingMemGauges::default();
        let kv_config = |suffix: &str, table: MemGauge| {
            let gauges = KvMemGauges {
                memtable: table,
                block_cache: mem.block_cache.clone(),
                sst_index: mem.sst_index.clone(),
            };
            let mut c = match &config.cache_dir {
                Some(dir) => {
                    let mut c = KvConfig::hybrid(
                        config.cache_shards,
                        config.cache_memtable_budget,
                        dir.join(format!("sew{}-r{replica}-{suffix}", id.0)),
                    );
                    c.l0_compact_trigger = config.cache_l0_compact_trigger;
                    c.max_immutable_memtables = config.cache_max_immutables;
                    c.block_cache_bytes = config.cache_block_cache_bytes;
                    c
                }
                None => KvConfig::in_memory(config.cache_shards),
            };
            c.mem = gauges;
            c
        };
        let w = id.0.to_string();
        let r = replica.to_string();
        let labels: &[(&str, &str)] = &[("worker", &w), ("replica", &r)];
        let hit_labels = |table: &'static str| {
            [
                ("worker", w.as_str()),
                ("replica", r.as_str()),
                ("table", table),
            ]
        };
        let stage_labels = |stage: &'static str| {
            [
                ("worker", w.as_str()),
                ("replica", r.as_str()),
                ("stage", stage),
            ]
        };
        // One channel per serve lane (seed-affine dispatch); stripe count
        // is lanes + 1 so direct `serve` callers get their own stripe.
        let lanes = config.serving_threads;
        let mut lane_txs = Vec::with_capacity(lanes);
        let mut lane_rxs = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (tx, rx) = crossbeam::channel::unbounded::<ServeRequest>();
            lane_txs.push(tx);
            lane_rxs.push(rx);
        }
        let worker = Arc::new(ServingWorker {
            id,
            replica,
            query: query.clone(),
            samples: KvStore::open(kv_config("samples", mem.sample_table.clone()))?,
            features: KvStore::open(kv_config("features", mem.feature_table.clone()))?,
            serve_latency: registry.histogram("serving.latency", labels),
            ingestion_latency: registry.histogram("serving.ingestion_latency", labels),
            stage_cache_lookup: registry.histogram_striped(
                "serving.stage_latency",
                &stage_labels("cache_lookup"),
                lanes + 1,
            ),
            stage_hop_expand: registry.histogram_striped(
                "serving.stage_latency",
                &stage_labels("hop_expand"),
                lanes + 1,
            ),
            stage_feature_gather: registry.histogram_striped(
                "serving.stage_latency",
                &stage_labels("feature_gather"),
                lanes + 1,
            ),
            stage_encode: registry.histogram_striped(
                "serving.stage_latency",
                &stage_labels("encode"),
                lanes + 1,
            ),
            queue_wait: registry.histogram("serving.queue_wait", labels),
            mq_dwell: registry.histogram(
                "mq.dwell",
                &[
                    ("topic", "samples"),
                    ("worker", w.as_str()),
                    ("replica", r.as_str()),
                ],
            ),
            cache_apply_latency: registry.histogram("serving.cache_apply_latency", labels),
            served: registry.counter("serving.served", labels),
            applied: registry.counter("serving.applied", labels),
            decode_errors: registry.counter("serving.decode_errors", labels),
            sample_hits: registry.counter("serving.cache_hit", &hit_labels("samples")),
            sample_misses: registry.counter("serving.cache_miss", &hit_labels("samples")),
            feature_hits: registry.counter("serving.cache_hit", &hit_labels("features")),
            feature_misses: registry.counter("serving.cache_miss", &hit_labels("features")),
            coalesce_hits: registry.counter("serving.coalesce_hits", labels),
            coalesce_overflow: registry.counter("serving.coalesce_overflow", labels),
            apply_epoch: AtomicU64::new(0),
            coalesce_max_waiters: config.coalesce_max_waiters,
            stop: Arc::new(AtomicBool::new(false)),
            updaters: parking_lot::Mutex::new(Vec::new()),
            serve_lanes: parking_lot::RwLock::new(Some(lane_txs)),
            serve_threads: parking_lot::Mutex::new(Vec::new()),
            mem: mem.clone(),
        });

        // Background flush/compaction events from both cache stores feed
        // the flight recorder (the kvstore has no telemetry dependency,
        // so the wiring lives here).
        for store in [&worker.samples, &worker.features] {
            let recorder = Arc::clone(recorder);
            let sew = id.0;
            store.set_event_hook(Arc::new(move |ev| match *ev {
                KvEvent::Flush {
                    entries,
                    bytes,
                    pending,
                    ..
                } => recorder.record(
                    EventKind::Flush,
                    sew,
                    entries as u64,
                    bytes as u64,
                    pending as u64,
                ),
                KvEvent::Compaction {
                    runs_in,
                    entries_out,
                    bytes_out,
                    ..
                } => recorder.record(
                    EventKind::Compaction,
                    sew,
                    runs_in as u64,
                    entries_out,
                    bytes_out,
                ),
                KvEvent::Stall { .. } => {}
            }));
        }

        // Serve lanes (§4.3): one thread per lane, each fed by its own
        // channel under seed-affine dispatch. The lane count bounds
        // per-worker serving parallelism, which is the knob the Fig. 14
        // scale-up experiment turns. A lane drains up to
        // `serve_drain_batch` queued requests per round and coalesces
        // duplicates for the same (seed, epoch) into one expansion.
        let mut serve_handles = Vec::new();
        for (t, rx) in lane_rxs.into_iter().enumerate() {
            let lane_label = t.to_string();
            let cap_gauge = registry.gauge(
                "serving.coalesce_cap",
                &[("worker", &w), ("replica", &r), ("lane", &lane_label)],
            );
            let w = Arc::clone(&worker);
            let pin = config.pin_serving_threads;
            let drain = config.serve_drain_batch.max(1);
            let thread_name = format!("sew{}r{replica}-serve-{t}", id.0);
            serve_handles.push(
                std::thread::Builder::new()
                    .name(thread_name.clone())
                    .spawn(move || {
                        let _token = register_thread(thread_name);
                        if pin {
                            // Best effort; lanes run unpinned on failure.
                            let _ = helios_types::affinity::pin_to_core(t);
                        }
                        let mut scratch = ServeScratch::default();
                        let mut batch: Vec<ServeRequest> = Vec::with_capacity(drain);
                        let mut done: Vec<bool> = Vec::with_capacity(drain);
                        // Each lane owns its adaptive coalesce cap: no
                        // cross-lane sharing, so a skewed lane widens
                        // without a uniform lane paying for it.
                        let mut cap = AdaptiveCap::new(w.coalesce_max_waiters);
                        cap_gauge.set(cap.current() as i64);
                        // Bytes of scratch currently charged to the
                        // worker's serve_scratch gauge by this lane.
                        let mut charged = 0usize;
                        while let Ok(first) = rx.recv() {
                            batch.push(first);
                            while batch.len() < drain {
                                match rx.try_recv() {
                                    Ok(r) => batch.push(r),
                                    Err(_) => break,
                                }
                            }
                            let overflowed = w.run_lane_batch(
                                t,
                                &mut batch,
                                &mut done,
                                &mut scratch,
                                cap.current(),
                            );
                            batch.clear();
                            if cap.observe(overflowed) {
                                cap_gauge.set(cap.current() as i64);
                            }
                            let fp = scratch.footprint();
                            w.mem.serve_scratch.add_signed(fp as i64 - charged as i64);
                            charged = fp;
                        }
                        w.mem.serve_scratch.sub(charged);
                    })
                    .expect("spawn serving thread"),
            );
        }
        *worker.serve_threads.lock() = serve_handles;
        let mut handles = Vec::new();

        // Data-updating threads: split the topic's partitions across them.
        let topic_name = topics::samples(id.0);
        let partitions: Vec<PartitionId> = (0..config.sample_queue_partitions)
            .map(PartitionId)
            .collect();
        let chunks: Vec<Vec<PartitionId>> = split_round_robin(&partitions, config.updater_threads);
        for (t, parts) in chunks.into_iter().enumerate() {
            if parts.is_empty() {
                continue;
            }
            let mut consumer =
                broker.consumer(&format!("sew-{}-r{replica}", id.0), &topic_name, &parts)?;
            let w = Arc::clone(&worker);
            let stop = Arc::clone(&worker.stop);
            let poll_batch = config.poll_batch;
            let poll_timeout = config.poll_timeout;
            let beacon = beacon.clone();
            let recorder = Arc::clone(recorder);
            let updater_name = format!("sew{}r{replica}-updater-{t}", id.0);
            handles.push(
                std::thread::Builder::new()
                    .name(updater_name.clone())
                    .spawn(move || {
                        let _token = register_thread(updater_name);
                        let mut batch: Vec<SampleMsg> = Vec::with_capacity(poll_batch);
                        while !stop.load(Ordering::Relaxed) {
                            beacon.beat();
                            let recs = consumer.poll(poll_batch, poll_timeout);
                            if recs.is_empty() {
                                continue;
                            }
                            batch.clear();
                            let mut errors = 0u64;
                            let consumed_at = now_nanos();
                            for rec in &recs {
                                if rec.produced_at > 0 {
                                    w.mq_dwell
                                        .record(consumed_at.saturating_sub(rec.produced_at));
                                }
                                match SampleMsg::decode_from_slice(&rec.payload) {
                                    Ok(msg) => batch.push(msg),
                                    Err(_) => errors += 1,
                                }
                            }
                            // The whole poll batch lands in the cache with
                            // one write-lock acquisition per kvstore shard.
                            let apply_start = std::time::Instant::now();
                            let apply_frame = push_frame(&CACHE_APPLY);
                            w.apply_batch(&batch);
                            drop(apply_frame);
                            w.cache_apply_latency.record_duration(apply_start.elapsed());
                            w.applied.add(batch.len() as u64);
                            if errors > 0 {
                                w.decode_errors.add(errors);
                                recorder.record(EventKind::DecodeError, id.0, errors, 0, 0);
                            }
                            recorder.record(
                                EventKind::UpdateApplied,
                                id.0,
                                batch.len() as u64,
                                errors,
                                u64::from(replica),
                            );
                        }
                    })
                    .expect("spawn updater thread"),
            );
        }
        *worker.updaters.lock() = handles;
        Ok(worker)
    }

    /// Worker id.
    pub fn id(&self) -> ServingWorkerId {
        self.id
    }

    /// Replica index within the logical serving worker.
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// Apply one cache update (normally called by updater threads; public
    /// for tests and custom pipelines).
    pub fn apply(&self, msg: &SampleMsg) {
        self.apply_batch(std::slice::from_ref(msg));
    }

    /// Apply a batch of cache updates, writing each table through one
    /// [`KvStore::write_batch`] — one write-lock acquisition per touched
    /// kvstore shard for the whole batch instead of one per message.
    /// Per-key input order is preserved, so the result is identical to
    /// applying the messages one by one.
    pub fn apply_batch(&self, msgs: &[SampleMsg]) {
        let mut sample_ops: Vec<WriteOp> = Vec::new();
        let mut feature_ops: Vec<WriteOp> = Vec::new();
        let mut caused: Vec<(u64, u64)> = Vec::new();
        for msg in msgs {
            let trace = msg.trace();
            let _apply_span = span("serving.cache_apply", trace);
            match msg {
                SampleMsg::SampleUpdate {
                    hop,
                    key,
                    entries,
                    caused_at,
                    ..
                } => {
                    let mut buf = BytesMut::with_capacity(8 + entries.len() * 20);
                    entries.encode(&mut buf);
                    let ts = entries
                        .iter()
                        .map(|e| e.ts)
                        .max()
                        .unwrap_or(Timestamp::ZERO);
                    sample_ops.push(WriteOp::put(sample_key(*hop, *key), buf.freeze(), ts));
                    if *caused_at > 0 {
                        caused.push((*caused_at, trace.trace));
                    }
                }
                SampleMsg::Evict { hop, key } => {
                    sample_ops.push(WriteOp::delete(sample_key(*hop, *key), Timestamp::MAX));
                }
                SampleMsg::FeatureUpdate {
                    vertex,
                    feature,
                    ts,
                    caused_at,
                    ..
                } => {
                    let mut buf = BytesMut::with_capacity(feature.len() * 4 + 8);
                    feature.encode(&mut buf);
                    feature_ops.push(WriteOp::put(feature_key(*vertex), buf.freeze(), *ts));
                    if *caused_at > 0 {
                        caused.push((*caused_at, trace.trace));
                    }
                }
                SampleMsg::EvictFeature { vertex } => {
                    feature_ops.push(WriteOp::delete(feature_key(*vertex), Timestamp::MAX));
                }
            }
        }
        let mutated = !sample_ops.is_empty() || !feature_ops.is_empty();
        if !sample_ops.is_empty() {
            let _ = self.samples.write_batch(sample_ops);
        }
        if !feature_ops.is_empty() {
            let _ = self.features.write_batch(feature_ops);
        }
        if mutated {
            // New cache epoch: queued requests enqueued before this point
            // may no longer coalesce with ones enqueued after it.
            self.apply_epoch.fetch_add(1, Ordering::Release);
        }
        // Ingestion latency is "enqueue → visible in cache", so the stamps
        // are recorded only after the batch has landed.
        for (at, trace) in caused {
            self.record_ingestion(at, trace);
        }
    }

    fn record_ingestion(&self, caused_at: u64, trace: u64) {
        if caused_at > 0 {
            let now = now_nanos();
            if now > caused_at {
                self.ingestion_latency
                    .record_with_exemplar(now - caused_at, trace);
            }
        }
    }

    /// Answer a K-hop sampling query for `seed` from the local cache: a
    /// fixed number of lookups, no traversal, no network (§6's "Serving
    /// Sampling Queries", Fig. 8).
    pub fn serve(&self, seed: VertexId) -> Result<SampledSubgraph> {
        self.serve_traced(seed, TraceCtx::NONE)
    }

    /// Like [`ServingWorker::serve`], continuing the caller's trace (the
    /// deployment router passes its span context here). With no active
    /// parent and tracing enabled, a fresh trace starts at this request.
    pub fn serve_traced(&self, seed: VertexId, parent: TraceCtx) -> Result<SampledSubgraph> {
        self.with_direct_scratch(|lane, scratch| {
            self.serve_core(seed, parent, lane, scratch, |view| view.to_subgraph())
        })
    }

    /// Borrowed-path serve: assemble the result in the reusable arena and
    /// write the canonical response bytes straight into `out` — the owned
    /// [`SampledSubgraph`] (one allocation per group and per feature) is
    /// never materialized. `out` is cleared first; its capacity is reused.
    pub fn serve_encoded(&self, seed: VertexId, out: &mut Vec<u8>) -> Result<()> {
        self.serve_encoded_traced(seed, TraceCtx::NONE, out)
    }

    /// Like [`ServingWorker::serve_encoded`], continuing the caller's
    /// trace.
    pub fn serve_encoded_traced(
        &self,
        seed: VertexId,
        parent: TraceCtx,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        out.clear();
        self.with_direct_scratch(|lane, scratch| {
            self.serve_core(seed, parent, lane, scratch, |view| view.encode_into(out))
        })
    }

    /// Run `f` with this thread's reusable scratch and the direct-caller
    /// histogram stripe (the stripe after the last lane's). Direct `serve`
    /// is `&self` from any number of front-end threads, so the scratch is
    /// thread-local.
    fn with_direct_scratch<R>(&self, f: impl FnOnce(usize, &mut ServeScratch) -> R) -> R {
        thread_local! {
            static SCRATCH: std::cell::RefCell<ServeScratch> =
                std::cell::RefCell::new(ServeScratch::default());
        }
        let lane = self.stage_cache_lookup.lanes() - 1;
        SCRATCH.with(|s| f(lane, &mut s.borrow_mut()))
    }

    /// The serve hot path. Assembles the K-hop result into
    /// `scratch.arena` — flat buffers, no per-group/per-feature `Vec`s —
    /// then hands the borrowed [`SubgraphView`] to `finish` (owned
    /// conversion, wire encoding, …) inside the encode stage. Stage
    /// latencies go to the `lane` stripe of the striped histograms.
    fn serve_core<R>(
        &self,
        seed: VertexId,
        parent: TraceCtx,
        lane: usize,
        scratch: &mut ServeScratch,
        finish: impl FnOnce(SubgraphView<'_>) -> R,
    ) -> Result<R> {
        let root = if parent.is_active() {
            parent
        } else {
            TraceCtx::root()
        };
        let serve_span = span("serving.serve", root);
        let _serve_frame = push_frame(&SERVE);
        let ctx = serve_span.ctx();
        let start = std::time::Instant::now();
        // Stage clocks are *contiguous*: each stage window runs from the
        // previous stage's end mark, so the four windows tile the whole
        // serve and `Σ stage_latency ≈ serving.latency` stays an identity
        // even though the arena path shrank per-stage work to microseconds
        // (with per-stage clocks, the fixed scaffolding between windows —
        // frontier recycling, counter flushes — escaped attribution).
        let mut mark = start;
        let ServeScratch {
            arena,
            frontier,
            keys10,
            keys8,
            values,
            dedup,
            vertices,
        } = scratch;
        arena.reset(seed);
        frontier.clear();
        frontier.push(seed);
        for hop_idx in 0..self.query.hops() {
            let hop = QueryHopId(hop_idx as u16);
            // Stage: cache lookup. One shard-grouped multi_get over the
            // whole frontier — the sample table's shard locks are taken
            // once per hop, not once per vertex — into the reused value
            // buffer. The values are borrowed granules: refcounted handles
            // onto block-cache/memtable memory, not copies.
            let lookup_span = span("serving.cache_lookup", ctx);
            let lookup_frame = push_frame(&CACHE_LOOKUP);
            keys10.clear();
            keys10.extend(frontier.iter().map(|&v| sample_key(hop, v)));
            self.samples.multi_get_into(keys10, values)?;
            drop(lookup_frame);
            drop(lookup_span);
            let now = std::time::Instant::now();
            self.stage_cache_lookup
                .stripe(lane)
                .record_duration(now.duration_since(mark));
            mark = now;
            // Stage: hop expand. Stream the sampled neighbor ids straight
            // off the raw bytes into the arena — no `Vec<VertexId>` per
            // parent, no intermediate `Vec<SampleEntryLite>`.
            let expand_span = span("serving.hop_expand", ctx);
            let expand_frame = push_frame(&HOP_EXPAND);
            let (mut hits, mut misses) = (0u64, 0u64);
            for (&v, value) in frontier.iter().zip(values.iter()) {
                arena.begin_group(v);
                match value {
                    Some(raw) => {
                        hits += 1;
                        // Undecodable lists degrade to an empty group,
                        // like the owned path always has.
                        if let Ok(neighbors) = SampleEntryLite::neighbors_iter(raw) {
                            for c in neighbors {
                                arena.push_child(c);
                            }
                        }
                    }
                    None => misses += 1,
                }
            }
            arena.end_hop();
            self.sample_hits.add(hits);
            self.sample_misses.add(misses);
            drop(expand_frame);
            drop(expand_span);
            let now = std::time::Instant::now();
            self.stage_hop_expand
                .stripe(lane)
                .record_duration(now.duration_since(mark));
            mark = now;
            if arena.last_hop_children().is_empty() {
                break;
            }
            frontier.clear();
            frontier.extend_from_slice(arena.last_hop_children());
        }
        // Stage: feature gather. Deduplicate, so a vertex sampled under
        // many parents costs one feature lookup; the whole set is fetched
        // with a single multi_get into the reused value buffer.
        let gather_span = span("serving.feature_gather", ctx);
        let gather_frame = push_frame(&FEATURE_GATHER);
        dedup.clear();
        vertices.clear();
        for v in std::iter::once(seed).chain(arena.sampled_vertices().iter().copied()) {
            if dedup.insert(v) {
                vertices.push(v);
            }
        }
        keys8.clear();
        keys8.extend(vertices.iter().map(|&v| feature_key(v)));
        self.features.multi_get_into(keys8, values)?;
        drop(gather_frame);
        drop(gather_span);
        let now = std::time::Instant::now();
        self.stage_feature_gather
            .stripe(lane)
            .record_duration(now.duration_since(mark));
        mark = now;
        // Stage: encode. Decode the fetched feature vectors straight into
        // the arena's flat feature buffer, then finish (owned conversion
        // or wire encoding) from the borrowed view.
        let encode_span = span("serving.encode", ctx);
        let encode_frame = push_frame(&ENCODE);
        let (mut hits, mut misses) = (0u64, 0u64);
        for (&v, value) in vertices.iter().zip(values.iter()) {
            match value {
                Some(raw) => {
                    hits += 1;
                    // Malformed features are skipped, like the owned path.
                    arena.push_feature_raw(v, raw);
                }
                None => misses += 1,
            }
        }
        self.feature_hits.add(hits);
        self.feature_misses.add(misses);
        let result = finish(arena.view());
        drop(encode_frame);
        drop(encode_span);
        self.stage_encode
            .stripe(lane)
            .record_duration(mark.elapsed());
        // The end-to-end observation carries the trace id as an exemplar
        // (0 — untraced — degrades to a plain record).
        self.serve_latency
            .record_duration_with_exemplar(start.elapsed(), root.trace);
        self.served.incr();
        Ok(result)
    }

    /// Serve through the worker's bounded serving-thread pool: the request
    /// queues until one of the `serving_threads` picks it up. Latency
    /// measured by the caller then includes queueing delay, which is what
    /// a front-end observes under load.
    pub fn serve_queued(&self, seed: VertexId) -> Result<SampledSubgraph> {
        self.serve_queued_traced(seed, TraceCtx::NONE)
    }

    /// Like [`ServingWorker::serve_queued`], continuing the caller's
    /// trace; the queue wait shows up as the gap between this span's
    /// start and its `serving.serve` child.
    ///
    /// The reply channel is per-request and the lane holds its only
    /// sender: a lane that panics or exits mid-request drops the sender
    /// and the caller observes a disconnect instead of blocking forever.
    /// (A thread-local reply channel — the previous design — left a
    /// sender clone alive in the caller's TLS, so the disconnect never
    /// fired and a panicked worker wedged the caller.)
    pub fn serve_queued_traced(&self, seed: VertexId, parent: TraceCtx) -> Result<SampledSubgraph> {
        let root = if parent.is_active() {
            parent
        } else {
            TraceCtx::root()
        };
        let queue_span = span("serving.queue", root);
        let (tx, rx) = crossbeam::channel::bounded(1);
        {
            let guard = self.serve_lanes.read();
            let lanes = guard
                .as_ref()
                .ok_or(helios_types::HeliosError::ShuttingDown)?;
            let lane = lane_for(seed, lanes.len());
            lanes[lane]
                .send(ServeRequest {
                    seed,
                    trace: queue_span.ctx(),
                    enqueued: std::time::Instant::now(),
                    epoch: self.apply_epoch.load(Ordering::Acquire),
                    reply: tx,
                })
                .map_err(|_| helios_types::HeliosError::ShuttingDown)?;
        }
        rx.recv()
            .map_err(|_| helios_types::HeliosError::Disconnected("serving thread".into()))?
    }

    /// Serve one drained lane batch: single-flight the duplicates, serve
    /// the rest in arrival order. Requests sharing `(seed, epoch)` with
    /// an earlier request in the batch become *waiters* on that leader's
    /// expansion and receive a clone of its result — at most
    /// `max_waiters` of them (the lane's current [`AdaptiveCap`] value);
    /// the overflow (and every waiter of a failed leader, since errors
    /// don't clone) degrades to an independent serve. `done` is the
    /// reused seen-markers buffer. Returns whether any waiter list
    /// overflowed, which is the adaptive cap's growth signal.
    fn run_lane_batch(
        &self,
        lane: usize,
        batch: &mut Vec<ServeRequest>,
        done: &mut Vec<bool>,
        scratch: &mut ServeScratch,
        max_waiters: usize,
    ) -> bool {
        if batch.len() == 1 || max_waiters == 0 {
            // Single request, or coalescing disabled: strict arrival
            // order, one expansion each, no grouping scan (and no
            // overflow accounting — nothing overflowed, the feature is
            // off).
            for req in batch.drain(..) {
                self.queue_wait.record_duration(req.enqueued.elapsed());
                let _ = req
                    .reply
                    .send(self.serve_request(lane, req.seed, req.trace, scratch));
            }
            return false;
        }
        let mut overflowed = false;
        let n = batch.len();
        done.clear();
        done.resize(n, false);
        for i in 0..n {
            if done[i] {
                continue;
            }
            done[i] = true;
            self.queue_wait.record_duration(batch[i].enqueued.elapsed());
            let result = self.serve_request(lane, batch[i].seed, batch[i].trace, scratch);
            let result = match result {
                Ok(subgraph) => {
                    let (seed, epoch) = (batch[i].seed, batch[i].epoch);
                    let mut waiters = 0u64;
                    for j in (i + 1)..n {
                        if batch[j].seed != seed || batch[j].epoch != epoch {
                            continue;
                        }
                        if waiters as usize >= max_waiters {
                            // Bounded waiter list is full: leave the rest
                            // undone, they serve independently below.
                            self.coalesce_overflow.incr();
                            overflowed = true;
                            continue;
                        }
                        done[j] = true;
                        waiters += 1;
                        self.queue_wait.record_duration(batch[j].enqueued.elapsed());
                        let _ = batch[j].reply.send(Ok(subgraph.clone()));
                        // A coalesced request is a served request; it just
                        // cost no expansion (and records no latency —
                        // simulated-QPS math stays honest).
                        self.served.incr();
                    }
                    if waiters > 0 {
                        self.coalesce_hits.add(waiters);
                    }
                    Ok(subgraph)
                }
                err => err,
            };
            let _ = batch[i].reply.send(result);
        }
        overflowed
    }

    /// One lane-side serve, isolated: a panicking expansion is caught and
    /// answered as an error so the lane thread (and every other request
    /// in its queue) survives.
    fn serve_request(
        &self,
        lane: usize,
        seed: VertexId,
        trace: TraceCtx,
        scratch: &mut ServeScratch,
    ) -> Result<SampledSubgraph> {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.serve_core(seed, trace, lane, scratch, |view| view.to_subgraph())
        }));
        match run {
            Ok(result) => result,
            Err(_) => Err(helios_types::HeliosError::Disconnected(
                "serve panicked".into(),
            )),
        }
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Number of sample-queue records applied.
    pub fn applied(&self) -> u64 {
        self.applied.get()
    }

    /// Number of sample-queue records that failed to decode (and were
    /// therefore *not* applied).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.get()
    }

    /// Sample-table cache lookups: (hits, misses).
    pub fn sample_lookups(&self) -> (u64, u64) {
        (self.sample_hits.get(), self.sample_misses.get())
    }

    /// Feature-table cache lookups: (hits, misses).
    pub fn feature_lookups(&self) -> (u64, u64) {
        (self.feature_hits.get(), self.feature_misses.get())
    }

    /// Queued requests answered from a coalesced expansion (single-flight
    /// hits on a hot seed).
    pub fn coalesce_hits(&self) -> u64 {
        self.coalesce_hits.get()
    }

    /// Queued requests that found the bounded waiter list full and
    /// degraded to independent serves.
    pub fn coalesce_overflow(&self) -> u64 {
        self.coalesce_overflow.get()
    }

    /// Serving latency histogram.
    pub fn serve_latency(&self) -> &Histogram {
        &self.serve_latency
    }

    /// End-to-end ingestion latency histogram (update enqueue → cache
    /// visible), Fig. 17.
    pub fn ingestion_latency(&self) -> &Histogram {
        &self.ingestion_latency
    }

    /// Sample-queue dwell-time histogram: broker-append to updater-poll
    /// per record, from the wire `produced_at` stamp. The mq slice of the
    /// ingestion latency.
    pub fn mq_dwell(&self) -> &Histogram {
        &self.mq_dwell
    }

    /// Byte gauges of this replica's cache resources, for registration
    /// with the deployment's memory accountant.
    pub fn mem_gauges(&self) -> &ServingMemGauges {
        &self.mem
    }

    /// Cache size statistics: (sample table, feature table) — Fig. 16.
    pub fn cache_stats(&self) -> (KvStats, KvStats) {
        (self.samples.stats(), self.features.stats())
    }

    /// Total cache bytes (memory + disk).
    pub fn cache_bytes(&self) -> u64 {
        let (s, f) = self.cache_stats();
        s.total_bytes() + f.total_bytes()
    }

    /// TTL expiry of cached samples/features older than `horizon`.
    /// Non-blocking: raises the stores' read-filter horizon (stale
    /// entries become invisible immediately) and nudges the background
    /// compactor to reclaim the space; never performs disk I/O on the
    /// caller's thread.
    pub fn expire_before(&self, horizon: Timestamp) -> Result<()> {
        self.samples.expire_before(horizon)?;
        self.features.expire_before(horizon)?;
        // Expiry changes read visibility like a write batch does.
        self.apply_epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Pause/resume the caches' background flushers (ops drills and
    /// wedge tests; rotated memtables accumulate while paused and drain
    /// on resume).
    pub fn pause_cache_flush(&self, paused: bool) {
        self.samples.set_flush_paused(paused);
        self.features.set_flush_paused(paused);
    }

    /// Stop updater threads (call once; serve remains usable on the
    /// remaining cache contents).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.updaters.lock().drain(..) {
            let _ = h.join();
        }
        // Close the per-lane serve queues so lane threads exit and release
        // their `Arc<ServingWorker>` handles. Buffered requests survive
        // sender disconnect and are still drained before the lanes exit.
        self.serve_lanes.write().take();
        for h in self.serve_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn split_round_robin(parts: &[PartitionId], n: usize) -> Vec<Vec<PartitionId>> {
    let mut out = vec![Vec::new(); n.max(1)];
    for (i, &p) in parts.iter().enumerate() {
        out[i % n.max(1)].push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encodings_are_disjoint_and_ordered() {
        let a = sample_key(QueryHopId(0), VertexId(1));
        let b = sample_key(QueryHopId(0), VertexId(2));
        let c = sample_key(QueryHopId(1), VertexId(1));
        assert!(a < b);
        assert!(b < c, "hop is the major key");
        assert_ne!(feature_key(VertexId(1)), feature_key(VertexId(2)));
    }

    #[test]
    fn lane_choice_is_stable_and_covers_all_lanes() {
        // Affinity: the same seed always maps to the same lane.
        for v in 0..64u64 {
            assert_eq!(lane_for(VertexId(v), 4), lane_for(VertexId(v), 4));
        }
        // Spread: with enough seeds every lane gets traffic.
        let mut hit = [false; 4];
        for v in 0..64u64 {
            hit[lane_for(VertexId(v), 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "all lanes reachable: {hit:?}");
        // Degenerate lane counts never panic or go out of range.
        assert_eq!(lane_for(VertexId(7), 1), 0);
        assert_eq!(lane_for(VertexId(7), 0), 0);
    }

    #[test]
    fn adaptive_cap_grows_on_overflow_and_decays_to_floor() {
        let mut cap = AdaptiveCap::new(16);
        assert_eq!(cap.current(), 16);
        // Overflow doubles, repeatedly, up to the ceiling.
        assert!(cap.observe(true));
        assert_eq!(cap.current(), 32);
        for _ in 0..20 {
            cap.observe(true);
        }
        assert_eq!(cap.current(), AdaptiveCap::MAX);
        assert!(!cap.observe(true), "at the ceiling the cap stays put");
        // Calm batches decay one halving per SHRINK_AFTER, never below
        // the floor.
        let mut changes = 0;
        for _ in 0..(AdaptiveCap::SHRINK_AFTER * 100) {
            if cap.observe(false) {
                changes += 1;
            }
        }
        assert_eq!(cap.current(), 16);
        assert_eq!(changes, 6, "1024 → 16 is six halvings");
        // An overflow mid-decay resets the calm streak: after growing to
        // 32 and SHRINK_AFTER-1 calm batches, one overflow means the next
        // SHRINK_AFTER-1 calm batches still shrink nothing.
        cap.observe(true);
        assert_eq!(cap.current(), 32);
        for _ in 0..(AdaptiveCap::SHRINK_AFTER - 1) {
            assert!(!cap.observe(false));
        }
        assert!(cap.observe(true), "overflow grows and resets calm");
        assert_eq!(cap.current(), 64);
        for _ in 0..(AdaptiveCap::SHRINK_AFTER - 1) {
            assert!(!cap.observe(false), "calm streak restarted");
        }
        assert!(cap.observe(false));
        assert_eq!(cap.current(), 32);
    }

    #[test]
    fn adaptive_cap_zero_floor_is_the_off_switch() {
        let mut cap = AdaptiveCap::new(0);
        assert_eq!(cap.current(), 0);
        assert!(!cap.observe(true));
        assert!(!cap.observe(false));
        assert_eq!(cap.current(), 0, "disabled cap never moves");
    }

    #[test]
    fn round_robin_split_covers_all() {
        let parts: Vec<PartitionId> = (0..5).map(PartitionId).collect();
        let chunks = split_round_robin(&parts, 2);
        assert_eq!(chunks.len(), 2);
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let chunks1 = split_round_robin(&parts, 8);
        assert_eq!(chunks1.iter().filter(|c| !c.is_empty()).count(), 5);
    }
}
