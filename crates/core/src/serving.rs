//! The serving worker and its query-aware sample cache (§4.3, §6).
//!
//! Each serving worker owns the inference traffic of one slice of the
//! seed-vertex space. Its cache has two parts, both over `helios-kvstore`
//! (the paper uses RocksDB's hybrid memory-disk mode):
//!
//! * a **sample table** per one-hop query: `(hop, vertex) → sampled
//!   neighbors`;
//! * a **feature table**: `vertex → latest feature`.
//!
//! **Data-updating threads** drain the worker's sample queue and apply
//! [`SampleMsg`]s; **serving threads** are the caller's threads — `serve`
//! is `&self` and lock-free above the kvstore shards, so any number of
//! front-end threads can call it concurrently (§4.3's serving threads).
//!
//! Serving a K-hop query costs exactly `1 + Σ ∏ Cᵢ` sample-table lookups
//! and at most `1 + Σ ∏ Cᵢ` feature lookups — independent of vertex
//! degree, which is the whole point (§6).

use crate::config::HeliosConfig;
use crate::messages::{now_nanos, SampleEntryLite, SampleMsg};
use crate::sampler::topics;
use bytes::BytesMut;
use helios_kvstore::{KvConfig, KvEvent, KvStats, KvStore, WriteOp};
use helios_metrics::Histogram;
use helios_mq::Broker;
use helios_query::{HopSamples, KHopQuery, SampledSubgraph};
use helios_telemetry::{span, Counter, EventKind, FlightRecorder, Registry, TraceCtx};
use helios_types::{
    Decode, Encode, PartitionId, QueryHopId, Result, ServingWorkerId, Timestamp, VertexId,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

fn sample_key(hop: QueryHopId, v: VertexId) -> [u8; 10] {
    let mut k = [0u8; 10];
    k[..2].copy_from_slice(&hop.0.to_be_bytes());
    k[2..].copy_from_slice(&v.raw().to_be_bytes());
    k
}

fn feature_key(v: VertexId) -> [u8; 8] {
    v.raw().to_be_bytes()
}

/// A running serving worker. Its latency histograms and hit/served
/// counters live in the deployment's telemetry registry under
/// `serving.*{worker=<id>,replica=<r>}`.
pub struct ServingWorker {
    id: ServingWorkerId,
    replica: u32,
    query: KHopQuery,
    samples: KvStore,
    features: KvStore,
    serve_latency: Arc<Histogram>,
    ingestion_latency: Arc<Histogram>,
    /// Per-stage serve-path attribution (`serving.stage_latency{stage=…}`):
    /// `cache_lookup + hop_expand + feature_gather + encode` covers the
    /// whole of `serve_traced`, so these sum to `serving.latency`.
    stage_cache_lookup: Arc<Histogram>,
    stage_hop_expand: Arc<Histogram>,
    stage_feature_gather: Arc<Histogram>,
    stage_encode: Arc<Histogram>,
    /// Queued-path extra: enqueue → pickup by a serving thread.
    queue_wait: Arc<Histogram>,
    /// Update-path attribution: sample-queue dwell (produce → consume
    /// stamp on the wire record) and batch cache-apply time.
    mq_dwell: Arc<Histogram>,
    cache_apply_latency: Arc<Histogram>,
    served: Arc<Counter>,
    applied: Arc<Counter>,
    decode_errors: Arc<Counter>,
    sample_hits: Arc<Counter>,
    sample_misses: Arc<Counter>,
    feature_hits: Arc<Counter>,
    feature_misses: Arc<Counter>,
    stop: Arc<AtomicBool>,
    updaters: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    /// Dropped (set to `None`) at shutdown so serving threads exit their
    /// recv loops and the `Arc` cycle through them is broken.
    serve_tx: parking_lot::RwLock<Option<crossbeam::channel::Sender<ServeRequest>>>,
    serve_threads: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

type ServeRequest = (
    VertexId,
    TraceCtx,
    // Enqueue instant: lets the picking serving thread attribute the
    // queue wait (`serving.queue_wait`).
    std::time::Instant,
    crossbeam::channel::Sender<Result<SampledSubgraph>>,
);

impl ServingWorker {
    /// Start replica `replica` of serving worker `id`: opens its cache
    /// stores and spawns data-updating threads over the partitions of
    /// `samples-<id>`. Each replica consumes the full sample queue under
    /// its own consumer group, so replicas converge to identical caches
    /// (§4.1's replication of highly loaded serving workers).
    #[allow(clippy::too_many_arguments)] // deployment-internal constructor
    pub fn start(
        id: ServingWorkerId,
        replica: u32,
        config: &HeliosConfig,
        query: &KHopQuery,
        broker: &Arc<Broker>,
        beacon: helios_actor::Beacon,
        registry: &Registry,
        recorder: &Arc<FlightRecorder>,
    ) -> Result<Arc<ServingWorker>> {
        let kv_config = |suffix: &str| match &config.cache_dir {
            Some(dir) => {
                let mut c = KvConfig::hybrid(
                    config.cache_shards,
                    config.cache_memtable_budget,
                    dir.join(format!("sew{}-r{replica}-{suffix}", id.0)),
                );
                c.l0_compact_trigger = config.cache_l0_compact_trigger;
                c.max_immutable_memtables = config.cache_max_immutables;
                c.block_cache_bytes = config.cache_block_cache_bytes;
                c
            }
            None => KvConfig::in_memory(config.cache_shards),
        };
        let w = id.0.to_string();
        let r = replica.to_string();
        let labels: &[(&str, &str)] = &[("worker", &w), ("replica", &r)];
        let hit_labels = |table: &'static str| {
            [
                ("worker", w.as_str()),
                ("replica", r.as_str()),
                ("table", table),
            ]
        };
        let stage_labels = |stage: &'static str| {
            [
                ("worker", w.as_str()),
                ("replica", r.as_str()),
                ("stage", stage),
            ]
        };
        let (serve_tx, serve_rx) = crossbeam::channel::unbounded::<ServeRequest>();
        let worker = Arc::new(ServingWorker {
            id,
            replica,
            query: query.clone(),
            samples: KvStore::open(kv_config("samples"))?,
            features: KvStore::open(kv_config("features"))?,
            serve_latency: registry.histogram("serving.latency", labels),
            ingestion_latency: registry.histogram("serving.ingestion_latency", labels),
            stage_cache_lookup: registry
                .histogram("serving.stage_latency", &stage_labels("cache_lookup")),
            stage_hop_expand: registry
                .histogram("serving.stage_latency", &stage_labels("hop_expand")),
            stage_feature_gather: registry
                .histogram("serving.stage_latency", &stage_labels("feature_gather")),
            stage_encode: registry.histogram("serving.stage_latency", &stage_labels("encode")),
            queue_wait: registry.histogram("serving.queue_wait", labels),
            mq_dwell: registry.histogram(
                "mq.dwell",
                &[
                    ("topic", "samples"),
                    ("worker", w.as_str()),
                    ("replica", r.as_str()),
                ],
            ),
            cache_apply_latency: registry.histogram("serving.cache_apply_latency", labels),
            served: registry.counter("serving.served", labels),
            applied: registry.counter("serving.applied", labels),
            decode_errors: registry.counter("serving.decode_errors", labels),
            sample_hits: registry.counter("serving.cache_hit", &hit_labels("samples")),
            sample_misses: registry.counter("serving.cache_miss", &hit_labels("samples")),
            feature_hits: registry.counter("serving.cache_hit", &hit_labels("features")),
            feature_misses: registry.counter("serving.cache_miss", &hit_labels("features")),
            stop: Arc::new(AtomicBool::new(false)),
            updaters: parking_lot::Mutex::new(Vec::new()),
            serve_tx: parking_lot::RwLock::new(Some(serve_tx)),
            serve_threads: parking_lot::Mutex::new(Vec::new()),
        });

        // Background flush/compaction events from both cache stores feed
        // the flight recorder (the kvstore has no telemetry dependency,
        // so the wiring lives here).
        for store in [&worker.samples, &worker.features] {
            let recorder = Arc::clone(recorder);
            let sew = id.0;
            store.set_event_hook(Arc::new(move |ev| match *ev {
                KvEvent::Flush {
                    entries,
                    bytes,
                    pending,
                    ..
                } => recorder.record(
                    EventKind::Flush,
                    sew,
                    entries as u64,
                    bytes as u64,
                    pending as u64,
                ),
                KvEvent::Compaction {
                    runs_in,
                    entries_out,
                    bytes_out,
                    ..
                } => recorder.record(
                    EventKind::Compaction,
                    sew,
                    runs_in as u64,
                    entries_out,
                    bytes_out,
                ),
                KvEvent::Stall { .. } => {}
            }));
        }

        // Serving threads (§4.3): execute queued sampling queries. The
        // pool size bounds per-worker serving parallelism, which is the
        // knob the Fig. 14 scale-up experiment turns.
        let mut serve_handles = Vec::new();
        for t in 0..config.serving_threads {
            let w = Arc::clone(&worker);
            let rx = serve_rx.clone();
            serve_handles.push(
                std::thread::Builder::new()
                    .name(format!("sew{}r{replica}-serve-{t}", id.0))
                    .spawn(move || {
                        while let Ok((seed, trace, enqueued, reply)) = rx.recv() {
                            w.queue_wait.record_duration(enqueued.elapsed());
                            let _ = reply.send(w.serve_traced(seed, trace));
                        }
                    })
                    .expect("spawn serving thread"),
            );
        }
        drop(serve_rx);
        *worker.serve_threads.lock() = serve_handles;
        let mut handles = Vec::new();

        // Data-updating threads: split the topic's partitions across them.
        let topic_name = topics::samples(id.0);
        let partitions: Vec<PartitionId> = (0..config.sample_queue_partitions)
            .map(PartitionId)
            .collect();
        let chunks: Vec<Vec<PartitionId>> = split_round_robin(&partitions, config.updater_threads);
        for (t, parts) in chunks.into_iter().enumerate() {
            if parts.is_empty() {
                continue;
            }
            let mut consumer =
                broker.consumer(&format!("sew-{}-r{replica}", id.0), &topic_name, &parts)?;
            let w = Arc::clone(&worker);
            let stop = Arc::clone(&worker.stop);
            let poll_batch = config.poll_batch;
            let poll_timeout = config.poll_timeout;
            let beacon = beacon.clone();
            let recorder = Arc::clone(recorder);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sew{}r{replica}-updater-{t}", id.0))
                    .spawn(move || {
                        let mut batch: Vec<SampleMsg> = Vec::with_capacity(poll_batch);
                        while !stop.load(Ordering::Relaxed) {
                            beacon.beat();
                            let recs = consumer.poll(poll_batch, poll_timeout);
                            if recs.is_empty() {
                                continue;
                            }
                            batch.clear();
                            let mut errors = 0u64;
                            let consumed_at = now_nanos();
                            for rec in &recs {
                                if rec.produced_at > 0 {
                                    w.mq_dwell
                                        .record(consumed_at.saturating_sub(rec.produced_at));
                                }
                                match SampleMsg::decode_from_slice(&rec.payload) {
                                    Ok(msg) => batch.push(msg),
                                    Err(_) => errors += 1,
                                }
                            }
                            // The whole poll batch lands in the cache with
                            // one write-lock acquisition per kvstore shard.
                            let apply_start = std::time::Instant::now();
                            w.apply_batch(&batch);
                            w.cache_apply_latency.record_duration(apply_start.elapsed());
                            w.applied.add(batch.len() as u64);
                            if errors > 0 {
                                w.decode_errors.add(errors);
                                recorder.record(EventKind::DecodeError, id.0, errors, 0, 0);
                            }
                            recorder.record(
                                EventKind::UpdateApplied,
                                id.0,
                                batch.len() as u64,
                                errors,
                                u64::from(replica),
                            );
                        }
                    })
                    .expect("spawn updater thread"),
            );
        }
        *worker.updaters.lock() = handles;
        Ok(worker)
    }

    /// Worker id.
    pub fn id(&self) -> ServingWorkerId {
        self.id
    }

    /// Replica index within the logical serving worker.
    pub fn replica(&self) -> u32 {
        self.replica
    }

    /// Apply one cache update (normally called by updater threads; public
    /// for tests and custom pipelines).
    pub fn apply(&self, msg: &SampleMsg) {
        self.apply_batch(std::slice::from_ref(msg));
    }

    /// Apply a batch of cache updates, writing each table through one
    /// [`KvStore::write_batch`] — one write-lock acquisition per touched
    /// kvstore shard for the whole batch instead of one per message.
    /// Per-key input order is preserved, so the result is identical to
    /// applying the messages one by one.
    pub fn apply_batch(&self, msgs: &[SampleMsg]) {
        let mut sample_ops: Vec<WriteOp> = Vec::new();
        let mut feature_ops: Vec<WriteOp> = Vec::new();
        let mut caused: Vec<(u64, u64)> = Vec::new();
        for msg in msgs {
            let trace = msg.trace();
            let _apply_span = span("serving.cache_apply", trace);
            match msg {
                SampleMsg::SampleUpdate {
                    hop,
                    key,
                    entries,
                    caused_at,
                    ..
                } => {
                    let mut buf = BytesMut::with_capacity(8 + entries.len() * 20);
                    entries.encode(&mut buf);
                    let ts = entries
                        .iter()
                        .map(|e| e.ts)
                        .max()
                        .unwrap_or(Timestamp::ZERO);
                    sample_ops.push(WriteOp::put(sample_key(*hop, *key), buf.freeze(), ts));
                    if *caused_at > 0 {
                        caused.push((*caused_at, trace.trace));
                    }
                }
                SampleMsg::Evict { hop, key } => {
                    sample_ops.push(WriteOp::delete(sample_key(*hop, *key), Timestamp::MAX));
                }
                SampleMsg::FeatureUpdate {
                    vertex,
                    feature,
                    ts,
                    caused_at,
                    ..
                } => {
                    let mut buf = BytesMut::with_capacity(feature.len() * 4 + 8);
                    feature.encode(&mut buf);
                    feature_ops.push(WriteOp::put(feature_key(*vertex), buf.freeze(), *ts));
                    if *caused_at > 0 {
                        caused.push((*caused_at, trace.trace));
                    }
                }
                SampleMsg::EvictFeature { vertex } => {
                    feature_ops.push(WriteOp::delete(feature_key(*vertex), Timestamp::MAX));
                }
            }
        }
        if !sample_ops.is_empty() {
            let _ = self.samples.write_batch(sample_ops);
        }
        if !feature_ops.is_empty() {
            let _ = self.features.write_batch(feature_ops);
        }
        // Ingestion latency is "enqueue → visible in cache", so the stamps
        // are recorded only after the batch has landed.
        for (at, trace) in caused {
            self.record_ingestion(at, trace);
        }
    }

    fn record_ingestion(&self, caused_at: u64, trace: u64) {
        if caused_at > 0 {
            let now = now_nanos();
            if now > caused_at {
                self.ingestion_latency
                    .record_with_exemplar(now - caused_at, trace);
            }
        }
    }

    /// Answer a K-hop sampling query for `seed` from the local cache: a
    /// fixed number of lookups, no traversal, no network (§6's "Serving
    /// Sampling Queries", Fig. 8).
    pub fn serve(&self, seed: VertexId) -> Result<SampledSubgraph> {
        self.serve_traced(seed, TraceCtx::NONE)
    }

    /// Like [`ServingWorker::serve`], continuing the caller's trace (the
    /// deployment router passes its span context here). With no active
    /// parent and tracing enabled, a fresh trace starts at this request.
    pub fn serve_traced(&self, seed: VertexId, parent: TraceCtx) -> Result<SampledSubgraph> {
        let root = if parent.is_active() {
            parent
        } else {
            TraceCtx::root()
        };
        let serve_span = span("serving.serve", root);
        let ctx = serve_span.ctx();
        let start = std::time::Instant::now();
        let mut result = SampledSubgraph::new(seed);
        let mut frontier = vec![seed];
        for hop_idx in 0..self.query.hops() {
            let hop = QueryHopId(hop_idx as u16);
            // Stage: cache lookup. One shard-grouped multi_get over the
            // whole frontier — the sample table's shard locks are taken
            // once per hop, not once per vertex.
            let lookup_start = std::time::Instant::now();
            let lookup_span = span("serving.cache_lookup", ctx);
            let keys: Vec<[u8; 10]> = frontier.iter().map(|&v| sample_key(hop, v)).collect();
            let values = self.samples.multi_get(&keys)?;
            drop(lookup_span);
            self.stage_cache_lookup
                .record_duration(lookup_start.elapsed());
            // Stage: hop expand. Decode the sampled neighbor lists and
            // build the next frontier.
            let expand_start = std::time::Instant::now();
            let expand_span = span("serving.hop_expand", ctx);
            let mut hs = HopSamples::default();
            hs.groups.reserve(frontier.len());
            let mut next = Vec::new();
            let (mut hits, mut misses) = (0u64, 0u64);
            for (&v, value) in frontier.iter().zip(values) {
                let children: Vec<VertexId> = match value {
                    Some(raw) => {
                        hits += 1;
                        // Neighbors only — timestamps/weights are skipped
                        // without materializing `Vec<SampleEntryLite>`.
                        SampleEntryLite::decode_neighbors(&raw).unwrap_or_default()
                    }
                    None => {
                        misses += 1;
                        Vec::new()
                    }
                };
                next.extend(children.iter().copied());
                hs.groups.push((v, children));
            }
            self.sample_hits.add(hits);
            self.sample_misses.add(misses);
            result.hops.push(hs);
            frontier = next;
            drop(expand_span);
            self.stage_hop_expand
                .record_duration(expand_start.elapsed());
            if frontier.is_empty() {
                break;
            }
        }
        // Stage: feature gather. `all_vertices` deduplicates, so a vertex
        // sampled under many parents costs one feature lookup; the whole
        // set is fetched with a single multi_get.
        let gather_start = std::time::Instant::now();
        let gather_span = span("serving.feature_gather", ctx);
        let vertices: Vec<VertexId> = result.all_vertices().into_iter().collect();
        let keys: Vec<[u8; 8]> = vertices.iter().map(|&v| feature_key(v)).collect();
        let values = self.features.multi_get(&keys)?;
        drop(gather_span);
        self.stage_feature_gather
            .record_duration(gather_start.elapsed());
        // Stage: encode. Decode the fetched feature vectors into the
        // result subgraph handed back to the model runner.
        let encode_start = std::time::Instant::now();
        let encode_span = span("serving.encode", ctx);
        let (mut hits, mut misses) = (0u64, 0u64);
        for (v, value) in vertices.into_iter().zip(values) {
            match value {
                Some(raw) => {
                    hits += 1;
                    if let Ok(f) = Vec::<f32>::decode_from_slice(&raw) {
                        result.features.insert(v, f);
                    }
                }
                None => misses += 1,
            }
        }
        self.feature_hits.add(hits);
        self.feature_misses.add(misses);
        drop(encode_span);
        self.stage_encode.record_duration(encode_start.elapsed());
        // The end-to-end observation carries the trace id as an exemplar
        // (0 — untraced — degrades to a plain record).
        self.serve_latency
            .record_duration_with_exemplar(start.elapsed(), root.trace);
        self.served.incr();
        Ok(result)
    }

    /// Serve through the worker's bounded serving-thread pool: the request
    /// queues until one of the `serving_threads` picks it up. Latency
    /// measured by the caller then includes queueing delay, which is what
    /// a front-end observes under load.
    pub fn serve_queued(&self, seed: VertexId) -> Result<SampledSubgraph> {
        self.serve_queued_traced(seed, TraceCtx::NONE)
    }

    /// Like [`ServingWorker::serve_queued`], continuing the caller's
    /// trace; the queue wait shows up as the gap between this span's
    /// start and its `serving.serve` child.
    pub fn serve_queued_traced(&self, seed: VertexId, parent: TraceCtx) -> Result<SampledSubgraph> {
        // Per-caller reply channel, reused across requests from the same
        // front-end thread so the queued-serve path allocates nothing per
        // request. Safe because (a) the serve queue is drained even after
        // `serve_tx` is dropped at shutdown (buffered messages survive
        // sender disconnect), so every successfully-enqueued request gets
        // exactly one reply, and (b) we receive that reply before the
        // channel can be reused, so it is empty between requests.
        thread_local! {
            #[allow(clippy::type_complexity)]
            static REPLY: (
                crossbeam::channel::Sender<Result<SampledSubgraph>>,
                crossbeam::channel::Receiver<Result<SampledSubgraph>>,
            ) = crossbeam::channel::bounded(1);
        }
        let root = if parent.is_active() {
            parent
        } else {
            TraceCtx::root()
        };
        let queue_span = span("serving.queue", root);
        REPLY.with(|(tx, rx)| {
            {
                let guard = self.serve_tx.read();
                let sender = guard
                    .as_ref()
                    .ok_or(helios_types::HeliosError::ShuttingDown)?;
                sender
                    .send((seed, queue_span.ctx(), std::time::Instant::now(), tx.clone()))
                    .map_err(|_| helios_types::HeliosError::ShuttingDown)?;
            }
            rx.recv()
                .map_err(|_| helios_types::HeliosError::Disconnected("serving thread".into()))?
        })
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Number of sample-queue records applied.
    pub fn applied(&self) -> u64 {
        self.applied.get()
    }

    /// Number of sample-queue records that failed to decode (and were
    /// therefore *not* applied).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.get()
    }

    /// Sample-table cache lookups: (hits, misses).
    pub fn sample_lookups(&self) -> (u64, u64) {
        (self.sample_hits.get(), self.sample_misses.get())
    }

    /// Feature-table cache lookups: (hits, misses).
    pub fn feature_lookups(&self) -> (u64, u64) {
        (self.feature_hits.get(), self.feature_misses.get())
    }

    /// Serving latency histogram.
    pub fn serve_latency(&self) -> &Histogram {
        &self.serve_latency
    }

    /// End-to-end ingestion latency histogram (update enqueue → cache
    /// visible), Fig. 17.
    pub fn ingestion_latency(&self) -> &Histogram {
        &self.ingestion_latency
    }

    /// Sample-queue dwell-time histogram: broker-append to updater-poll
    /// per record, from the wire `produced_at` stamp. The mq slice of the
    /// ingestion latency.
    pub fn mq_dwell(&self) -> &Histogram {
        &self.mq_dwell
    }

    /// Cache size statistics: (sample table, feature table) — Fig. 16.
    pub fn cache_stats(&self) -> (KvStats, KvStats) {
        (self.samples.stats(), self.features.stats())
    }

    /// Total cache bytes (memory + disk).
    pub fn cache_bytes(&self) -> u64 {
        let (s, f) = self.cache_stats();
        s.total_bytes() + f.total_bytes()
    }

    /// TTL expiry of cached samples/features older than `horizon`.
    /// Non-blocking: raises the stores' read-filter horizon (stale
    /// entries become invisible immediately) and nudges the background
    /// compactor to reclaim the space; never performs disk I/O on the
    /// caller's thread.
    pub fn expire_before(&self, horizon: Timestamp) -> Result<()> {
        self.samples.expire_before(horizon)?;
        self.features.expire_before(horizon)?;
        Ok(())
    }

    /// Pause/resume the caches' background flushers (ops drills and
    /// wedge tests; rotated memtables accumulate while paused and drain
    /// on resume).
    pub fn pause_cache_flush(&self, paused: bool) {
        self.samples.set_flush_paused(paused);
        self.features.set_flush_paused(paused);
    }

    /// Stop updater threads (call once; serve remains usable on the
    /// remaining cache contents).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.updaters.lock().drain(..) {
            let _ = h.join();
        }
        // Close the serve queue so serving threads exit and release their
        // `Arc<ServingWorker>` handles.
        self.serve_tx.write().take();
        for h in self.serve_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn split_round_robin(parts: &[PartitionId], n: usize) -> Vec<Vec<PartitionId>> {
    let mut out = vec![Vec::new(); n.max(1)];
    for (i, &p) in parts.iter().enumerate() {
        out[i % n.max(1)].push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encodings_are_disjoint_and_ordered() {
        let a = sample_key(QueryHopId(0), VertexId(1));
        let b = sample_key(QueryHopId(0), VertexId(2));
        let c = sample_key(QueryHopId(1), VertexId(1));
        assert!(a < b);
        assert!(b < c, "hop is the major key");
        assert_ne!(feature_key(VertexId(1)), feature_key(VertexId(2)));
    }

    #[test]
    fn round_robin_split_covers_all() {
        let parts: Vec<PartitionId> = (0..5).map(PartitionId).collect();
        let chunks = split_round_robin(&parts, 2);
        assert_eq!(chunks.len(), 2);
        let total: usize = chunks.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let chunks1 = split_round_robin(&parts, 8);
        assert_eq!(chunks1.iter().filter(|c| !c.is_empty()).count(), 5);
    }
}
