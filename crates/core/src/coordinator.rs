//! The coordinator (§4.1).
//!
//! Registers the user-specified K-hop query, decomposes it into one-hop
//! queries, models their data dependencies as a DAG distributed to all
//! workers, and monitors worker liveness via heartbeats. Checkpointing is
//! triggered through [`crate::HeliosDeployment::checkpoint`], which the
//! coordinator can drive periodically.

use helios_actor::{Beacon, Liveness};
use helios_query::{KHopQuery, QueryDag};
use std::sync::Arc;
use std::time::Duration;

/// Coordinator state shared with the deployment.
pub struct Coordinator {
    query: KHopQuery,
    dag: QueryDag,
    liveness: Arc<Liveness>,
}

impl Coordinator {
    /// Register a query: decompose it and build the dependency DAG.
    pub fn new(query: KHopQuery) -> Self {
        let dag = query.dag();
        Coordinator {
            query,
            dag,
            liveness: Arc::new(Liveness::new()),
        }
    }

    /// The registered K-hop query.
    pub fn query(&self) -> &KHopQuery {
        &self.query
    }

    /// The one-hop query dependency DAG distributed to workers.
    pub fn dag(&self) -> &QueryDag {
        &self.dag
    }

    /// Register a worker for heartbeat monitoring; the worker bumps the
    /// returned beacon from its polling loops.
    pub fn register_worker(&self, name: &str) -> Beacon {
        self.liveness.register(name)
    }

    /// Remove a worker from heartbeat monitoring (scale-in).
    pub fn deregister_worker(&self, name: &str) {
        self.liveness.deregister(name);
    }

    /// Shared handle to the liveness registry, for long-lived probe
    /// closures that must not borrow the coordinator.
    pub fn liveness(&self) -> Arc<Liveness> {
        Arc::clone(&self.liveness)
    }

    /// Workers that have not beaten within `timeout`.
    pub fn dead_workers(&self, timeout: Duration) -> Vec<String> {
        self.liveness.dead_workers(timeout)
    }

    /// Number of registered workers.
    pub fn worker_count(&self) -> usize {
        self.liveness.worker_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_query::SamplingStrategy;
    use helios_types::{EdgeType, VertexType};

    fn query() -> KHopQuery {
        KHopQuery::builder(VertexType(0))
            .hop(EdgeType(0), VertexType(1), 2, SamplingStrategy::Random)
            .hop(EdgeType(1), VertexType(1), 2, SamplingStrategy::TopK)
            .build()
            .unwrap()
    }

    #[test]
    fn decomposes_on_registration() {
        let c = Coordinator::new(query());
        assert_eq!(c.dag().len(), 2);
        assert_eq!(c.query().hops(), 2);
    }

    #[test]
    fn liveness_tracks_registered_workers() {
        let c = Coordinator::new(query());
        let b = c.register_worker("saw0");
        c.register_worker("sew0");
        assert_eq!(c.worker_count(), 2);
        std::thread::sleep(Duration::from_millis(25));
        b.beat();
        let dead = c.dead_workers(Duration::from_millis(15));
        assert_eq!(dead, vec!["sew0".to_string()]);
    }
}
