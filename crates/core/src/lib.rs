//! # helios-core
//!
//! The paper's primary contribution: an event-driven pre-sampling service
//! with a query-aware sample cache behind a sampling/serving separation
//! architecture (§4–§6 of *Helios: Efficient Distributed Dynamic Graph
//! Sampling for Online GNN Inference*, PPoPP'25).
//!
//! A [`HeliosDeployment`] wires together:
//!
//! * a **coordinator** ([`coordinator`]) that registers the user's K-hop
//!   sampling query, decomposes it into one-hop queries with a dependency
//!   DAG, and monitors worker liveness / triggers checkpoints;
//! * **M sampling workers** ([`sampler`]) that consume the partitioned
//!   graph-update stream, maintain one reservoir table per one-hop query
//!   (event-driven reservoir sampling, §5.2), track which serving workers
//!   subscribe to which vertices (§5.3), and publish sample/feature
//!   updates;
//! * **N serving workers** ([`serving`]) that each hold a query-aware
//!   sample cache (sample tables + feature table over `helios-kvstore`,
//!   §6) and answer K-hop sampling queries with a *fixed* number of local
//!   lookups — no network, no traversal;
//! * a message broker (`helios-mq`) carrying three kinds of topics:
//!   `updates` (graph updates, partitioned by routing vertex), `control`
//!   (subscription management between sampling workers) and
//!   `samples-<sew>` (pre-sampled results pushed to each serving worker).
//!
//! Consistency is **eventual** (§6): serving never blocks on ingestion,
//! and the staleness window is measured (Fig. 17) rather than eliminated.
//!
//! ```no_run
//! use helios_core::{HeliosConfig, HeliosDeployment};
//! use helios_query::{KHopQuery, SamplingStrategy};
//! use helios_types::{VertexId, VertexType, EdgeType};
//!
//! let query = KHopQuery::builder(VertexType(0))
//!     .hop(EdgeType(0), VertexType(1), 25, SamplingStrategy::Random)
//!     .hop(EdgeType(1), VertexType(1), 10, SamplingStrategy::TopK)
//!     .build()
//!     .unwrap();
//! let helios = HeliosDeployment::start(HeliosConfig::default(), query).unwrap();
//! // ... ingest updates, then:
//! let result = helios.serve(VertexId(42)).unwrap();
//! ```

pub mod config;
pub mod coordinator;
pub mod deployment;
pub mod messages;
pub mod report;
pub mod rescale;
pub mod sampler;
pub mod serving;

pub use config::{FreshnessConfig, HeliosConfig};
pub use coordinator::Coordinator;
pub use deployment::HeliosDeployment;
pub use messages::{ControlMsg, SampleEntryLite, SampleMsg, UpdateEnvelope};
pub use report::{DeploymentReport, SamplingReport, ServingReport};
pub use rescale::AutoscalerGuard;
pub use sampler::SamplingWorker;
pub use serving::{ServingMemGauges, ServingWorker};

// Membership/rescale vocabulary, re-exported so deployments can configure
// the autoscaler without depending on helios-membership directly.
pub use helios_membership::{
    RouteTable, Router, ScaleController, ScaleDecision, ScalePolicy, ScaleSignals,
};

use helios_query::SamplingStrategy as QueryStrategy;
use helios_sampling::SamplingStrategy as ReservoirStrategy;

/// Convert the query-layer strategy enum into the sampling-layer one.
/// The two enums are structurally identical (see `helios-query` docs for
/// why they are separate types).
pub fn to_reservoir_strategy(s: QueryStrategy) -> ReservoirStrategy {
    match s {
        QueryStrategy::Random => ReservoirStrategy::Random,
        QueryStrategy::TopK => ReservoirStrategy::TopK,
        QueryStrategy::EdgeWeight => ReservoirStrategy::EdgeWeight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_conversion_is_total() {
        for (q, r) in [
            (QueryStrategy::Random, ReservoirStrategy::Random),
            (QueryStrategy::TopK, ReservoirStrategy::TopK),
            (QueryStrategy::EdgeWeight, ReservoirStrategy::EdgeWeight),
        ] {
            assert_eq!(to_reservoir_strategy(q), r);
            assert_eq!(q.name(), r.name());
        }
    }
}
