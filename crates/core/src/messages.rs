//! Wire messages between Helios workers.
//!
//! Three message families, one per topic family:
//!
//! * [`UpdateEnvelope`] — a graph update stamped with its enqueue time, on
//!   the `updates` topic (the stamp is how ingestion latency, Fig. 17, is
//!   measured end-to-end);
//! * [`ControlMsg`] — subscription management between sampling workers on
//!   the `control` topic (§5.3, Fig. 7);
//! * [`SampleMsg`] — pre-sampled results and feature updates pushed to a
//!   serving worker's `samples-<sew>` topic.

use bytes::{Buf, BytesMut};
use helios_telemetry::TraceCtx;
use helios_types::{
    Decode, Encode, GraphUpdate, HeliosError, QueryHopId, Result, ServingWorkerId, Timestamp,
    VertexId,
};

/// Wall-clock nanoseconds since the UNIX epoch; used only for measuring
/// real elapsed ingestion latency, never for ordering decisions.
pub fn now_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// A graph update plus the wall-clock time it entered the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateEnvelope {
    /// Enqueue time from [`now_nanos`].
    pub enqueued_at: u64,
    /// Trace context of the ingesting request; [`TraceCtx::NONE`] unless
    /// tracing is enabled at ingest time.
    pub trace: TraceCtx,
    /// The update itself.
    pub update: GraphUpdate,
}

impl UpdateEnvelope {
    /// Wrap an update, stamping it now. Starts a new trace when tracing
    /// is enabled (each ingested update is its own root).
    pub fn stamp(update: GraphUpdate) -> Self {
        UpdateEnvelope {
            enqueued_at: now_nanos(),
            trace: TraceCtx::root(),
            update,
        }
    }
}

impl Encode for UpdateEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        self.enqueued_at.encode(buf);
        self.trace.encode(buf);
        self.update.encode(buf);
    }
}

impl Decode for UpdateEnvelope {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(UpdateEnvelope {
            enqueued_at: u64::decode(buf)?,
            trace: TraceCtx::decode(buf)?,
            update: GraphUpdate::decode(buf)?,
        })
    }
}

/// One sampled neighbor as shipped to serving workers (the reservoir's
/// A-Res key is internal and not shipped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEntryLite {
    /// Sampled neighbor.
    pub neighbor: VertexId,
    /// Edge timestamp that produced the sample.
    pub ts: Timestamp,
    /// Edge weight.
    pub weight: f32,
}

impl Encode for SampleEntryLite {
    fn encode(&self, buf: &mut BytesMut) {
        self.neighbor.encode(buf);
        self.ts.encode(buf);
        self.weight.encode(buf);
    }
}

impl Decode for SampleEntryLite {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(SampleEntryLite {
            neighbor: VertexId::decode(buf)?,
            ts: Timestamp::decode(buf)?,
            weight: f32::decode(buf)?,
        })
    }
}

impl SampleEntryLite {
    /// Encoded size of one entry: neighbor (8) + ts (8) + weight (4).
    pub const WIRE_BYTES: usize = 20;

    /// Decode only the neighbor ids out of an encoded
    /// `Vec<SampleEntryLite>`, skipping timestamps and weights. The serve
    /// hot path expands hops with this: it never materializes the
    /// intermediate `Vec<SampleEntryLite>`.
    pub fn decode_neighbors(raw: &[u8]) -> Result<Vec<VertexId>> {
        let mut buf = raw;
        let n = u32::decode(&mut buf)? as usize;
        if buf.remaining() < n * Self::WIRE_BYTES {
            return Err(HeliosError::Codec(format!(
                "sample list truncated: {n} entries, {} bytes left",
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(VertexId::decode(&mut buf)?);
            buf.advance(Self::WIRE_BYTES - 8);
        }
        Ok(out)
    }

    /// Non-allocating variant of [`SampleEntryLite::decode_neighbors`]:
    /// validate the length header once, then yield neighbor ids straight
    /// off the raw bytes. The zero-copy serve path streams these into its
    /// response arena without ever building a `Vec<VertexId>` per parent.
    pub fn neighbors_iter(raw: &[u8]) -> Result<impl Iterator<Item = VertexId> + '_> {
        let mut buf = raw;
        let n = u32::decode(&mut buf)? as usize;
        if buf.remaining() < n * Self::WIRE_BYTES {
            return Err(HeliosError::Codec(format!(
                "sample list truncated: {n} entries, {} bytes left",
                buf.remaining()
            )));
        }
        let body = &raw[raw.len() - buf.remaining()..];
        Ok(body
            .chunks_exact(Self::WIRE_BYTES)
            .take(n)
            .map(|c| VertexId(u64::from_le_bytes(c[..8].try_into().unwrap()))))
    }
}

/// Subscription-management messages between sampling workers (§5.3).
///
/// Routed on the `control` topic by the *target* vertex, so the vertex's
/// owner processes them in order.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// `sew` now needs the one-hop samples of `vertex` under `hop`
    /// (refcounted). The owner responds by pushing a snapshot and all
    /// future changes, and transitively subscribes downstream hops.
    SubscribeSamples {
        /// One-hop query.
        hop: QueryHopId,
        /// Key vertex.
        vertex: VertexId,
        /// Subscribing serving worker.
        sew: ServingWorkerId,
    },
    /// Refcounted inverse of `SubscribeSamples`; at zero the owner tells
    /// `sew` to evict and transitively unsubscribes downstream.
    UnsubscribeSamples {
        /// One-hop query.
        hop: QueryHopId,
        /// Key vertex.
        vertex: VertexId,
        /// Unsubscribing serving worker.
        sew: ServingWorkerId,
    },
    /// `sew` needs the latest feature of `vertex` (refcounted).
    SubscribeFeature {
        /// Vertex whose feature is needed.
        vertex: VertexId,
        /// Subscribing serving worker.
        sew: ServingWorkerId,
    },
    /// Refcounted inverse of `SubscribeFeature`.
    UnsubscribeFeature {
        /// Vertex whose feature is no longer needed.
        vertex: VertexId,
        /// Unsubscribing serving worker.
        sew: ServingWorkerId,
    },
}

impl ControlMsg {
    /// The vertex whose owner must process this message (routing key).
    pub fn target_vertex(&self) -> VertexId {
        match self {
            ControlMsg::SubscribeSamples { vertex, .. }
            | ControlMsg::UnsubscribeSamples { vertex, .. }
            | ControlMsg::SubscribeFeature { vertex, .. }
            | ControlMsg::UnsubscribeFeature { vertex, .. } => *vertex,
        }
    }
}

const CTL_SUB_S: u8 = 0;
const CTL_UNSUB_S: u8 = 1;
const CTL_SUB_F: u8 = 2;
const CTL_UNSUB_F: u8 = 3;

impl Encode for ControlMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ControlMsg::SubscribeSamples { hop, vertex, sew } => {
                buf.put_u8(CTL_SUB_S);
                hop.encode(buf);
                vertex.encode(buf);
                sew.encode(buf);
            }
            ControlMsg::UnsubscribeSamples { hop, vertex, sew } => {
                buf.put_u8(CTL_UNSUB_S);
                hop.encode(buf);
                vertex.encode(buf);
                sew.encode(buf);
            }
            ControlMsg::SubscribeFeature { vertex, sew } => {
                buf.put_u8(CTL_SUB_F);
                vertex.encode(buf);
                sew.encode(buf);
            }
            ControlMsg::UnsubscribeFeature { vertex, sew } => {
                buf.put_u8(CTL_UNSUB_F);
                vertex.encode(buf);
                sew.encode(buf);
            }
        }
    }
}

use bytes::BufMut;

impl Decode for ControlMsg {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match u8::decode(buf)? {
            CTL_SUB_S => Ok(ControlMsg::SubscribeSamples {
                hop: QueryHopId::decode(buf)?,
                vertex: VertexId::decode(buf)?,
                sew: ServingWorkerId::decode(buf)?,
            }),
            CTL_UNSUB_S => Ok(ControlMsg::UnsubscribeSamples {
                hop: QueryHopId::decode(buf)?,
                vertex: VertexId::decode(buf)?,
                sew: ServingWorkerId::decode(buf)?,
            }),
            CTL_SUB_F => Ok(ControlMsg::SubscribeFeature {
                vertex: VertexId::decode(buf)?,
                sew: ServingWorkerId::decode(buf)?,
            }),
            CTL_UNSUB_F => Ok(ControlMsg::UnsubscribeFeature {
                vertex: VertexId::decode(buf)?,
                sew: ServingWorkerId::decode(buf)?,
            }),
            t => Err(HeliosError::Codec(format!("bad ControlMsg tag {t}"))),
        }
    }
}

/// Messages on a serving worker's sample queue.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleMsg {
    /// The current reservoir contents for `(hop, key)` — a full snapshot,
    /// which makes application idempotent and ordering-tolerant.
    SampleUpdate {
        /// One-hop query.
        hop: QueryHopId,
        /// Key vertex.
        key: VertexId,
        /// Current samples.
        entries: Vec<SampleEntryLite>,
        /// Enqueue stamp of the update that caused this push (for
        /// ingestion-latency measurement); 0 for snapshot pushes.
        caused_at: u64,
        /// Trace context of the causing update ([`TraceCtx::NONE`] for
        /// snapshot pushes or when tracing is off).
        trace: TraceCtx,
    },
    /// `(hop, key)` is no longer subscribed: remove it from the cache.
    Evict {
        /// One-hop query.
        hop: QueryHopId,
        /// Key vertex.
        key: VertexId,
    },
    /// Latest feature of `vertex`.
    FeatureUpdate {
        /// Vertex.
        vertex: VertexId,
        /// Feature vector.
        feature: Vec<f32>,
        /// Feature timestamp.
        ts: Timestamp,
        /// Enqueue stamp of the causing update; 0 for snapshot pushes.
        caused_at: u64,
        /// Trace context of the causing update ([`TraceCtx::NONE`] for
        /// snapshot pushes or when tracing is off).
        trace: TraceCtx,
    },
    /// `vertex`'s feature is no longer subscribed: drop it.
    EvictFeature {
        /// Vertex.
        vertex: VertexId,
    },
}

impl SampleMsg {
    /// Routing key: all messages about the same cache key travel on the
    /// same partition, preserving per-key order.
    pub fn routing_key(&self) -> u64 {
        match self {
            SampleMsg::SampleUpdate { key, .. } | SampleMsg::Evict { key, .. } => key.raw(),
            SampleMsg::FeatureUpdate { vertex, .. } | SampleMsg::EvictFeature { vertex } => {
                vertex.raw()
            }
        }
    }

    /// Trace context carried by this message ([`TraceCtx::NONE`] for
    /// evictions, which are not individually traced).
    pub fn trace(&self) -> TraceCtx {
        match self {
            SampleMsg::SampleUpdate { trace, .. } | SampleMsg::FeatureUpdate { trace, .. } => {
                *trace
            }
            SampleMsg::Evict { .. } | SampleMsg::EvictFeature { .. } => TraceCtx::NONE,
        }
    }
}

const SMP_UPDATE: u8 = 0;
const SMP_EVICT: u8 = 1;
const SMP_FEAT: u8 = 2;
const SMP_EVICT_F: u8 = 3;

impl Encode for SampleMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SampleMsg::SampleUpdate {
                hop,
                key,
                entries,
                caused_at,
                trace,
            } => {
                buf.put_u8(SMP_UPDATE);
                hop.encode(buf);
                key.encode(buf);
                entries.encode(buf);
                caused_at.encode(buf);
                trace.encode(buf);
            }
            SampleMsg::Evict { hop, key } => {
                buf.put_u8(SMP_EVICT);
                hop.encode(buf);
                key.encode(buf);
            }
            SampleMsg::FeatureUpdate {
                vertex,
                feature,
                ts,
                caused_at,
                trace,
            } => {
                buf.put_u8(SMP_FEAT);
                vertex.encode(buf);
                feature.encode(buf);
                ts.encode(buf);
                caused_at.encode(buf);
                trace.encode(buf);
            }
            SampleMsg::EvictFeature { vertex } => {
                buf.put_u8(SMP_EVICT_F);
                vertex.encode(buf);
            }
        }
    }
}

impl Decode for SampleMsg {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match u8::decode(buf)? {
            SMP_UPDATE => Ok(SampleMsg::SampleUpdate {
                hop: QueryHopId::decode(buf)?,
                key: VertexId::decode(buf)?,
                entries: Vec::<SampleEntryLite>::decode(buf)?,
                caused_at: u64::decode(buf)?,
                trace: TraceCtx::decode(buf)?,
            }),
            SMP_EVICT => Ok(SampleMsg::Evict {
                hop: QueryHopId::decode(buf)?,
                key: VertexId::decode(buf)?,
            }),
            SMP_FEAT => Ok(SampleMsg::FeatureUpdate {
                vertex: VertexId::decode(buf)?,
                feature: Vec::<f32>::decode(buf)?,
                ts: Timestamp::decode(buf)?,
                caused_at: u64::decode(buf)?,
                trace: TraceCtx::decode(buf)?,
            }),
            SMP_EVICT_F => Ok(SampleMsg::EvictFeature {
                vertex: VertexId::decode(buf)?,
            }),
            t => Err(HeliosError::Codec(format!("bad SampleMsg tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_types::{EdgeType, EdgeUpdate, VertexType};

    #[test]
    fn envelope_roundtrip_and_stamp() {
        let e = UpdateEnvelope::stamp(GraphUpdate::Edge(EdgeUpdate {
            etype: EdgeType(1),
            src_type: VertexType(0),
            src: VertexId(1),
            dst_type: VertexType(1),
            dst: VertexId(2),
            ts: Timestamp(3),
            weight: 1.0,
        }));
        assert!(e.enqueued_at > 0);
        let back = UpdateEnvelope::decode_from_slice(&e.encode_to_bytes()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn control_msgs_roundtrip() {
        let msgs = [
            ControlMsg::SubscribeSamples {
                hop: QueryHopId(1),
                vertex: VertexId(5),
                sew: ServingWorkerId(2),
            },
            ControlMsg::UnsubscribeSamples {
                hop: QueryHopId(0),
                vertex: VertexId(6),
                sew: ServingWorkerId(0),
            },
            ControlMsg::SubscribeFeature {
                vertex: VertexId(7),
                sew: ServingWorkerId(1),
            },
            ControlMsg::UnsubscribeFeature {
                vertex: VertexId(8),
                sew: ServingWorkerId(3),
            },
        ];
        for m in &msgs {
            let back = ControlMsg::decode_from_slice(&m.encode_to_bytes()).unwrap();
            assert_eq!(&back, m);
            assert_eq!(back.target_vertex(), m.target_vertex());
        }
    }

    #[test]
    fn sample_msgs_roundtrip() {
        let msgs = [
            SampleMsg::SampleUpdate {
                hop: QueryHopId(0),
                key: VertexId(1),
                entries: vec![
                    SampleEntryLite {
                        neighbor: VertexId(2),
                        ts: Timestamp(3),
                        weight: 0.5,
                    },
                    SampleEntryLite {
                        neighbor: VertexId(4),
                        ts: Timestamp(5),
                        weight: 1.5,
                    },
                ],
                caused_at: 42,
                trace: TraceCtx {
                    trace: 77,
                    parent: 5,
                },
            },
            SampleMsg::Evict {
                hop: QueryHopId(1),
                key: VertexId(9),
            },
            SampleMsg::FeatureUpdate {
                vertex: VertexId(3),
                feature: vec![1.0, -1.0],
                ts: Timestamp(7),
                caused_at: 0,
                trace: TraceCtx::NONE,
            },
            SampleMsg::EvictFeature {
                vertex: VertexId(4),
            },
        ];
        for m in &msgs {
            let back = SampleMsg::decode_from_slice(&m.encode_to_bytes()).unwrap();
            assert_eq!(&back, m);
        }
    }

    #[test]
    fn routing_key_groups_by_cache_key() {
        let a = SampleMsg::SampleUpdate {
            hop: QueryHopId(0),
            key: VertexId(10),
            entries: vec![],
            caused_at: 0,
            trace: TraceCtx::NONE,
        };
        let b = SampleMsg::Evict {
            hop: QueryHopId(1),
            key: VertexId(10),
        };
        assert_eq!(a.routing_key(), b.routing_key());
        let f = SampleMsg::EvictFeature {
            vertex: VertexId(11),
        };
        assert_eq!(f.routing_key(), 11);
    }

    #[test]
    fn decode_neighbors_matches_full_decode() {
        let entries: Vec<SampleEntryLite> = (0..17u64)
            .map(|i| SampleEntryLite {
                neighbor: VertexId(i * 3),
                ts: Timestamp(i),
                weight: i as f32 * 0.5,
            })
            .collect();
        let raw = entries.encode_to_bytes();
        let fast = SampleEntryLite::decode_neighbors(&raw).unwrap();
        let full: Vec<VertexId> = Vec::<SampleEntryLite>::decode_from_slice(&raw)
            .unwrap()
            .into_iter()
            .map(|e| e.neighbor)
            .collect();
        assert_eq!(fast, full);
        // Empty list.
        let empty = Vec::<SampleEntryLite>::new().encode_to_bytes();
        assert!(SampleEntryLite::decode_neighbors(&empty)
            .unwrap()
            .is_empty());
        // Truncated payload is rejected, not mis-read.
        assert!(SampleEntryLite::decode_neighbors(&raw[..raw.len() - 1]).is_err());
        // The non-allocating iterator agrees with both.
        let streamed: Vec<VertexId> = SampleEntryLite::neighbors_iter(&raw).unwrap().collect();
        assert_eq!(streamed, full);
        assert_eq!(SampleEntryLite::neighbors_iter(&empty).unwrap().count(), 0);
        assert!(SampleEntryLite::neighbors_iter(&raw[..raw.len() - 1]).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(ControlMsg::decode_from_slice(&[99, 0, 0]).is_err());
        assert!(SampleMsg::decode_from_slice(&[99]).is_err());
        assert!(UpdateEnvelope::decode_from_slice(&[]).is_err());
    }

    #[test]
    fn now_nanos_monotone_enough() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        assert!(a > 1_600_000_000u64 * 1_000_000_000, "clock sanity");
    }
}
