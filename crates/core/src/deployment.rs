//! Wiring a full Helios deployment (Fig. 5) in one process, with threads
//! standing in for machines.

use crate::config::HeliosConfig;
use crate::coordinator::Coordinator;
use crate::messages::UpdateEnvelope;
use crate::sampler::{topics, SamplerMetrics, SamplingWorker};
use crate::serving::ServingWorker;
use helios_graphstore::PartitionPolicy;
use helios_mq::{Broker, TopicConfig};
use helios_query::{KHopQuery, SampledSubgraph};
use helios_telemetry::{span, Registry, RegistrySnapshot, StatsReporter, TraceCtx};
use helios_types::{
    hash::route, Encode, GraphUpdate, HeliosError, PartitionId, Result, SamplingWorkerId,
    ServingWorkerId, Timestamp, VertexId,
};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stops the periodic checkpoint trigger on drop.
pub struct CheckpointGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointGuard {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A running Helios deployment: coordinator + M sampling workers + N
/// serving workers over an in-process broker.
pub struct HeliosDeployment {
    config: HeliosConfig,
    broker: Arc<Broker>,
    coordinator: Coordinator,
    sampling: Vec<SamplingWorker>,
    /// Flat `[sew0-r0, sew0-r1, …, sew1-r0, …]`: index = sew * replicas + r.
    serving: Vec<Arc<ServingWorker>>,
    updates_topic: Arc<helios_mq::Topic>,
    /// Round-robin cursor for spreading requests over replicas.
    replica_rr: std::sync::atomic::AtomicU64,
    /// Per-deployment telemetry registry: every worker's counters,
    /// gauges and latency histograms, queryable by name.
    telemetry: Arc<Registry>,
    /// Periodic pipeline-lag monitor; `None` when disabled by config.
    reporter: Option<StatsReporter>,
}

impl HeliosDeployment {
    /// Start a deployment for one registered sampling query.
    pub fn start(config: HeliosConfig, query: KHopQuery) -> Result<HeliosDeployment> {
        Self::start_inner(config, query, None)
    }

    /// Start and restore sampling-worker state from a checkpoint
    /// directory written by [`HeliosDeployment::checkpoint`]. The worker
    /// counts and query must match the checkpointing deployment.
    pub fn start_from_checkpoint(
        config: HeliosConfig,
        query: KHopQuery,
        dir: &Path,
    ) -> Result<HeliosDeployment> {
        Self::start_inner(config, query, Some(dir))
    }

    fn start_inner(
        config: HeliosConfig,
        query: KHopQuery,
        restore_dir: Option<&Path>,
    ) -> Result<HeliosDeployment> {
        config.validate()?;
        let coordinator = Coordinator::new(query.clone());
        let broker = Broker::new();
        let m = config.sampling_workers as u32;
        let n = config.serving_workers as u32;

        let updates_topic = broker.create_topic(topics::UPDATES, TopicConfig::in_memory(m))?;
        broker.create_topic(topics::CONTROL, TopicConfig::in_memory(m))?;
        for s in 0..n {
            broker.create_topic(
                &topics::samples(s),
                TopicConfig::in_memory(config.sample_queue_partitions),
            )?;
        }

        // Serving workers first so sample topics have consumers early.
        let telemetry = Arc::new(Registry::new());
        let replicas = config.serving_replicas as u32;
        let mut serving = Vec::with_capacity((n * replicas) as usize);
        for s in 0..n {
            for r in 0..replicas {
                let beacon = coordinator.register_worker(&format!("sew{s}-r{r}"));
                serving.push(ServingWorker::start(
                    ServingWorkerId(s),
                    r,
                    &config,
                    &query,
                    &broker,
                    beacon,
                    &telemetry,
                )?);
            }
        }

        let mut sampling = Vec::with_capacity(m as usize);
        for w in 0..m {
            let beacon = coordinator.register_worker(&format!("saw{w}"));
            let worker = SamplingWorker::start(
                SamplingWorkerId(w),
                &config,
                &query,
                &broker,
                beacon,
                &telemetry,
            )?;
            if let Some(dir) = restore_dir {
                worker.restore(dir)?;
            }
            sampling.push(worker);
        }

        let reporter = config.stats_interval.map(|interval| {
            Self::start_stats_reporter(interval, &telemetry, &broker, &sampling, &serving)
        });

        Ok(HeliosDeployment {
            config,
            broker,
            coordinator,
            sampling,
            serving,
            updates_topic,
            replica_rr: std::sync::atomic::AtomicU64::new(0),
            telemetry,
            reporter,
        })
    }

    /// Spawn the periodic pipeline-lag monitor: every `interval` it
    /// refreshes `mq.lag{group,topic}` (consumer lag per group),
    /// `actor.mailbox_depth{worker}` (sampling-shard backlog) and
    /// `kvstore.*{worker,replica,table}` (cache memtable/SST sizes) in
    /// the telemetry registry, so a snapshot at any moment shows where
    /// the update pipeline is backed up.
    fn start_stats_reporter(
        interval: Duration,
        telemetry: &Arc<Registry>,
        broker: &Arc<Broker>,
        sampling: &[SamplingWorker],
        serving: &[Arc<ServingWorker>],
    ) -> StatsReporter {
        let registry = Arc::clone(telemetry);
        let broker = Arc::clone(broker);
        let probes: Vec<(String, Box<dyn Fn() -> usize + Send + Sync>)> = sampling
            .iter()
            .map(|w| (w.id().0.to_string(), Box::new(w.backlog_probe()) as _))
            .collect();
        let serving: Vec<Arc<ServingWorker>> = serving.iter().map(Arc::clone).collect();
        StatsReporter::start("helios-stats", interval, move || {
            for e in broker.lag_report() {
                registry
                    .gauge("mq.lag", &[("group", &e.group), ("topic", &e.topic)])
                    .set(e.lag as i64);
            }
            for (worker, probe) in &probes {
                registry
                    .gauge("actor.mailbox_depth", &[("worker", worker)])
                    .set(probe() as i64);
            }
            for w in &serving {
                let sw = w.id().0.to_string();
                let r = w.replica().to_string();
                let (s, f) = w.cache_stats();
                for (table, st) in [("samples", s), ("features", f)] {
                    let labels: &[(&str, &str)] =
                        &[("worker", &sw), ("replica", &r), ("table", table)];
                    registry
                        .gauge("kvstore.mem_bytes", labels)
                        .set(st.mem_bytes as i64);
                    registry
                        .gauge("kvstore.mem_entries", labels)
                        .set(st.mem_entries as i64);
                    registry
                        .gauge("kvstore.sst_files", labels)
                        .set(st.sst_files as i64);
                    registry
                        .gauge("kvstore.disk_bytes", labels)
                        .set(st.disk_bytes as i64);
                    registry
                        .gauge("kvstore.flushes", labels)
                        .set(st.flushes as i64);
                    registry
                        .gauge("kvstore.compactions", labels)
                        .set(st.compactions as i64);
                }
            }
        })
    }

    /// Deployment configuration.
    pub fn config(&self) -> &HeliosConfig {
        &self.config
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The broker (tests/benches may attach extra consumers).
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The deployment's telemetry registry: all worker counters, gauges
    /// and latency histograms, queryable by instrument name.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// A merged snapshot of every instrument in the deployment.
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        self.telemetry.snapshot()
    }

    /// Serving worker handles.
    pub fn serving_workers(&self) -> &[Arc<ServingWorker>] {
        &self.serving
    }

    /// Metrics of each sampling worker.
    pub fn sampler_metrics(&self) -> Vec<&Arc<SamplerMetrics>> {
        self.sampling.iter().map(SamplingWorker::metrics).collect()
    }

    /// Total updates processed across sampling workers.
    pub fn updates_processed(&self) -> u64 {
        self.sampling.iter().map(|w| w.metrics().processed()).sum()
    }

    /// Ingest one graph update: expand per the edge partition policy and
    /// enqueue to the partitioned update stream (front-end of Fig. 5).
    pub fn ingest(&self, update: &GraphUpdate) -> Result<()> {
        let m = self.config.sampling_workers;
        match update {
            GraphUpdate::Vertex(_) => {
                self.produce_update(update.clone(), update.routing_vertex(), m)?;
            }
            GraphUpdate::Edge(e) => {
                for (rv, copy) in self.config.policy.copies(e) {
                    self.produce_update(GraphUpdate::Edge(copy), rv, m)?;
                }
            }
        }
        Ok(())
    }

    /// Ingest a batch.
    pub fn ingest_batch(&self, updates: &[GraphUpdate]) -> Result<()> {
        for u in updates {
            self.ingest(u)?;
        }
        Ok(())
    }

    fn produce_update(&self, update: GraphUpdate, rv: VertexId, m: usize) -> Result<()> {
        let env = UpdateEnvelope::stamp(update);
        let partition = PartitionId(route(rv.raw(), m) as u32);
        self.updates_topic
            .produce_to(partition, rv.raw(), env.encode_to_bytes())?;
        Ok(())
    }

    /// A serving worker responsible for `seed`: the owning logical worker
    /// is fixed by the routing hash; among its replicas, requests are
    /// spread round-robin.
    pub fn serving_worker_for(&self, seed: VertexId) -> &Arc<ServingWorker> {
        let replicas = self.config.serving_replicas;
        let n = self.serving.len() / replicas;
        let sew = route(seed.raw(), n);
        let r = if replicas == 1 {
            0
        } else {
            (self
                .replica_rr
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                % replicas as u64) as usize
        };
        &self.serving[sew * replicas + r]
    }

    /// All replicas of logical serving worker `sew`.
    pub fn serving_replicas_of(&self, sew: u32) -> &[Arc<ServingWorker>] {
        let replicas = self.config.serving_replicas;
        let base = sew as usize * replicas;
        &self.serving[base..base + replicas]
    }

    /// Serve a sampling query: route to the owning serving worker and
    /// assemble the K-hop result from its local cache (executed on the
    /// caller's thread). With tracing enabled, the request becomes a
    /// `router.serve` root span with the worker's spans nested under it.
    pub fn serve(&self, seed: VertexId) -> Result<SampledSubgraph> {
        let router_span = span("router.serve", TraceCtx::root());
        self.serving_worker_for(seed)
            .serve_traced(seed, router_span.ctx())
    }

    /// Serve through the owning worker's bounded serving-thread pool
    /// (§4.3): queueing delay becomes visible under load, which is what
    /// the scalability experiments measure.
    pub fn serve_queued(&self, seed: VertexId) -> Result<SampledSubgraph> {
        let router_span = span("router.serve", TraceCtx::root());
        self.serving_worker_for(seed)
            .serve_queued_traced(seed, router_span.ctx())
    }

    /// Trigger TTL expiry everywhere (paper: periodic stale-data removal).
    pub fn expire_before(&self, horizon: Timestamp) -> Result<()> {
        for w in &self.sampling {
            w.expire_before(horizon);
        }
        for s in &self.serving {
            s.expire_before(horizon)?;
        }
        Ok(())
    }

    /// Checkpoint sampling-worker state into `dir` (coordinator-triggered
    /// fault tolerance, §4.1). Quiesce first for a clean snapshot.
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        for w in &self.sampling {
            w.checkpoint(dir)?;
        }
        Ok(())
    }

    /// Spawn the coordinator's periodic checkpoint trigger (§4.1): every
    /// `interval`, sampling-worker state is snapshotted into `dir`. The
    /// returned guard stops the trigger when dropped.
    pub fn start_periodic_checkpoints(
        self: &Arc<Self>,
        dir: &Path,
        interval: Duration,
    ) -> CheckpointGuard {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let weak = Arc::downgrade(self);
        let dir = dir.to_path_buf();
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("coordinator-checkpoint".into())
            .spawn(move || {
                'outer: while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    // Sleep in small steps so dropping the guard is prompt.
                    let wake = Instant::now() + interval;
                    while Instant::now() < wake {
                        if stop2.load(std::sync::atomic::Ordering::Relaxed) {
                            break 'outer;
                        }
                        std::thread::sleep(Duration::from_millis(20).min(interval));
                    }
                    let Some(deployment) = weak.upgrade() else {
                        break;
                    };
                    let _ = deployment.checkpoint(&dir);
                }
            })
            .expect("spawn checkpoint trigger");
        CheckpointGuard {
            stop,
            handle: Some(handle),
        }
    }

    /// Block until the pipeline drains: all produced updates dispatched
    /// and processed, control traffic settled, and serving caches caught
    /// up with their sample queues. Returns `false` on timeout.
    ///
    /// Only meaningful while no new updates are being ingested (tests and
    /// paired experiment phases); live deployments never quiesce — they
    /// are eventually consistent (§6).
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable_rounds = 0;
        let mut last_fingerprint = (0u64, 0u64, 0u64, 0u64);
        while Instant::now() < deadline {
            let updates_end = self.updates_topic.total_end_offset();
            let control_end = self
                .broker
                .topic(topics::CONTROL)
                .map(|t| t.total_end_offset())
                .unwrap_or(0);
            let n_logical = (self.serving.len() / self.config.serving_replicas) as u32;
            let samples_end: u64 = (0..n_logical)
                .map(|s| {
                    self.broker
                        .topic(&topics::samples(s))
                        .map(|t| t.total_end_offset())
                        .unwrap_or(0)
                })
                .sum();

            let mut updates_done = 0u64;
            let mut control_done = 0u64;
            let mut backlog = 0usize;
            for w in &self.sampling {
                let m = w.metrics();
                updates_done += m.updates_processed.get();
                control_done += m.control_processed.get();
                backlog += w.backlog();
            }
            // Malformed records are counted (as decode errors), never
            // applied — both tallies drain the queue.
            let applied: u64 = self
                .serving
                .iter()
                .map(|s| s.applied() + s.decode_errors())
                .sum();
            // Every replica consumes the full queue of its logical worker.
            let samples_expected = samples_end * self.config.serving_replicas as u64;

            let drained = updates_done == updates_end
                && control_done == control_end
                && applied == samples_expected
                && backlog == 0;
            let fingerprint = (updates_end, control_end, samples_expected, applied);
            if drained && fingerprint == last_fingerprint {
                stable_rounds += 1;
                // Two consecutive stable observations: no in-flight message
                // can still generate work.
                if stable_rounds >= 2 {
                    return true;
                }
            } else {
                stable_rounds = 0;
            }
            last_fingerprint = fingerprint;
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Total bytes held by all serving caches (Fig. 16 numerator).
    pub fn total_cache_bytes(&self) -> u64 {
        self.serving.iter().map(|s| s.cache_bytes()).sum()
    }

    /// Stop all workers. Serving caches stay readable until drop.
    pub fn shutdown(mut self) {
        // Stop the lag monitor before the workers it observes.
        drop(self.reporter.take());
        for w in self.sampling.drain(..) {
            w.shutdown();
        }
        for s in &self.serving {
            s.shutdown();
        }
    }

    /// The edge partition policy in effect.
    pub fn policy(&self) -> PartitionPolicy {
        self.config.policy
    }

    /// Convenience for tests: ingest, then quiesce.
    pub fn ingest_and_settle(&self, updates: &[GraphUpdate], timeout: Duration) -> Result<()> {
        self.ingest_batch(updates)?;
        if !self.quiesce(timeout) {
            return Err(HeliosError::Timeout("pipeline did not quiesce".into()));
        }
        Ok(())
    }
}
