//! Wiring a full Helios deployment (Fig. 5) in one process, with threads
//! standing in for machines.

use crate::config::{FreshnessConfig, HeliosConfig};
use crate::coordinator::Coordinator;
use crate::messages::UpdateEnvelope;
use crate::sampler::{topics, SamplerMetrics, SamplingWorker};
use crate::serving::ServingWorker;
use helios_graphstore::PartitionPolicy;
use helios_membership::{RouteTable, Router};
use helios_mq::{Broker, TopicConfig};
use helios_query::{KHopQuery, SampledSubgraph};
use helios_metrics::Histogram;
use helios_telemetry::{
    span, DynRoutes, EventKind, FlightRecorder, HealthReport, MemAccountant, OpsServer, OpsState,
    Profiler, Registry, RegistrySnapshot, RetainedTraces, SloTracker, StatsReporter, TraceCtx,
};
use helios_types::{
    hash::route, Decode, Encode, GraphUpdate, HeliosError, MemGauge, PartitionId, Result,
    SamplingWorkerId, ServingWorkerId, Timestamp, VertexId, VertexUpdate,
};
use parking_lot::RwLock;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One sampling worker's contribution to the drain equation: its
/// counters plus a closure probing its shard-mailbox backlog.
type DrainSource = (Arc<SamplerMetrics>, Box<dyn Fn() -> usize + Send + Sync>);

/// Stops the freshness-probe thread on drop.
struct FreshnessProber {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for FreshnessProber {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Stops the periodic checkpoint trigger on drop.
pub struct CheckpointGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointGuard {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The live serving fleet. Replaced wholesale (an `Arc` swap behind the
/// deployment's lock) when a rescale commits, so every reader — serve
/// paths, probes, the stats reporter — grabs a consistent snapshot and
/// never observes a half-extended set.
pub(crate) struct ServingSet {
    /// Replicas per logical worker.
    pub(crate) replicas: usize,
    /// Flat `[sew0-r0, sew0-r1, …, sew1-r0, …]`: index = sew * replicas + r.
    pub(crate) workers: Vec<Arc<ServingWorker>>,
}

impl ServingSet {
    /// Number of logical serving workers.
    pub(crate) fn logical(&self) -> usize {
        self.workers.len() / self.replicas
    }

    /// All replicas of logical worker `sew`.
    pub(crate) fn replicas_of(&self, sew: u32) -> &[Arc<ServingWorker>] {
        let base = sew as usize * self.replicas;
        &self.workers[base..base + self.replicas]
    }
}

/// Shared handle to the live serving set, cloned into monitor threads.
type SharedServing = Arc<RwLock<Arc<ServingSet>>>;

/// Topology a checkpoint was taken under, written alongside the shard
/// files so a restore into a different deployment shape is detected
/// (satellite of the elastic-membership work) instead of silently
/// mis-routing restored subscriptions.
struct CheckpointManifest {
    sampling_workers: u32,
    sampling_threads: u32,
    serving_workers: u32,
    table: RouteTable,
}

impl CheckpointManifest {
    const FILE: &'static str = "manifest.ckpt";
}

impl Encode for CheckpointManifest {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.sampling_workers.encode(buf);
        self.sampling_threads.encode(buf);
        self.serving_workers.encode(buf);
        self.table.encode(buf);
    }
}

impl Decode for CheckpointManifest {
    fn decode(buf: &mut impl bytes::Buf) -> Result<Self> {
        Ok(CheckpointManifest {
            sampling_workers: u32::decode(buf)?,
            sampling_threads: u32::decode(buf)?,
            serving_workers: u32::decode(buf)?,
            table: RouteTable::decode(buf)?,
        })
    }
}

/// A running Helios deployment: coordinator + M sampling workers + N
/// serving workers over an in-process broker.
pub struct HeliosDeployment {
    pub(crate) config: HeliosConfig,
    pub(crate) broker: Arc<Broker>,
    pub(crate) coordinator: Coordinator,
    pub(crate) sampling: Vec<SamplingWorker>,
    /// The live serving fleet; swapped at rescale commit.
    pub(crate) serving: SharedServing,
    /// Epoch-versioned seed→worker routing, shared with every sampling
    /// worker. The front-end routes serves through it; a rescale installs
    /// the committed table here after the handoff watermark.
    pub(crate) router: Arc<Router>,
    updates_topic: Arc<helios_mq::Topic>,
    /// Round-robin cursor for spreading requests over replicas.
    replica_rr: std::sync::atomic::AtomicU64,
    /// Per-deployment telemetry registry: every worker's counters,
    /// gauges and latency histograms, queryable by name.
    pub(crate) telemetry: Arc<Registry>,
    /// Periodic pipeline-lag monitor; `None` when disabled by config.
    reporter: Option<StatsReporter>,
    /// Always-on ring of recent pipeline events, dumped on anomalies.
    pub(crate) recorder: Arc<FlightRecorder>,
    /// Tail-sampled trace store behind `/traces`: keeps slow, errored and
    /// timed-out traces, evicting boring ones first.
    retained: Arc<RetainedTraces>,
    /// Front-end routing time (owner lookup + replica pick), the serve
    /// path's "route" stage — an add-on to `serving.latency`, which the
    /// per-stage histograms sum to.
    route_latency: Arc<Histogram>,
    /// End-to-end freshness SLO fed by the prober (empty when probing is
    /// disabled; burn rates read 0 with no samples).
    pub(crate) slo: Arc<SloTracker>,
    /// Serializes rescales: one `scale_to` (manual, ops-triggered or
    /// autoscaler-driven) at a time.
    pub(crate) rescale_lock: parking_lot::Mutex<()>,
    /// Lowest epoch the next rescale attempt may use; advanced past every
    /// attempt (committed *or* abandoned), so a retry never reuses an
    /// abandoned attempt's epoch and its watermarks can only be satisfied
    /// by the retry's own scans. Only touched under `rescale_lock`.
    pub(crate) next_rescale_epoch: std::sync::atomic::AtomicU64,
    /// Post-construction ops endpoints (`/scale`); live even when the ops
    /// server is disabled so registration is always safe.
    pub(crate) dyn_routes: Arc<DynRoutes>,
    /// Marker-injection thread; `None` when freshness probing is off.
    prober: Option<FreshnessProber>,
    /// Embedded ops HTTP server; `None` unless `config.ops_addr` is set.
    ops: Option<OpsServer>,
    /// Deployment-wide memory ledger: every component's byte gauge,
    /// exported as `mem.bytes{component,…}` each stats tick and judged
    /// against `config.memory_budget_bytes`.
    pub(crate) accountant: Arc<MemAccountant>,
    /// Shared gauge for all topics' retained log bytes; rescale-created
    /// sample topics charge into the same cell.
    pub(crate) mq_log_gauge: MemGauge,
}

/// Register one serving worker's memory gauges with the accountant. The
/// per-replica block-cache/SST-index cells are shared between the
/// worker's two kvstores; `adopt` dedups by cell so calling this once per
/// worker is exact. Used at startup and by the rescale scale-out path.
pub(crate) fn adopt_serving_mem(accountant: &MemAccountant, w: &ServingWorker) {
    let sw = w.id().0.to_string();
    let r = w.replica().to_string();
    let labels: &[(&str, &str)] = &[("worker", &sw), ("replica", &r)];
    let g = w.mem_gauges();
    accountant.adopt("sample_table", labels, g.sample_table.clone());
    accountant.adopt("feature_table", labels, g.feature_table.clone());
    accountant.adopt("block_cache", labels, g.block_cache.clone());
    accountant.adopt("sst_index", labels, g.sst_index.clone());
    accountant.adopt("serve_scratch", labels, g.serve_scratch.clone());
}

impl HeliosDeployment {
    /// Start a deployment for one registered sampling query.
    pub fn start(config: HeliosConfig, query: KHopQuery) -> Result<HeliosDeployment> {
        Self::start_inner(config, query, None)
    }

    /// Start and restore sampling-worker state from a checkpoint
    /// directory written by [`HeliosDeployment::checkpoint`]. The worker
    /// counts and query must match the checkpointing deployment.
    pub fn start_from_checkpoint(
        config: HeliosConfig,
        query: KHopQuery,
        dir: &Path,
    ) -> Result<HeliosDeployment> {
        Self::start_inner(config, query, Some(dir))
    }

    fn start_inner(
        config: HeliosConfig,
        query: KHopQuery,
        restore_dir: Option<&Path>,
    ) -> Result<HeliosDeployment> {
        config.validate()?;
        let coordinator = Coordinator::new(query.clone());
        let broker = Broker::new();
        let m = config.sampling_workers as u32;
        let n = config.serving_workers as u32;

        // All topics charge their retained log bytes into one shared
        // gauge, adopted by the accountant as `mem.bytes{component=mq_log}`.
        let mq_log_gauge = MemGauge::new();
        let mq_topic = |partitions: u32| TopicConfig {
            partitions,
            mem: mq_log_gauge.clone(),
            ..Default::default()
        };
        let updates_topic = broker.create_topic(topics::UPDATES, mq_topic(m))?;
        broker.create_topic(topics::CONTROL, mq_topic(m))?;
        broker.create_topic(topics::MEMBERSHIP, mq_topic(m))?;
        for s in 0..n {
            broker.create_topic(&topics::samples(s), mq_topic(config.sample_queue_partitions))?;
        }

        // Epoch-0 routing table: deterministic, so the front-end and every
        // sampling worker agree on it without a broadcast.
        let router = Arc::new(Router::new(RouteTable::initial(
            config.serving_workers,
            config.route_slots as usize,
        )));

        // Serving workers first so sample topics have consumers early.
        let telemetry = Arc::new(Registry::new());

        // Memory ledger: adopt every component gauge as it is created, so
        // one `export` tick publishes the whole deployment's footprint.
        let accountant = Arc::new(MemAccountant::new(
            Arc::clone(&telemetry),
            config.memory_budget_bytes,
        ));
        accountant.adopt("mq_log", &[], mq_log_gauge.clone());

        // Tracing control. The HELIOS_TRACE_SAMPLE env override wins over
        // the config rate *and* force-enables tracing, so a deployed
        // binary can be head-sampled without a code change; otherwise the
        // config rate applies whenever tracing is switched on.
        match helios_telemetry::trace_sample_env() {
            Some(rate) => {
                helios_telemetry::set_tracing(true);
                helios_telemetry::set_trace_sample_rate(rate);
            }
            None => helios_telemetry::set_trace_sample_rate(config.trace_sample),
        }
        let retained = Arc::new(RetainedTraces::new(
            config.retained_traces,
            config
                .trace_slow_threshold
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64,
        ));
        accountant.adopt("trace_retention", &[], retained.mem_gauge());
        let route_latency = telemetry.histogram("router.route_latency", &[]);

        let recorder = FlightRecorder::new(config.flight_recorder_capacity);
        recorder.set_dump_dir(config.flight_dump_dir.clone());
        let slo = Arc::new(SloTracker::new(
            config
                .freshness
                .as_ref()
                .map(|f| f.slo.clone())
                .unwrap_or_default(),
        ));
        let replicas = config.serving_replicas as u32;
        let mut workers = Vec::with_capacity((n * replicas) as usize);
        for s in 0..n {
            for r in 0..replicas {
                let beacon = coordinator.register_worker(&format!("sew{s}-r{r}"));
                let worker = ServingWorker::start(
                    ServingWorkerId(s),
                    r,
                    &config,
                    &query,
                    &broker,
                    beacon,
                    &telemetry,
                    &recorder,
                )?;
                adopt_serving_mem(&accountant, &worker);
                workers.push(worker);
            }
        }
        let serving: SharedServing = Arc::new(RwLock::new(Arc::new(ServingSet {
            replicas: replicas as usize,
            workers,
        })));

        let mut sampling = Vec::with_capacity(m as usize);
        for w in 0..m {
            let beacon = coordinator.register_worker(&format!("saw{w}"));
            let worker = SamplingWorker::start(
                SamplingWorkerId(w),
                &config,
                &query,
                &broker,
                Arc::clone(&router),
                beacon,
                &telemetry,
                &recorder,
            )?;
            if let Some(dir) = restore_dir {
                worker.restore(dir)?;
            }
            sampling.push(worker);
        }

        // A checkpoint taken under a different topology OR a different
        // routing table: the restored subscription tables are charged to
        // the checkpoint-era owners, so raise a flight event and re-derive
        // every subscription from reservoir contents under the fresh
        // epoch-0 table (satellite of the elastic-membership work; no
        // traffic has flowed yet). The table comparison — not just worker
        // counts — catches a checkpoint taken after a rescale (epoch > 0,
        // rebalanced assignment, or different `route_slots`) that happens
        // to land on the same logical worker count this deployment starts
        // with: its slot→worker assignment still differs from the
        // deterministic epoch-0 table the router boots from.
        if let Some(dir) = restore_dir {
            match std::fs::read(dir.join(CheckpointManifest::FILE)) {
                Ok(raw) => {
                    let manifest = CheckpointManifest::decode_from_slice(&raw)?;
                    let mismatch = manifest.table != *router.table()
                        || manifest.sampling_workers as usize != config.sampling_workers
                        || manifest.sampling_threads as usize != config.sampling_threads;
                    if mismatch {
                        recorder.record(
                            EventKind::TopologyMismatch,
                            u32::MAX,
                            u64::from(manifest.serving_workers),
                            config.serving_workers as u64,
                            u64::from(manifest.sampling_workers),
                        );
                        for w in &sampling {
                            w.rebuild_subscriptions()?;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }

        let reporter = config.stats_interval.map(|interval| {
            Self::start_stats_reporter(
                interval,
                &config,
                &telemetry,
                &broker,
                &sampling,
                &serving,
                &router,
                &coordinator,
                &recorder,
                &slo,
                &retained,
                &accountant,
            )
        });

        let prober = config.freshness.clone().map(|fc| {
            Self::start_prober(
                fc,
                &query,
                &config,
                &updates_topic,
                &serving,
                &router,
                &telemetry,
                &slo,
                &recorder,
                &retained,
            )
        });

        let dyn_routes = DynRoutes::new();
        Self::register_membership_route(&dyn_routes, &router, &serving);

        let ops = match &config.ops_addr {
            Some(addr) => Some(
                Self::start_ops_server(
                    addr,
                    &config,
                    &telemetry,
                    &broker,
                    &sampling,
                    &serving,
                    &coordinator,
                    &recorder,
                    &dyn_routes,
                    &retained,
                    &accountant,
                )
                .map_err(HeliosError::Io)?,
            ),
            None => None,
        };

        Ok(HeliosDeployment {
            config,
            broker,
            coordinator,
            sampling,
            serving,
            router,
            updates_topic,
            replica_rr: std::sync::atomic::AtomicU64::new(0),
            telemetry,
            reporter,
            recorder,
            retained,
            route_latency,
            slo,
            rescale_lock: parking_lot::Mutex::new(()),
            next_rescale_epoch: std::sync::atomic::AtomicU64::new(1),
            dyn_routes,
            prober,
            ops,
            accountant,
            mq_log_gauge,
        })
    }

    /// `/membership` on the ops server: the live routing table (epoch,
    /// worker count, slot assignment) plus the serving-set shape, as JSON.
    fn register_membership_route(
        routes: &Arc<DynRoutes>,
        router: &Arc<Router>,
        serving: &SharedServing,
    ) {
        let router = Arc::clone(router);
        let serving = Arc::clone(serving);
        routes.register("/membership", move |_method, _query| {
            let table = router.table();
            let set = Arc::clone(&serving.read());
            let assignment: Vec<String> =
                table.assignment().iter().map(|w| w.to_string()).collect();
            let body = format!(
                "{{\"epoch\":{},\"workers\":{},\"replicas\":{},\"slots\":{},\"assignment\":[{}]}}\n",
                table.epoch(),
                table.workers(),
                set.replicas,
                table.slots(),
                assignment.join(",")
            );
            (200, "application/json".to_string(), body)
        });
    }

    /// Spawn the freshness prober: every `interval` it injects a marker
    /// vertex update at the front of the pipeline (a seed-typed vertex
    /// whose feature encodes the probe sequence number) and then polls
    /// the owning serving worker until the marker's feature is visible
    /// from its cache. The measured update-to-visible latency feeds the
    /// `e2e.freshness` histogram and the deployment's SLO tracker.
    #[allow(clippy::too_many_arguments)]
    fn start_prober(
        fc: FreshnessConfig,
        query: &KHopQuery,
        config: &HeliosConfig,
        updates_topic: &Arc<helios_mq::Topic>,
        serving: &SharedServing,
        router: &Arc<Router>,
        telemetry: &Arc<Registry>,
        slo: &Arc<SloTracker>,
        recorder: &Arc<FlightRecorder>,
        retained: &Arc<RetainedTraces>,
    ) -> FreshnessProber {
        let seed_type = query.seed_type();
        let m = config.sampling_workers;
        let marker = VertexId(fc.marker_vertex);
        // Markers route like any seed. Resolved per probe (not once at
        // startup): a rescale can move the marker's slot, and the probe
        // must follow it to the new owner or it would measure a drained
        // cache forever.
        let serving = Arc::clone(serving);
        let router = Arc::clone(router);
        let updates_topic = Arc::clone(updates_topic);
        let freshness = telemetry.histogram("e2e.freshness", &[]);
        let timeouts = telemetry.counter("e2e.freshness_timeouts", &[]);
        let probes = telemetry.counter("e2e.freshness_probes", &[]);
        let slo = Arc::clone(slo);
        let recorder = Arc::clone(recorder);
        let retained = Arc::clone(retained);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("helios-freshness-probe".into())
            .spawn(move || {
                let mut seq: u64 = 0;
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    seq += 1;
                    // Each probe is its own (sampled) trace, so a timed-out
                    // probe's marker-to-visible journey is retained and
                    // inspectable via `/traces` next to slow serves.
                    let probe_span = span("probe.freshness", TraceCtx::root());
                    let probe_trace = probe_span.ctx().trace;
                    // Feature value = sequence number, so visibility of
                    // *this* probe (not an older one) is checkable. f32
                    // is exact below 2^24 — far beyond any probe count.
                    let expect = seq as f32;
                    let update = GraphUpdate::Vertex(VertexUpdate {
                        vtype: seed_type,
                        id: marker,
                        feature: vec![expect],
                        ts: Timestamp(seq),
                    });
                    let env = UpdateEnvelope::stamp(update);
                    let partition = PartitionId(route(marker.raw(), m) as u32);
                    let injected = Instant::now();
                    if updates_topic
                        .produce_to(partition, marker.raw(), env.encode_to_bytes())
                        .is_err()
                    {
                        break; // broker shutting down
                    }
                    probes.incr();
                    let deadline = injected + fc.probe_timeout;
                    let mut visible = false;
                    while Instant::now() < deadline
                        && !stop2.load(std::sync::atomic::Ordering::Relaxed)
                    {
                        // Re-resolve the owner every poll: a mid-probe
                        // rescale commit repoints the marker and the new
                        // owner's cache is where visibility shows up.
                        let sew = router.owner_of(marker).0 as usize;
                        let set = Arc::clone(&serving.read());
                        let seen = set
                            .workers
                            .get(sew * set.replicas)
                            .and_then(|t| t.serve(marker).ok())
                            .and_then(|g| g.features.get(&marker).and_then(|f| f.first().copied()));
                        if seen == Some(expect) {
                            visible = true;
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    let elapsed = injected.elapsed();
                    let latency_ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
                    if visible {
                        freshness.record(latency_ns);
                        slo.record(latency_ns);
                        recorder.record(EventKind::FreshnessProbe, u32::MAX, seq, latency_ns, 0);
                    } else if !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                        timeouts.incr();
                        // Timeouts burn the SLO budget at the timeout bound.
                        slo.record(latency_ns.max(1));
                        recorder.record(EventKind::FreshnessProbe, u32::MAX, seq, 0, 1);
                        // A timed-out probe is exactly the trace an operator
                        // wants kept: flag it so the sweep retains it even
                        // though its root span may not cross the slow bar.
                        retained.flag(probe_trace, "timeout");
                    }
                    // Close the probe span before idling — the span measures
                    // inject-to-visible (or -timeout), not the interval sleep.
                    drop(probe_span);
                    let wake = injected + fc.interval;
                    while Instant::now() < wake && !stop2.load(std::sync::atomic::Ordering::Relaxed)
                    {
                        std::thread::sleep(Duration::from_millis(1).min(fc.interval));
                    }
                }
            })
            .expect("spawn freshness prober");
        FreshnessProber {
            stop,
            handle: Some(handle),
        }
    }

    /// Bind the embedded ops HTTP server: `/metrics` (Prometheus text),
    /// `/healthz` (component probes below), `/vars`, `/trace/start|stop`
    /// and `/recorder`. Health probes: per-(group, topic) mq consumer lag
    /// bounded, total sampling-shard mailbox backlog bounded, kvstore
    /// memtables within flush bounds, and the pipeline drain deficit
    /// (produced − consumed over all stages, the quiesce equation)
    /// bounded.
    #[allow(clippy::too_many_arguments)]
    fn start_ops_server(
        addr: &str,
        config: &HeliosConfig,
        telemetry: &Arc<Registry>,
        broker: &Arc<Broker>,
        sampling: &[SamplingWorker],
        serving: &SharedServing,
        coordinator: &Coordinator,
        recorder: &Arc<FlightRecorder>,
        dyn_routes: &Arc<DynRoutes>,
        retained: &Arc<RetainedTraces>,
        accountant: &Arc<MemAccountant>,
    ) -> std::io::Result<OpsServer> {
        let registry = Arc::clone(telemetry);
        let mut state = OpsState::new(move || registry.snapshot())
            .recorder(Arc::clone(recorder))
            .retained_traces(Arc::clone(retained))
            .routes(Arc::clone(dyn_routes))
            .profiler(Arc::new(Profiler::new(telemetry)));

        // Memory-pressure probe: `/healthz` flips 503 only after two
        // consecutive over-budget export ticks ("sustained"), so one
        // transient spike between stats ticks doesn't flap the endpoint.
        // With no budget configured the probe reports bytes but never
        // degrades.
        let mem_acct = Arc::clone(accountant);
        state = state.probe(move || {
            let total = mem_acct.total_bytes().max(0);
            match mem_acct.budget_bytes() {
                Some(budget) if mem_acct.sustained_over_budget(2) => HealthReport::new(
                    "memory",
                    false,
                    format!("{total} bytes over budget {budget} (sustained)"),
                ),
                Some(budget) => {
                    HealthReport::new("memory", true, format!("{total} bytes (budget {budget})"))
                }
                None => HealthReport::new("memory", true, format!("{total} bytes (no budget)")),
            }
        });

        // Membership probe: a registered worker that stopped heartbeating
        // is dead capacity — degrade /healthz so the operator (or an
        // orchestrator watching it) reacts before queries hit the gap.
        if let Some(timeout) = config.health_worker_timeout {
            let liveness = coordinator.liveness();
            state = state.probe(move || {
                let dead = liveness.dead_workers(timeout);
                if dead.is_empty() {
                    HealthReport::new("membership", true, "all workers heartbeating")
                } else {
                    HealthReport::new(
                        "membership",
                        false,
                        format!("dead workers: {}", dead.join(", ")),
                    )
                }
            });
        }

        let max_lag = config.health_max_lag;
        let lag_broker = Arc::clone(broker);
        state = state.probe(move || {
            let report = lag_broker.lag_report();
            let worst = report.iter().max_by_key(|e| e.lag);
            match worst {
                Some(e) if e.lag > max_lag => HealthReport::new(
                    "mq",
                    false,
                    format!("lag {} on {}/{} (bound {max_lag})", e.lag, e.group, e.topic),
                ),
                Some(e) => {
                    HealthReport::new("mq", true, format!("max lag {} (bound {max_lag})", e.lag))
                }
                None => HealthReport::new("mq", true, "no consumers"),
            }
        });

        let max_backlog = config.health_max_backlog;
        let backlogs: Vec<_> = sampling.iter().map(|w| w.backlog_probe()).collect();
        state = state.probe(move || {
            let total: usize = backlogs.iter().map(|p| p()).sum();
            HealthReport::new(
                "sampler",
                total <= max_backlog,
                format!("mailbox backlog {total} (bound {max_backlog})"),
            )
        });

        // Flush-boundedness: memtables persistently far above budget, or
        // any single store whose immutable backlog has hit the stall cap
        // on every shard, mean the background flusher is not keeping up
        // (wedged flushers stall writers next). Purely in-memory caches
        // have no flush stage, so the probe only reports their size.
        let flush_bounded = config.cache_dir.is_some();
        let mem_bound = (config.cache_memtable_budget * config.cache_shards * 4) as u64;
        let imm_bound = (config.cache_max_immutables * config.cache_shards) as u64;
        let kv_serving = Arc::clone(serving);
        state = state.probe(move || {
            let set = Arc::clone(&kv_serving.read());
            let mut mem = 0u64;
            let mut worst_imm = 0u64;
            for w in &set.workers {
                let (s, f) = w.cache_stats();
                mem += s.mem_bytes as u64 + f.mem_bytes as u64;
                worst_imm = worst_imm
                    .max(s.immutable_memtables as u64)
                    .max(f.immutable_memtables as u64);
            }
            if flush_bounded {
                let healthy = mem <= mem_bound * set.workers.len() as u64 && worst_imm < imm_bound;
                HealthReport::new(
                    "kvstore",
                    healthy,
                    format!(
                        "memtable bytes {mem} (bound {mem_bound}/worker), \
                         worst immutable backlog {worst_imm} (stall cap {imm_bound})"
                    ),
                )
            } else {
                HealthReport::new("kvstore", true, format!("in-memory, {mem} bytes"))
            }
        });

        let drain_broker = Arc::clone(broker);
        let drain_sampling: Vec<DrainSource> = sampling
            .iter()
            .map(|w| (Arc::clone(w.metrics()), Box::new(w.backlog_probe()) as _))
            .collect();
        let drain_serving = Arc::clone(serving);
        let drain_bound = config.health_max_backlog as u64;
        state = state.probe(move || {
            let set = Arc::clone(&drain_serving.read());
            let deficit = drain_deficit(&drain_broker, &drain_sampling, &set);
            HealthReport::new(
                "pipeline",
                deficit <= drain_bound,
                format!("drain deficit {deficit} (bound {drain_bound})"),
            )
        });

        OpsServer::start(addr, state)
    }

    /// Spawn the periodic pipeline-lag monitor: every `interval` it
    /// refreshes `mq.lag{group,topic}` (consumer lag per group),
    /// `actor.mailbox_depth{worker}` (sampling-shard backlog) and
    /// `kvstore.*{worker,replica,table}` (cache memtable/SST sizes) in
    /// the telemetry registry, so a snapshot at any moment shows where
    /// the update pipeline is backed up. The tick also feeds the flight
    /// recorder (lag samples, flush observations) and raises anomalies —
    /// decode-error spikes and SLO fast-burn — that dump the ring.
    #[allow(clippy::too_many_arguments)]
    fn start_stats_reporter(
        interval: Duration,
        config: &HeliosConfig,
        telemetry: &Arc<Registry>,
        broker: &Arc<Broker>,
        sampling: &[SamplingWorker],
        serving: &SharedServing,
        router: &Arc<Router>,
        coordinator: &Coordinator,
        recorder: &Arc<FlightRecorder>,
        slo: &Arc<SloTracker>,
        retained: &Arc<RetainedTraces>,
        accountant: &Arc<MemAccountant>,
    ) -> StatsReporter {
        let registry = Arc::clone(telemetry);
        let broker = Arc::clone(broker);
        let retained = Arc::clone(retained);
        let accountant = Arc::clone(accountant);
        let probes: Vec<(String, Box<dyn Fn() -> usize + Send + Sync>)> = sampling
            .iter()
            .map(|w| (w.id().0.to_string(), Box::new(w.backlog_probe()) as _))
            .collect();
        let serving = Arc::clone(serving);
        let router = Arc::clone(router);
        let liveness = coordinator.liveness();
        let worker_timeout = config.health_worker_timeout;
        let recorder = Arc::clone(recorder);
        let slo = Arc::clone(slo);
        let spike = config.decode_error_spike;
        let mut last_decode = 0u64;
        let mut burning = false;
        StatsReporter::start("helios-stats", interval, move || {
            let (mut total_lag, mut max_lag) = (0u64, 0u64);
            for e in broker.lag_report() {
                registry
                    .gauge("mq.lag", &[("group", &e.group), ("topic", &e.topic)])
                    .set(e.lag as i64);
                total_lag += e.lag;
                max_lag = max_lag.max(e.lag);
            }
            recorder.record(EventKind::LagSample, u32::MAX, total_lag, max_lag, 0);
            // Queue *time* next to queue *depth*: fold every worker's
            // `mq.dwell{topic,…}` histogram into p50/p99 gauges so the
            // report line (and the bench snapshot) show how long records
            // sat in the broker, not just how many.
            if let Some(dwell) = registry.snapshot().histogram_total("mq.dwell") {
                registry
                    .gauge("mq.dwell_p50_ns", &[])
                    .set(dwell.percentile(50.0).min(i64::MAX as u64) as i64);
                registry
                    .gauge("mq.dwell_p99_ns", &[])
                    .set(dwell.percentile(99.0).min(i64::MAX as u64) as i64);
            }
            // Tail-sampling sweep: fold freshly journaled spans into the
            // retained-trace store so `/traces` stays current without an
            // explicit drain.
            retained.sweep();
            for (worker, probe) in &probes {
                registry
                    .gauge("actor.mailbox_depth", &[("worker", worker)])
                    .set(probe() as i64);
            }
            // Membership: routing epoch, live logical workers, and dead
            // (heartbeat-expired) workers, so `/vars` answers "what shape
            // is the fleet in" without scraping the membership topic.
            let table = router.table();
            registry
                .gauge("membership.epoch", &[])
                .set(table.epoch() as i64);
            registry
                .gauge("membership.workers", &[])
                .set(table.workers() as i64);
            if let Some(timeout) = worker_timeout {
                registry
                    .gauge("membership.dead_workers", &[])
                    .set(liveness.dead_workers(timeout).len() as i64);
            }
            let set = Arc::clone(&serving.read());
            let mut decode = 0u64;
            for w in &set.workers {
                decode += w.decode_errors();
                let sw = w.id().0.to_string();
                let r = w.replica().to_string();
                let (s, f) = w.cache_stats();
                for (table, st) in [("samples", s), ("features", f)] {
                    let labels: &[(&str, &str)] =
                        &[("worker", &sw), ("replica", &r), ("table", table)];
                    registry
                        .gauge("kvstore.mem_bytes", labels)
                        .set(st.mem_bytes as i64);
                    registry
                        .gauge("kvstore.mem_entries", labels)
                        .set(st.mem_entries as i64);
                    registry
                        .gauge("kvstore.immutable_memtables", labels)
                        .set(st.immutable_memtables as i64);
                    registry
                        .gauge("kvstore.sst_files", labels)
                        .set(st.sst_files as i64);
                    registry
                        .gauge("kvstore.disk_bytes", labels)
                        .set(st.disk_bytes as i64);
                    registry
                        .gauge("kvstore.flushes", labels)
                        .set(st.flushes as i64);
                    registry
                        .gauge("kvstore.compactions", labels)
                        .set(st.compactions as i64);
                    registry
                        .gauge("kvstore.compaction_debt", labels)
                        .set(st.compaction_debt as i64);
                    registry
                        .gauge("kvstore.block_cache_hits", labels)
                        .set(st.block_cache_hits as i64);
                    registry
                        .gauge("kvstore.block_cache_misses", labels)
                        .set(st.block_cache_misses as i64);
                    registry
                        .gauge("kvstore.stall_nanos", labels)
                        .set(st.stall_nanos as i64);
                }
            }
            // A burst of decode errors within one tick is an anomaly
            // worth a ring dump: something upstream is emitting garbage.
            if decode.saturating_sub(last_decode) >= spike {
                recorder.anomaly(
                    EventKind::DecodeError,
                    u32::MAX,
                    decode - last_decode,
                    decode,
                    0,
                );
            }
            last_decode = decode;
            // Freshness SLO burn rates as gauges (×1000: gauges are
            // integers); anomaly on the rising edge of a fast burn.
            let short = slo.short_burn();
            let long = slo.long_burn();
            registry
                .gauge("e2e.slo_burn_short", &[])
                .set((short * 1000.0) as i64);
            registry
                .gauge("e2e.slo_burn_long", &[])
                .set((long * 1000.0) as i64);
            if short > 1.0 && !burning {
                recorder.anomaly(
                    EventKind::SloBurn,
                    u32::MAX,
                    (short * 1000.0) as u64,
                    (long * 1000.0) as u64,
                    0,
                );
            }
            burning = short > 1.0;
            // Publish `mem.bytes{component,…}` and judge the budget; the
            // under→over crossing is the rising edge that dumps the ring.
            let tick = accountant.export();
            if tick.crossed_over {
                recorder.anomaly(
                    EventKind::MemPressure,
                    u32::MAX,
                    tick.total_bytes.max(0) as u64,
                    accountant.budget_bytes().unwrap_or(0),
                    tick.budget_fraction.map_or(0, |f| (f * 1000.0) as u64),
                );
            }
        })
    }

    /// Deployment configuration.
    pub fn config(&self) -> &HeliosConfig {
        &self.config
    }

    /// The coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The broker (tests/benches may attach extra consumers).
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The deployment's telemetry registry: all worker counters, gauges
    /// and latency histograms, queryable by instrument name.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// A merged snapshot of every instrument in the deployment.
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        self.telemetry.snapshot()
    }

    /// The deployment's flight recorder (always on).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The deployment's memory ledger: per-component byte gauges, summed
    /// totals and budget pressure. Exported into the registry every stats
    /// tick; tests may call [`MemAccountant::export`] directly for a
    /// deterministic tick.
    pub fn mem_accountant(&self) -> &Arc<MemAccountant> {
        &self.accountant
    }

    /// The tail-sampled trace store behind `/traces`: slow, errored and
    /// timed-out traces, boring ones evicted first. Swept periodically by
    /// the stats reporter; call [`RetainedTraces::sweep`] for an
    /// up-to-the-moment view (tests do, deterministically).
    pub fn retained_traces(&self) -> &Arc<RetainedTraces> {
        &self.retained
    }

    /// The end-to-end freshness SLO tracker. Only fed while freshness
    /// probing is configured; otherwise empty (burn rates read 0).
    pub fn freshness_slo(&self) -> &Arc<SloTracker> {
        &self.slo
    }

    /// Bound address of the embedded ops HTTP server, when one is
    /// running (`config.ops_addr`). With port `0`, this is where the
    /// ephemeral port shows up.
    pub fn ops_addr(&self) -> Option<std::net::SocketAddr> {
        self.ops.as_ref().map(OpsServer::addr)
    }

    /// Handles to the current serving fleet (a snapshot: a concurrent
    /// rescale does not invalidate the returned vector, but it may no
    /// longer reflect the live set).
    pub fn serving_workers(&self) -> Vec<Arc<ServingWorker>> {
        self.serving.read().workers.clone()
    }

    /// The sampling workers (M is fixed for the deployment's lifetime;
    /// only the serving fleet rescales).
    pub fn sampling_workers(&self) -> &[SamplingWorker] {
        &self.sampling
    }

    /// The shared seed→worker router (epoch-versioned; rescales bump it).
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Current routing-table epoch.
    pub fn route_epoch(&self) -> u64 {
        self.router.epoch()
    }

    /// Dynamic ops-server routes (`/membership` is pre-registered;
    /// [`crate::rescale`] adds `/scale`). Live even when the ops server is
    /// disabled, so registration is always safe.
    pub fn dyn_routes(&self) -> &Arc<DynRoutes> {
        &self.dyn_routes
    }

    /// Metrics of each sampling worker.
    pub fn sampler_metrics(&self) -> Vec<&Arc<SamplerMetrics>> {
        self.sampling.iter().map(SamplingWorker::metrics).collect()
    }

    /// Total updates processed across sampling workers.
    pub fn updates_processed(&self) -> u64 {
        self.sampling.iter().map(|w| w.metrics().processed()).sum()
    }

    /// Ingest one graph update: expand per the edge partition policy and
    /// enqueue to the partitioned update stream (front-end of Fig. 5).
    pub fn ingest(&self, update: &GraphUpdate) -> Result<()> {
        let m = self.config.sampling_workers;
        match update {
            GraphUpdate::Vertex(_) => {
                self.produce_update(update.clone(), update.routing_vertex(), m)?;
            }
            GraphUpdate::Edge(e) => {
                for (rv, copy) in self.config.policy.copies(e) {
                    self.produce_update(GraphUpdate::Edge(copy), rv, m)?;
                }
            }
        }
        Ok(())
    }

    /// Ingest a batch.
    pub fn ingest_batch(&self, updates: &[GraphUpdate]) -> Result<()> {
        for u in updates {
            self.ingest(u)?;
        }
        Ok(())
    }

    fn produce_update(&self, update: GraphUpdate, rv: VertexId, m: usize) -> Result<()> {
        let env = UpdateEnvelope::stamp(update);
        let partition = PartitionId(route(rv.raw(), m) as u32);
        self.updates_topic
            .produce_to(partition, rv.raw(), env.encode_to_bytes())?;
        Ok(())
    }

    /// A serving worker responsible for `seed`: the owning logical worker
    /// comes from the epoch-versioned routing table; among its replicas,
    /// requests are spread round-robin.
    pub fn serving_worker_for(&self, seed: VertexId) -> Arc<ServingWorker> {
        loop {
            let set = Arc::clone(&self.serving.read());
            let sew = self.router.owner_of(seed).0 as usize;
            // Rescale ordering keeps `table.workers() <= set.logical()`
            // (scale-out extends the set before the commit installs; a
            // scale-in installs before it truncates), but the two reads
            // here are not atomic — on the rare raced snapshot, re-read.
            if sew < set.logical() {
                let replicas = set.replicas;
                let r = if replicas == 1 {
                    0
                } else {
                    (self
                        .replica_rr
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                        % replicas as u64) as usize
                };
                return Arc::clone(&set.workers[sew * replicas + r]);
            }
            std::thread::yield_now();
        }
    }

    /// All replicas of logical serving worker `sew` (snapshot semantics,
    /// like [`HeliosDeployment::serving_workers`]).
    pub fn serving_replicas_of(&self, sew: u32) -> Vec<Arc<ServingWorker>> {
        self.serving.read().replicas_of(sew).to_vec()
    }

    /// Serve a sampling query: route to the owning serving worker and
    /// assemble the K-hop result from its local cache (executed on the
    /// caller's thread). With tracing enabled, the request becomes a
    /// `router.serve` root span with the worker's spans nested under it.
    pub fn serve(&self, seed: VertexId) -> Result<SampledSubgraph> {
        let router_span = span("router.serve", TraceCtx::root());
        let worker = self.route_timed(seed, router_span.ctx());
        let result = worker.serve_traced(seed, router_span.ctx());
        self.flag_serve_error(router_span.ctx().trace, &result);
        result
    }

    /// Serve a sampling query straight to canonical response bytes:
    /// route to the owning worker and let it assemble and encode from its
    /// reusable arena — the owned [`SampledSubgraph`] is never
    /// materialized. `out` is cleared and reused, so a front-end thread
    /// serving a stream of requests reaches a zero-allocation steady
    /// state.
    pub fn serve_encoded(&self, seed: VertexId, out: &mut Vec<u8>) -> Result<()> {
        let router_span = span("router.serve", TraceCtx::root());
        let worker = self.route_timed(seed, router_span.ctx());
        let result = worker.serve_encoded_traced(seed, router_span.ctx(), out);
        if result.is_err() {
            self.retained.flag(router_span.ctx().trace, "error");
        }
        result
    }

    /// Serve through the owning worker's bounded serving-thread pool
    /// (§4.3): queueing delay becomes visible under load, which is what
    /// the scalability experiments measure.
    pub fn serve_queued(&self, seed: VertexId) -> Result<SampledSubgraph> {
        let router_span = span("router.serve", TraceCtx::root());
        let worker = self.route_timed(seed, router_span.ctx());
        let result = worker.serve_queued_traced(seed, router_span.ctx());
        self.flag_serve_error(router_span.ctx().trace, &result);
        result
    }

    /// The "route" stage of the serve path: owner lookup + replica pick,
    /// timed into `router.route_latency` and spanned when traced. Kept as
    /// its own histogram (not a `serving.stage_latency` label) so the
    /// per-stage sum identity against `serving.latency` stays exact —
    /// routing happens before the worker's end-to-end clock starts.
    fn route_timed(&self, seed: VertexId, ctx: TraceCtx) -> Arc<ServingWorker> {
        let route_start = Instant::now();
        let worker = {
            let _route_span = span("router.route", ctx);
            self.serving_worker_for(seed)
        };
        self.route_latency.record_duration(route_start.elapsed());
        worker
    }

    /// Flag a failed serve's trace so the tail sweep retains it.
    fn flag_serve_error(&self, trace: u64, result: &Result<SampledSubgraph>) {
        if result.is_err() {
            self.retained.flag(trace, "error");
        }
    }

    /// Trigger TTL expiry everywhere (paper: periodic stale-data removal).
    pub fn expire_before(&self, horizon: Timestamp) -> Result<()> {
        for w in &self.sampling {
            w.expire_before(horizon);
        }
        let set = Arc::clone(&self.serving.read());
        for s in &set.workers {
            s.expire_before(horizon)?;
        }
        Ok(())
    }

    /// Checkpoint sampling-worker state into `dir` (coordinator-triggered
    /// fault tolerance, §4.1), plus a manifest of the topology and routing
    /// table the snapshot was taken under. Quiesce first for a clean
    /// snapshot.
    pub fn checkpoint(&self, dir: &Path) -> Result<()> {
        for w in &self.sampling {
            w.checkpoint(dir)?;
        }
        std::fs::create_dir_all(dir)?;
        let set = Arc::clone(&self.serving.read());
        let manifest = CheckpointManifest {
            sampling_workers: self.config.sampling_workers as u32,
            sampling_threads: self.config.sampling_threads as u32,
            serving_workers: set.logical() as u32,
            table: (*self.router.table()).clone(),
        };
        std::fs::write(
            dir.join(CheckpointManifest::FILE),
            manifest.encode_to_bytes(),
        )?;
        Ok(())
    }

    /// Spawn the coordinator's periodic checkpoint trigger (§4.1): every
    /// `interval`, sampling-worker state is snapshotted into `dir`. The
    /// returned guard stops the trigger when dropped.
    pub fn start_periodic_checkpoints(
        self: &Arc<Self>,
        dir: &Path,
        interval: Duration,
    ) -> CheckpointGuard {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let weak = Arc::downgrade(self);
        let dir = dir.to_path_buf();
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("coordinator-checkpoint".into())
            .spawn(move || {
                'outer: while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    // Sleep in small steps so dropping the guard is prompt.
                    let wake = Instant::now() + interval;
                    while Instant::now() < wake {
                        if stop2.load(std::sync::atomic::Ordering::Relaxed) {
                            break 'outer;
                        }
                        std::thread::sleep(Duration::from_millis(20).min(interval));
                    }
                    let Some(deployment) = weak.upgrade() else {
                        break;
                    };
                    let _ = deployment.checkpoint(&dir);
                }
            })
            .expect("spawn checkpoint trigger");
        CheckpointGuard {
            stop,
            handle: Some(handle),
        }
    }

    /// Block until the pipeline drains: all produced updates dispatched
    /// and processed, control traffic settled, and serving caches caught
    /// up with their sample queues. Returns `false` on timeout.
    ///
    /// Only meaningful while no new updates are being ingested (tests and
    /// paired experiment phases); live deployments never quiesce — they
    /// are eventually consistent (§6).
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable_rounds = 0;
        let mut last_fingerprint = (0u64, 0u64, 0u64, 0u64);
        while Instant::now() < deadline {
            // Re-snapshot the serving set every round: quiesce may run
            // concurrently with (or right after) a rescale.
            let set = Arc::clone(&self.serving.read());
            let updates_end = self.updates_topic.total_end_offset();
            let control_end = self
                .broker
                .topic(topics::CONTROL)
                .map(|t| t.total_end_offset())
                .unwrap_or(0);
            let n_logical = set.logical() as u32;
            let samples_end: u64 = (0..n_logical)
                .map(|s| {
                    self.broker
                        .topic(&topics::samples(s))
                        .map(|t| t.total_end_offset())
                        .unwrap_or(0)
                })
                .sum();

            let mut updates_done = 0u64;
            let mut control_done = 0u64;
            let mut backlog = 0usize;
            for w in &self.sampling {
                let m = w.metrics();
                updates_done += m.updates_processed.get();
                control_done += m.control_processed.get();
                backlog += w.backlog();
            }
            // Malformed records are counted (as decode errors), never
            // applied — both tallies drain the queue.
            let applied: u64 = set
                .workers
                .iter()
                .map(|s| s.applied() + s.decode_errors())
                .sum();
            // Every replica consumes the full queue of its logical worker.
            let samples_expected = samples_end * set.replicas as u64;

            let drained = updates_done == updates_end
                && control_done == control_end
                && applied == samples_expected
                && backlog == 0;
            let fingerprint = (updates_end, control_end, samples_expected, applied);
            if drained && fingerprint == last_fingerprint {
                stable_rounds += 1;
                // Two consecutive stable observations: no in-flight message
                // can still generate work.
                if stable_rounds >= 2 {
                    return true;
                }
            } else {
                stable_rounds = 0;
            }
            last_fingerprint = fingerprint;
            std::thread::sleep(Duration::from_millis(2));
        }
        // Failed to drain: dump the flight ring with the remaining
        // deficit so the stuck stage is identifiable post-hoc.
        let sampling: Vec<DrainSource> = self
            .sampling
            .iter()
            .map(|w| (Arc::clone(w.metrics()), Box::new(w.backlog_probe()) as _))
            .collect();
        let set = Arc::clone(&self.serving.read());
        let deficit = drain_deficit(&self.broker, &sampling, &set);
        self.recorder
            .anomaly(EventKind::QuiesceFailed, u32::MAX, deficit, 0, 0);
        false
    }

    /// Total bytes held by all serving caches (Fig. 16 numerator).
    pub fn total_cache_bytes(&self) -> u64 {
        let set = Arc::clone(&self.serving.read());
        set.workers.iter().map(|s| s.cache_bytes()).sum()
    }

    /// Stop all workers. Serving caches stay readable until drop.
    pub fn shutdown(mut self) {
        // Stop the prober and ops server, then the lag monitor — all
        // before the workers they observe. Stopping the reporter flushes
        // one final tick so the last interval's gauges are current.
        drop(self.prober.take());
        drop(self.ops.take());
        if let Some(r) = self.reporter.take() {
            r.stop();
        }
        for w in self.sampling.drain(..) {
            w.shutdown();
        }
        let set = Arc::clone(&self.serving.read());
        for s in &set.workers {
            s.shutdown();
        }
    }

    /// The edge partition policy in effect.
    pub fn policy(&self) -> PartitionPolicy {
        self.config.policy
    }

    /// Convenience for tests: ingest, then quiesce.
    pub fn ingest_and_settle(&self, updates: &[GraphUpdate], timeout: Duration) -> Result<()> {
        self.ingest_batch(updates)?;
        if !self.quiesce(timeout) {
            return Err(HeliosError::Timeout("pipeline did not quiesce".into()));
        }
        Ok(())
    }
}

/// The quiesce drain equation as a single number: messages produced but
/// not yet consumed across all pipeline stages (updates, control, sample
/// queues × replicas) plus the sampling-shard mailbox backlog. Zero means
/// fully drained; a live pipeline under load sits at a small positive
/// value.
fn drain_deficit(broker: &Broker, sampling: &[DrainSource], serving: &ServingSet) -> u64 {
    let updates_end = broker
        .topic(topics::UPDATES)
        .map(|t| t.total_end_offset())
        .unwrap_or(0);
    let control_end = broker
        .topic(topics::CONTROL)
        .map(|t| t.total_end_offset())
        .unwrap_or(0);
    let samples_end: u64 = (0..serving.logical() as u32)
        .map(|s| {
            broker
                .topic(&topics::samples(s))
                .map(|t| t.total_end_offset())
                .unwrap_or(0)
        })
        .sum();
    let mut updates_done = 0u64;
    let mut control_done = 0u64;
    let mut backlog = 0u64;
    for (m, probe) in sampling {
        updates_done += m.updates_processed.get();
        control_done += m.control_processed.get();
        backlog += probe() as u64;
    }
    let applied: u64 = serving
        .workers
        .iter()
        .map(|s| s.applied() + s.decode_errors())
        .sum();
    updates_end.saturating_sub(updates_done)
        + control_end.saturating_sub(control_done)
        + (samples_end * serving.replicas as u64).saturating_sub(applied)
        + backlog
}
