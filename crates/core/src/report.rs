//! Aggregated deployment status — what an operator's dashboard would show
//! (and what the example binaries print).

use crate::deployment::HeliosDeployment;
use std::fmt;

/// Snapshot of one serving worker's counters.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Logical serving worker id.
    pub sew: u32,
    /// Replica index.
    pub replica: u32,
    /// Requests served.
    pub served: u64,
    /// Sample-queue records applied to the cache.
    pub applied: u64,
    /// Sample-queue records that failed to decode (not applied).
    pub decode_errors: u64,
    /// Serving latency, milliseconds.
    pub serve_avg_ms: f64,
    /// Serving P99 latency, milliseconds.
    pub serve_p99_ms: f64,
    /// Ingestion latency P99, milliseconds (0 when nothing recorded).
    pub ingestion_p99_ms: f64,
    /// Sample-queue dwell P99, milliseconds — how long applied records
    /// sat in the broker (0 when nothing recorded).
    pub mq_dwell_p99_ms: f64,
    /// Cache footprint in bytes (memory + disk).
    pub cache_bytes: u64,
    /// Queued requests answered from a coalesced hot-seed expansion.
    pub coalesce_hits: u64,
    /// Coalescable requests expanded separately because the single-flight
    /// waiter cap was reached — a sustained rate means the cap is too low
    /// for the skew.
    pub coalesce_overflow: u64,
    /// Byte-accurate accounted footprint of this replica (sample/feature
    /// memtables + block cache + SST indexes + serve scratch), from the
    /// worker's [`crate::ServingMemGauges`].
    pub accounted_bytes: i64,
}

/// Snapshot of one sampling worker's counters.
#[derive(Debug, Clone)]
pub struct SamplingReport {
    /// Sampling worker id.
    pub saw: u32,
    /// Updates processed.
    pub updates_processed: u64,
    /// Control messages processed.
    pub control_processed: u64,
    /// Sample/feature messages published.
    pub published: u64,
    /// Update-queue dwell P99, milliseconds — how long consumed updates
    /// sat in the broker (0 when nothing recorded).
    pub update_dwell_p99_ms: f64,
    /// Critical-path busy seconds (busiest sampling thread).
    pub max_shard_busy_secs: f64,
}

/// A whole-deployment snapshot.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Per-sampling-worker counters.
    pub sampling: Vec<SamplingReport>,
    /// Per-serving-worker (replica) counters.
    pub serving: Vec<ServingReport>,
    /// Workers that missed their heartbeat window.
    pub dead_workers: Vec<String>,
    /// Accounted bytes per memory component (`mem.bytes` ledger), sorted
    /// by component name.
    pub mem_components: Vec<(String, i64)>,
    /// Sum of all accounted component bytes.
    pub mem_total_bytes: i64,
    /// Configured memory budget, when one is set.
    pub mem_budget_bytes: Option<u64>,
}

impl DeploymentReport {
    /// Build a snapshot of `deployment`.
    pub fn capture(deployment: &HeliosDeployment) -> DeploymentReport {
        let sampling = deployment
            .sampler_metrics()
            .iter()
            .enumerate()
            .map(|(i, m)| SamplingReport {
                saw: i as u32,
                updates_processed: m.updates_processed.get(),
                control_processed: m.control_processed.get(),
                published: m.published.get(),
                update_dwell_p99_ms: m.update_dwell.percentile_ms(99.0),
                max_shard_busy_secs: m.max_shard_busy_nanos() as f64 / 1e9,
            })
            .collect();
        let serving = deployment
            .serving_workers()
            .iter()
            .map(|w| ServingReport {
                sew: w.id().0,
                replica: w.replica(),
                served: w.served(),
                applied: w.applied(),
                decode_errors: w.decode_errors(),
                serve_avg_ms: w.serve_latency().mean_ms(),
                serve_p99_ms: w.serve_latency().percentile_ms(99.0),
                ingestion_p99_ms: w.ingestion_latency().percentile_ms(99.0),
                mq_dwell_p99_ms: w.mq_dwell().percentile_ms(99.0),
                cache_bytes: w.cache_bytes(),
                coalesce_hits: w.coalesce_hits(),
                coalesce_overflow: w.coalesce_overflow(),
                accounted_bytes: {
                    let g = w.mem_gauges();
                    g.sample_table.get()
                        + g.feature_table.get()
                        + g.block_cache.get()
                        + g.sst_index.get()
                        + g.serve_scratch.get()
                },
            })
            .collect();
        let accountant = deployment.mem_accountant();
        let mem_components = accountant
            .components()
            .into_iter()
            .map(|c| {
                let bytes = accountant.component_bytes(&c);
                (c, bytes)
            })
            .collect();
        DeploymentReport {
            sampling,
            serving,
            dead_workers: deployment
                .coordinator()
                .dead_workers(std::time::Duration::from_secs(5)),
            mem_components,
            mem_total_bytes: accountant.total_bytes(),
            mem_budget_bytes: accountant.budget_bytes(),
        }
    }

    /// Total updates processed across sampling workers.
    pub fn total_updates(&self) -> u64 {
        self.sampling.iter().map(|s| s.updates_processed).sum()
    }

    /// Total requests served across serving workers.
    pub fn total_served(&self) -> u64 {
        self.serving.iter().map(|s| s.served).sum()
    }
}

impl fmt::Display for DeploymentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "helios deployment report")?;
        for s in &self.sampling {
            writeln!(
                f,
                "  SAW{}: {} updates (dwell p99 {:.3} ms), {} control, {} published, busy {:.2}s",
                s.saw,
                s.updates_processed,
                s.update_dwell_p99_ms,
                s.control_processed,
                s.published,
                s.max_shard_busy_secs
            )?;
        }
        for s in &self.serving {
            writeln!(
                f,
                "  SEW{}r{}: {} served (avg {:.3} ms / p99 {:.3} ms), {} applied (dwell p99 {:.3} ms), {} decode errors, cache {} KB, coalesce {}/{} hit/overflow, accounted {} KB",
                s.sew,
                s.replica,
                s.served,
                s.serve_avg_ms,
                s.serve_p99_ms,
                s.applied,
                s.mq_dwell_p99_ms,
                s.decode_errors,
                s.cache_bytes / 1024,
                s.coalesce_hits,
                s.coalesce_overflow,
                s.accounted_bytes.max(0) / 1024
            )?;
        }
        let components = self
            .mem_components
            .iter()
            .map(|(c, b)| format!("{c} {b}"))
            .collect::<Vec<_>>()
            .join(", ");
        match self.mem_budget_bytes {
            Some(budget) => writeln!(
                f,
                "  MEM: {} bytes of {budget} budget ({})",
                self.mem_total_bytes, components
            )?,
            None => writeln!(
                f,
                "  MEM: {} bytes, no budget ({})",
                self.mem_total_bytes, components
            )?,
        }
        if !self.dead_workers.is_empty() {
            writeln!(f, "  DEAD: {:?}", self.dead_workers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeliosConfig, HeliosDeployment};
    use helios_query::{KHopQuery, SamplingStrategy};
    use helios_types::{EdgeType, VertexType};

    #[test]
    fn report_captures_and_renders() {
        let q = KHopQuery::builder(VertexType(0))
            .hop(EdgeType(0), VertexType(1), 2, SamplingStrategy::Random)
            .build()
            .unwrap();
        let helios = HeliosDeployment::start(HeliosConfig::with_workers(2, 2), q).unwrap();
        let report = DeploymentReport::capture(&helios);
        assert_eq!(report.sampling.len(), 2);
        assert_eq!(report.serving.len(), 2);
        assert_eq!(report.total_updates(), 0);
        assert_eq!(report.total_served(), 0);
        let text = report.to_string();
        assert!(text.contains("SAW0"));
        assert!(text.contains("SEW1r0"));
        assert!(text.contains("MEM:"), "report shows the memory ledger");
        for component in ["mq_log", "sample_table", "feature_table", "trace_retention"] {
            assert!(
                report.mem_components.iter().any(|(c, _)| c == component),
                "ledger tracks {component}"
            );
        }
        assert!(
            report.dead_workers.is_empty(),
            "freshly started workers are alive"
        );
        helios.shutdown();
    }
}
