//! Deployment configuration.

use helios_graphstore::PartitionPolicy;
use helios_telemetry::SloConfig;
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of the end-to-end freshness probe (see
/// `HeliosDeployment`): the coordinator periodically injects a marker
/// vertex update at ingestion and measures how long until it is visible
/// from the owning serving worker's cache.
#[derive(Debug, Clone)]
pub struct FreshnessConfig {
    /// How often a marker is injected.
    pub interval: Duration,
    /// How long one probe waits for its marker before counting a timeout.
    pub probe_timeout: Duration,
    /// Reserved vertex id used for markers. Pick an id outside the
    /// workload's vertex space so probes never collide with real data.
    pub marker_vertex: u64,
    /// Freshness SLO (objective + burn-rate windows) fed by the probes.
    pub slo: SloConfig,
}

impl Default for FreshnessConfig {
    fn default() -> Self {
        FreshnessConfig {
            interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(2),
            marker_vertex: u64::MAX - 1,
            slo: SloConfig::default(),
        }
    }
}

/// Configuration for a [`crate::HeliosDeployment`].
#[derive(Debug, Clone)]
pub struct HeliosConfig {
    /// Number of sampling workers (M).
    pub sampling_workers: usize,
    /// Number of serving workers (N).
    pub serving_workers: usize,
    /// Sampling threads (reservoir-table shards) per sampling worker.
    pub sampling_threads: usize,
    /// Cache-updating threads per serving worker.
    pub updater_threads: usize,
    /// Serving threads per serving worker (execute queued sampling
    /// queries; the paper's "serving threads", §4.3). Direct `serve`
    /// calls bypass the queue; `serve_queued` uses it.
    pub serving_threads: usize,
    /// Hot-seed request coalescing: the floor (and starting value) of
    /// each lane's **adaptive** waiter cap — how many concurrent queued
    /// requests for the same `(seed, epoch)` may share one expansion as
    /// waiters on a single leader serve. A lane that overflows the cap
    /// doubles it (up to 1024, current value on the
    /// `serving.coalesce_cap` gauge); sustained calm decays it back to
    /// this floor. Requests beyond the in-force cap degrade to
    /// independent serves (counted by `serving.coalesce_overflow`); `0`
    /// disables coalescing entirely and pins the cap.
    pub coalesce_max_waiters: usize,
    /// How many queued requests a serve lane drains from its channel per
    /// scheduling round. Larger batches expose more coalescing
    /// opportunity under a hot seed; `1` effectively serves strictly
    /// request-at-a-time.
    pub serve_drain_batch: usize,
    /// Pin each serve lane thread to a core (`lane % cores`) via
    /// `sched_setaffinity`. Best effort: pinning failures (non-Linux,
    /// restricted cpusets) are ignored and lanes run unpinned.
    pub pin_serving_threads: bool,
    /// Replicas per serving worker (§4.1: "replicating the highly loaded
    /// serving workers based on the ad-hoc skewness"). Each replica
    /// consumes the same sample queue under its own consumer group and
    /// holds a full copy of the slice's cache; the front-end spreads
    /// requests across replicas round-robin.
    pub serving_replicas: usize,
    /// Partitions per serving worker's sample queue.
    pub sample_queue_partitions: u32,
    /// Edge partition policy for the update stream.
    pub policy: PartitionPolicy,
    /// Poll batch size for worker consumers.
    pub poll_batch: usize,
    /// Poll timeout for worker consumers (idle wake-up period).
    pub poll_timeout: Duration,
    /// Time-to-live for graph data; `None` disables expiry ("we set a TTL
    /// threshold ... to ensure no graph data are expired", §7.1).
    pub ttl: Option<Duration>,
    /// Directory for the serving workers' hybrid sample caches; `None`
    /// keeps caches purely in memory. `Default::default()` seeds this
    /// from the `HELIOS_CACHE_DIR` environment variable (a unique
    /// per-deployment subdirectory), which is how CI runs the whole
    /// suite against hybrid caches on a tmpfs.
    pub cache_dir: Option<PathBuf>,
    /// KV shards per serving worker cache.
    pub cache_shards: usize,
    /// Memtable budget per cache shard before spilling to disk.
    pub cache_memtable_budget: usize,
    /// Runs (SSTs) a cache shard accumulates before the background
    /// compactor merges its oldest suffix (hybrid caches only).
    pub cache_l0_compact_trigger: usize,
    /// Immutable (rotated, not yet flushed) memtables a cache shard may
    /// hold before writers stall waiting on the flusher (hybrid only).
    pub cache_max_immutables: usize,
    /// Byte capacity of each hybrid cache's shared block cache of decoded
    /// SST granules; `0` disables block caching.
    pub cache_block_cache_bytes: usize,
    /// Refresh period of the deployment's pipeline-lag gauges (mq
    /// consumer lag, shard mailbox depth, cache sizes); `None` disables
    /// the stats reporter thread.
    pub stats_interval: Option<Duration>,
    /// Bind address for the deployment's embedded ops HTTP server
    /// (`/metrics`, `/healthz`, `/vars`, `/trace/*`, `/recorder`); `None`
    /// (the default) disables it. Use port `0` for an ephemeral port.
    /// The `HELIOS_OPS_ADDR` env var feeds this in the examples/bench.
    pub ops_addr: Option<String>,
    /// End-to-end freshness probing; `None` (the default) disables it.
    /// Probes continuously inject marker updates, so quiesce-based tests
    /// should leave this off.
    pub freshness: Option<FreshnessConfig>,
    /// Capacity of the flight-recorder event ring (always on; a few KB).
    pub flight_recorder_capacity: usize,
    /// Directory anomaly flight dumps are written to; `None` keeps the
    /// ring in memory only (still visible via the ops server).
    pub flight_dump_dir: Option<PathBuf>,
    /// `/healthz`: max per-(group, topic) consumer lag considered healthy.
    pub health_max_lag: u64,
    /// `/healthz`: max total sampling-shard mailbox backlog considered
    /// healthy.
    pub health_max_backlog: usize,
    /// Decode errors per stats tick that count as a spike and trigger a
    /// flight-recorder anomaly dump.
    pub decode_error_spike: u64,
    /// Routing-table slots seeds hash into before the slot→worker lookup.
    /// Fixed for the deployment's lifetime; must be ≥ every worker count
    /// the deployment can scale to (slots, not workers, bound elasticity).
    pub route_slots: u32,
    /// `/healthz`: a registered worker whose last heartbeat is older than
    /// this reads as dead and degrades health; `None` disables the
    /// membership probe (e.g. for paused/checkpoint-restore tests).
    pub health_worker_timeout: Option<Duration>,
    /// Deadline for one `scale_to` handoff to reach its catch-up
    /// watermark before the rescale is abandoned.
    pub rescale_timeout: Duration,
    /// Probability in `[0, 1]` that a request/update with no upstream
    /// trace context starts a new trace (head sampling). `1.0` traces
    /// everything (tests), `0.01` is a production-style rate. The
    /// `HELIOS_TRACE_SAMPLE` environment variable overrides this *and*
    /// force-enables tracing, so a running binary can be sampled without
    /// a code change.
    pub trace_sample: f64,
    /// A trace whose root span is slower than this is retained in the
    /// tail-sampled trace store (`/traces`) even if nothing flagged it.
    pub trace_slow_threshold: Duration,
    /// Capacity of the retained-trace store backing `/traces`. Boring
    /// traces are evicted first once full.
    pub retained_traces: usize,
    /// Soft memory budget for everything the deployment's byte accountant
    /// tracks (memtables, block caches, SST indexes, serve scratch, mq
    /// logs, retained traces). `None` disables budget pressure: the
    /// `mem.bytes` gauges still export but `mem.budget_fraction_permille`
    /// stays 0 and `/healthz` never degrades on memory. Seeded from the
    /// `HELIOS_MEM_BUDGET` environment variable (`64m`, `2g`, plain
    /// bytes) by `Default::default()`.
    pub memory_budget_bytes: Option<u64>,
}

impl Default for HeliosConfig {
    fn default() -> Self {
        HeliosConfig {
            sampling_workers: 2,
            serving_workers: 2,
            sampling_threads: 2,
            updater_threads: 2,
            serving_threads: 4,
            coalesce_max_waiters: 16,
            serve_drain_batch: 64,
            pin_serving_threads: false,
            serving_replicas: 1,
            sample_queue_partitions: 2,
            policy: PartitionPolicy::BySrc,
            poll_batch: 1024,
            poll_timeout: Duration::from_millis(20),
            ttl: None,
            cache_dir: helios_telemetry::cache_dir_env(),
            cache_shards: 4,
            cache_memtable_budget: 16 << 20,
            cache_l0_compact_trigger: 4,
            cache_max_immutables: 4,
            cache_block_cache_bytes: 32 << 20,
            stats_interval: Some(Duration::from_millis(500)),
            ops_addr: None,
            freshness: None,
            flight_recorder_capacity: 4096,
            flight_dump_dir: None,
            health_max_lag: 100_000,
            health_max_backlog: 100_000,
            decode_error_spike: 100,
            route_slots: 64,
            health_worker_timeout: Some(Duration::from_secs(5)),
            rescale_timeout: Duration::from_secs(30),
            trace_sample: 1.0,
            trace_slow_threshold: Duration::from_millis(10),
            retained_traces: 256,
            memory_budget_bytes: helios_telemetry::mem_budget_env(),
        }
    }
}

impl HeliosConfig {
    /// A deployment sized `(M sampling, N serving)` with sensible defaults
    /// elsewhere.
    pub fn with_workers(sampling: usize, serving: usize) -> Self {
        HeliosConfig {
            sampling_workers: sampling,
            serving_workers: serving,
            ..Default::default()
        }
    }

    /// Validate invariants; called by the deployment at start.
    pub fn validate(&self) -> helios_types::Result<()> {
        use helios_types::HeliosError::InvalidConfig;
        if self.sampling_workers == 0 {
            return Err(InvalidConfig("need at least one sampling worker".into()));
        }
        if self.serving_workers == 0 {
            return Err(InvalidConfig("need at least one serving worker".into()));
        }
        if self.sampling_threads == 0 || self.updater_threads == 0 || self.serving_threads == 0 {
            return Err(InvalidConfig("thread counts must be positive".into()));
        }
        if self.serve_drain_batch == 0 {
            return Err(InvalidConfig(
                "serve drain batch must be positive (1 disables batching)".into(),
            ));
        }
        if self.serving_replicas == 0 {
            return Err(InvalidConfig(
                "each serving worker needs at least one replica".into(),
            ));
        }
        if self.sample_queue_partitions == 0 {
            return Err(InvalidConfig("sample queues need partitions".into()));
        }
        if self.poll_batch == 0 {
            return Err(InvalidConfig("poll batch must be positive".into()));
        }
        if self.cache_shards == 0 {
            return Err(InvalidConfig("caches need at least one shard".into()));
        }
        if self.cache_l0_compact_trigger == 0 {
            return Err(InvalidConfig(
                "cache compaction trigger must be positive".into(),
            ));
        }
        if self.cache_max_immutables == 0 {
            return Err(InvalidConfig(
                "caches need room for at least one immutable memtable".into(),
            ));
        }
        if self.stats_interval == Some(Duration::ZERO) {
            return Err(InvalidConfig(
                "stats interval must be positive (or None to disable)".into(),
            ));
        }
        if let Some(f) = &self.freshness {
            if f.interval.is_zero() || f.probe_timeout.is_zero() {
                return Err(InvalidConfig(
                    "freshness interval and probe timeout must be positive".into(),
                ));
            }
        }
        if self.flight_recorder_capacity == 0 {
            return Err(InvalidConfig(
                "flight recorder needs a positive capacity".into(),
            ));
        }
        if self.decode_error_spike == 0 {
            return Err(InvalidConfig(
                "decode-error spike threshold must be positive".into(),
            ));
        }
        if (self.route_slots as usize) < self.serving_workers {
            return Err(InvalidConfig(
                "route_slots must be >= serving_workers (slots bound elasticity)".into(),
            ));
        }
        if self.health_worker_timeout == Some(Duration::ZERO) {
            return Err(InvalidConfig(
                "health worker timeout must be positive (or None to disable)".into(),
            ));
        }
        if self.rescale_timeout.is_zero() {
            return Err(InvalidConfig("rescale timeout must be positive".into()));
        }
        if !self.trace_sample.is_finite() || !(0.0..=1.0).contains(&self.trace_sample) {
            return Err(InvalidConfig(
                "trace sample rate must be a probability in [0, 1]".into(),
            ));
        }
        if self.trace_slow_threshold.is_zero() {
            return Err(InvalidConfig(
                "trace slow threshold must be positive".into(),
            ));
        }
        if self.retained_traces == 0 {
            return Err(InvalidConfig(
                "retained-trace store needs a positive capacity".into(),
            ));
        }
        if self.memory_budget_bytes == Some(0) {
            return Err(InvalidConfig(
                "memory budget must be positive (or None to disable)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(HeliosConfig::default().validate().is_ok());
    }

    #[test]
    fn with_workers_sets_counts() {
        let c = HeliosConfig::with_workers(4, 6);
        assert_eq!(c.sampling_workers, 4);
        assert_eq!(c.serving_workers, 6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn coalescing_off_is_a_valid_config() {
        let mut c = HeliosConfig::default();
        c.coalesce_max_waiters = 0; // disables coalescing, not invalid
        c.serve_drain_batch = 1; // strict request-at-a-time, not invalid
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        for f in [
            |c: &mut HeliosConfig| c.sampling_workers = 0,
            |c: &mut HeliosConfig| c.serving_workers = 0,
            |c: &mut HeliosConfig| c.sampling_threads = 0,
            |c: &mut HeliosConfig| c.updater_threads = 0,
            |c: &mut HeliosConfig| c.serving_threads = 0,
            |c: &mut HeliosConfig| c.serve_drain_batch = 0,
            |c: &mut HeliosConfig| c.serving_replicas = 0,
            |c: &mut HeliosConfig| c.sample_queue_partitions = 0,
            |c: &mut HeliosConfig| c.poll_batch = 0,
            |c: &mut HeliosConfig| c.cache_shards = 0,
            |c: &mut HeliosConfig| c.cache_l0_compact_trigger = 0,
            |c: &mut HeliosConfig| c.cache_max_immutables = 0,
            |c: &mut HeliosConfig| c.stats_interval = Some(Duration::ZERO),
            |c: &mut HeliosConfig| {
                c.freshness = Some(FreshnessConfig {
                    interval: Duration::ZERO,
                    ..Default::default()
                })
            },
            |c: &mut HeliosConfig| c.flight_recorder_capacity = 0,
            |c: &mut HeliosConfig| c.decode_error_spike = 0,
            |c: &mut HeliosConfig| c.route_slots = 1,
            |c: &mut HeliosConfig| c.health_worker_timeout = Some(Duration::ZERO),
            |c: &mut HeliosConfig| c.rescale_timeout = Duration::ZERO,
            |c: &mut HeliosConfig| c.trace_sample = -0.1,
            |c: &mut HeliosConfig| c.trace_sample = 1.5,
            |c: &mut HeliosConfig| c.trace_sample = f64::NAN,
            |c: &mut HeliosConfig| c.trace_slow_threshold = Duration::ZERO,
            |c: &mut HeliosConfig| c.retained_traces = 0,
            |c: &mut HeliosConfig| c.memory_budget_bytes = Some(0),
        ] {
            let mut c = HeliosConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }
}
