//! The sampling worker (§4.2, §5).
//!
//! Each sampling worker owns one partition of the graph-update stream.
//! Internally it follows the paper's thread structure:
//!
//! * **polling threads** (two: updates + control) continuously fetch from
//!   the worker's input queues and dispatch to sampling threads by vertex
//!   hash;
//! * **sampling threads** — a [`ShardedPool`], each shard exclusively
//!   owning a slice of the key space with its per-hop reservoir tables,
//!   feature table and subscription tables (no locks on the hot path);
//!   publishing to the output queues happens inline (the `helios-mq`
//!   produce path is a short critical section, so a separate publisher
//!   stage would only add a hop).
//!
//! Subscription propagation implements §5.3 / Fig. 7 with refcounts: a
//! serving worker's subscription to `(hop k, vertex)` exists as long as at
//! least one upstream reservoir it subscribes to contains that vertex.

use crate::config::HeliosConfig;
use crate::messages::{now_nanos, ControlMsg, SampleEntryLite, SampleMsg, UpdateEnvelope};
use crate::to_reservoir_strategy;
use helios_actor::{Beacon, ShardedPool};
use helios_membership::{MembershipMsg, RouteTable, Router};
use helios_metrics::Histogram;
use helios_mq::Broker;
use helios_query::{KHopQuery, QueryDag};
use helios_sampling::{ReservoirOutcome, ReservoirTable, SampleEntry};
use helios_telemetry::{span, Counter, EventKind, FlightRecorder, Registry, TraceCtx};
use helios_types::{
    hash::route, Decode, EdgeUpdate, Encode, FxHashMap, GraphUpdate, PartitionId, QueryHopId,
    Result, SamplingWorkerId, ServingWorkerId, Timestamp, VertexId, VertexType, VertexUpdate,
};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Topic names shared between the deployment and the workers.
pub mod topics {
    /// Graph-update stream (M partitions, one per sampling worker).
    pub const UPDATES: &str = "updates";
    /// Inter-sampling-worker subscription control (M partitions).
    pub const CONTROL: &str = "control";
    /// Membership / rescale broadcasts (M partitions; the deployment
    /// writes every message to all partitions so each sampling worker
    /// sees the full epoch sequence on its own partition).
    pub const MEMBERSHIP: &str = "membership";
    /// Sample queue of one serving worker.
    pub fn samples(sew: u32) -> String {
        format!("samples-{sew}")
    }
}

/// Shared throughput/progress counters of one sampling worker, registered
/// as `sampler.*` instruments in the deployment's telemetry registry so
/// snapshots and reports see them by name.
#[derive(Debug)]
pub struct SamplerMetrics {
    /// Update records dispatched by the polling thread.
    pub updates_dispatched: Arc<Counter>,
    /// Update records fully processed by sampling threads.
    pub updates_processed: Arc<Counter>,
    /// Control records dispatched by the control polling thread.
    pub control_dispatched: Arc<Counter>,
    /// Control records fully processed.
    pub control_processed: Arc<Counter>,
    /// Sample/feature messages published to serving workers.
    pub published: Arc<Counter>,
    /// Per-sampling-thread busy nanoseconds. On a machine with fewer
    /// cores than threads, `max` over these is the critical-path compute
    /// time a truly parallel deployment would take — the scalability
    /// experiments report throughput against it ("simulated-parallel").
    pub shard_busy_nanos: Vec<Arc<Counter>>,
    /// Time update records spent in the updates topic before this worker
    /// polled them (`mq.dwell{topic=updates}`), from the produce stamp on
    /// the wire record.
    pub update_dwell: Arc<Histogram>,
    /// Shard time spent mutating local state per update (reservoir offer,
    /// feature upsert) — the update path's "sampler-apply" stage.
    pub apply_latency: Arc<Histogram>,
    /// Shard time spent fanning the change out to subscribers (sample
    /// publishes + control ripple) — the "samples-propagate" stage.
    /// `apply + propagate` = total shard processing time per update.
    pub propagate_latency: Arc<Histogram>,
}

impl SamplerMetrics {
    /// Standalone metrics (not in any registry) for a worker with
    /// `threads` sampling threads; used by unit tests.
    pub fn new(threads: usize) -> Self {
        SamplerMetrics {
            updates_dispatched: Arc::new(Counter::new()),
            updates_processed: Arc::new(Counter::new()),
            control_dispatched: Arc::new(Counter::new()),
            control_processed: Arc::new(Counter::new()),
            published: Arc::new(Counter::new()),
            shard_busy_nanos: (0..threads).map(|_| Arc::new(Counter::new())).collect(),
            update_dwell: Arc::new(Histogram::new()),
            apply_latency: Arc::new(Histogram::new()),
            propagate_latency: Arc::new(Histogram::new()),
        }
    }

    /// Metrics registered under `sampler.*{worker=<id>}` in `registry`.
    pub fn registered(registry: &Registry, worker: u32, threads: usize) -> Self {
        let w = worker.to_string();
        let labels: &[(&str, &str)] = &[("worker", &w)];
        SamplerMetrics {
            updates_dispatched: registry.counter("sampler.updates_dispatched", labels),
            updates_processed: registry.counter("sampler.updates_processed", labels),
            control_dispatched: registry.counter("sampler.control_dispatched", labels),
            control_processed: registry.counter("sampler.control_processed", labels),
            published: registry.counter("sampler.published", labels),
            shard_busy_nanos: (0..threads)
                .map(|s| {
                    let s = s.to_string();
                    registry.counter("sampler.shard_busy_nanos", &[("worker", &w), ("shard", &s)])
                })
                .collect(),
            update_dwell: registry.histogram("mq.dwell", &[("topic", "updates"), ("worker", &w)]),
            apply_latency: registry.histogram("sampler.apply_latency", labels),
            propagate_latency: registry.histogram("sampler.propagate_latency", labels),
        }
    }

    /// Updates processed so far (the paper's pre-sampling records/s
    /// numerator).
    pub fn processed(&self) -> u64 {
        self.updates_processed.get()
    }

    /// The busiest sampling thread's accumulated compute time, in
    /// nanoseconds: the parallel critical path.
    pub fn max_shard_busy_nanos(&self) -> u64 {
        self.shard_busy_nanos
            .iter()
            .map(|b| b.get())
            .max()
            .unwrap_or(0)
    }

    /// Total compute nanoseconds across sampling threads.
    pub fn total_busy_nanos(&self) -> u64 {
        self.shard_busy_nanos.iter().map(|b| b.get()).sum()
    }
}

/// Context shared by all shards of one sampling worker.
struct Ctx {
    worker: SamplingWorkerId,
    m: usize,
    /// Epoch-versioned seed→serving-worker routing, shared with the
    /// deployment front-end. Installed tables change where *new* implicit
    /// seed subscriptions go; existing subscriptions move via the
    /// Prepare/Commit handoff scans.
    router: Arc<Router>,
    dag: QueryDag,
    seed_type: VertexType,
    broker: Arc<Broker>,
    /// Lazily resolved sample-queue handles, keyed by logical serving
    /// worker. Invalidated when a commit shrinks or re-creates topics so
    /// a stale `Arc<Topic>` can never shadow a re-created queue.
    sample_topics: RwLock<FxHashMap<u32, Arc<helios_mq::Topic>>>,
    control_topic: Arc<helios_mq::Topic>,
    metrics: Arc<SamplerMetrics>,
    recorder: Arc<FlightRecorder>,
}

impl Ctx {
    #[inline]
    fn sew_of(&self, v: VertexId) -> ServingWorkerId {
        self.router.owner_of(v)
    }

    /// Resolve the sample topic of `sew`. Only workers inside the
    /// currently *committed* table are cached: during a scale-out's
    /// prepare window (and a scale-in's drain window) the joining or
    /// departing worker's topic is looked up per publish, so deleting and
    /// re-creating `samples-<sew>` across rescale cycles is always seen.
    fn sample_topic(&self, sew: u32) -> Option<Arc<helios_mq::Topic>> {
        if let Some(t) = self.sample_topics.read().get(&sew) {
            return Some(Arc::clone(t));
        }
        let t = self.broker.topic(&topics::samples(sew)).ok()?;
        if (sew as usize) < self.router.table().workers() {
            self.sample_topics.write().insert(sew, Arc::clone(&t));
        }
        Some(t)
    }

    /// Drop cached topic handles outside the committed worker set.
    fn invalidate_sample_topics(&self, live_workers: u32) {
        self.sample_topics
            .write()
            .retain(|sew, _| *sew < live_workers);
    }

    fn publish_sample(&self, sew: ServingWorkerId, msg: &SampleMsg) {
        self.publish_sample_raw(sew, msg.routing_key(), msg.encode_to_bytes());
    }

    /// Publish an already-encoded message (lets multi-subscriber fan-out
    /// encode once and clone the frozen buffer). Publishes to a departed
    /// worker (topic deleted) are dropped silently: its cache is gone.
    fn publish_sample_raw(&self, sew: ServingWorkerId, key: u64, payload: bytes::Bytes) {
        if let Some(topic) = self.sample_topic(sew.0) {
            let _ = topic.produce(key, payload);
            self.metrics.published.incr();
        }
    }

    /// Send a batch of control messages, waking control consumers once
    /// for the whole batch ([`helios_mq::Topic::produce_many_to`])
    /// instead of once per message. Per-vertex order is preserved.
    fn send_controls(&self, msgs: impl IntoIterator<Item = ControlMsg>) {
        let _ = self
            .control_topic
            .produce_many_to(msgs.into_iter().map(|msg| {
                let v = msg.target_vertex();
                let partition = PartitionId(route(v.raw(), self.m) as u32);
                (partition, v.raw(), msg.encode_to_bytes())
            }));
    }
}

/// Which rescale scan a shard should run (see `handle_rescale`).
#[derive(Clone, Copy, Debug)]
enum RescalePhase {
    /// Charge the pending table's new owners of moved seeds; routing and
    /// the `seeds` map stay on the committed table.
    Prepare,
    /// Move moved seeds fully: charge new owner (a no-op after Prepare),
    /// repoint `seeds`, discharge the old owner.
    Commit,
    /// Undo an abandoned Prepare: discharge the pending table's new
    /// owners of would-move seeds (a no-op for anything already
    /// committed), so a timed-out handoff leaks no subscriptions.
    Abort,
    /// Drop every subscription and re-derive them from reservoir contents
    /// under the current table (checkpoint restored into a different
    /// topology).
    Rebuild,
}

/// Messages handled by a sampling shard.
enum ShardMsg {
    Update(UpdateEnvelope),
    Control(ControlMsg),
    /// TTL expiry up to the horizon.
    Expire(Timestamp),
    /// Write shard state to `dir` and ack.
    Checkpoint(PathBuf, crossbeam::channel::Sender<Result<()>>),
    /// Load shard state from `dir` (if a file exists) and ack.
    Restore(PathBuf, crossbeam::channel::Sender<Result<()>>),
    /// Run one rescale scan against `table` and ack.
    Rescale {
        table: Arc<RouteTable>,
        phase: RescalePhase,
        ack: crossbeam::channel::Sender<()>,
    },
    /// Deep-copy the shard's state for tests/diagnostics and ack.
    Inspect(crossbeam::channel::Sender<ShardSnapshot>),
}

type SubTable = FxHashMap<VertexId, FxHashMap<u32, u32>>;

/// A deep copy of one sampling shard's state, taken through the shard's
/// own mailbox (so it is a consistent point-in-time view). Used by the
/// subscription-churn tests and rescale diagnostics.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Per hop: reservoir key → current sampled neighbors.
    pub reservoirs: Vec<FxHashMap<VertexId, Vec<VertexId>>>,
    /// Per hop: vertex → serving worker → subscription refcount.
    pub sample_subs: Vec<FxHashMap<VertexId, FxHashMap<u32, u32>>>,
    /// Vertex → serving worker → feature subscription refcount.
    pub feat_subs: FxHashMap<VertexId, FxHashMap<u32, u32>>,
    /// Seed → serving worker currently charged with its implicit
    /// subscriptions.
    pub seeds: FxHashMap<VertexId, u32>,
}

/// One sampling thread's exclusive state.
struct SamplerShard {
    ctx: Arc<Ctx>,
    shard_idx: usize,
    /// Reservoir table per one-hop query (indexed by hop).
    reservoirs: Vec<ReservoirTable>,
    /// Latest features of locally-owned vertices.
    features: FxHashMap<VertexId, (Vec<f32>, Timestamp)>,
    /// Per-hop sample subscription refcounts.
    sample_subs: Vec<SubTable>,
    /// Feature subscription refcounts.
    feat_subs: SubTable,
    /// Seed → serving worker holding its *implicit* subscriptions (the
    /// hop-0 sample sub and one feature-sub refcount). The routing table
    /// says where a seed *should* live; this map says who is *currently*
    /// charged, which is what lets rescale scans find and move exactly
    /// the seeds whose owner changed.
    seeds: FxHashMap<VertexId, u32>,
    rng: StdRng,
    /// Nanoseconds the current update spent fanning out to subscribers
    /// (reset per update; see `apply_latency`/`propagate_latency`).
    propagate_ns: u64,
    /// Profiler registration, held for the shard thread's lifetime
    /// (populated by `on_start` on the actor's own thread).
    profile_token: Option<helios_types::profile::ThreadToken>,
}

impl SamplerShard {
    fn new(ctx: Arc<Ctx>, shard_idx: usize) -> Self {
        let reservoirs = ctx
            .dag
            .nodes()
            .iter()
            .map(|q| ReservoirTable::new(to_reservoir_strategy(q.strategy), q.fanout))
            .collect();
        let sample_subs = vec![SubTable::default(); ctx.dag.len()];
        let seed = (ctx.worker.0 as u64) << 32 | shard_idx as u64;
        SamplerShard {
            ctx,
            shard_idx,
            reservoirs,
            features: FxHashMap::default(),
            sample_subs,
            feat_subs: SubTable::default(),
            seeds: FxHashMap::default(),
            rng: StdRng::seed_from_u64(seed ^ 0x4845_4C49_4F53_u64),
            propagate_ns: 0,
            profile_token: None,
        }
    }

    fn lite_entries(entries: &[SampleEntry]) -> Vec<SampleEntryLite> {
        entries
            .iter()
            .map(|e| SampleEntryLite {
                neighbor: e.neighbor,
                ts: e.ts,
                weight: e.weight,
            })
            .collect()
    }

    // ---- update handling (§5.2) ----

    fn handle_vertex(&mut self, v: &VertexUpdate, caused_at: u64, trace: TraceCtx) {
        self.features.insert(v.id, (v.feature.clone(), v.ts));
        if v.vtype == self.ctx.seed_type {
            // Seed vertices are implicitly subscribed by their serving
            // worker (it will need the seed feature — and, when edges
            // arrive, the hop-0 samples — to answer requests on v).
            self.ensure_seed_sub(v.id);
        }
        let mut fanout_ns = 0u64;
        if let Some(subs) = self.feat_subs.get(&v.id) {
            let fanout_start = std::time::Instant::now();
            let msg = SampleMsg::FeatureUpdate {
                vertex: v.id,
                feature: v.feature.clone(),
                ts: v.ts,
                caused_at,
                trace,
            };
            for &sew in subs.keys() {
                self.ctx.publish_sample(ServingWorkerId(sew), &msg);
            }
            fanout_ns = fanout_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        }
        self.propagate_ns += fanout_ns;
    }

    fn handle_edge(&mut self, e: &EdgeUpdate, caused_at: u64, trace: TraceCtx) {
        // An edge can match several one-hop queries (e.g. FIN's two
        // TransferTo hops); each maintains its own reservoir.
        for hop_idx in 0..self.ctx.dag.len() {
            let node = self.ctx.dag.nodes()[hop_idx];
            if !node.matches_edge(e.src_type, e.etype, e.dst_type) {
                continue;
            }
            let hop = QueryHopId(hop_idx as u16);
            if hop_idx == 0 {
                // Implicit seed subscription (Q₁ keys are seeds; their
                // serving worker is determined by routing).
                self.ensure_seed_sub(e.src);
            }
            let reservoir_span = span("sampler.reservoir", trace);
            let outcome =
                self.reservoirs[hop_idx].offer(e.src, e.dst, e.ts, e.weight, &mut self.rng);
            drop(reservoir_span);
            let (added, evicted) = match outcome {
                ReservoirOutcome::Ignored => (None, None),
                ReservoirOutcome::Added => (Some(e.dst), None),
                ReservoirOutcome::Replaced { evicted } => (Some(e.dst), Some(evicted.neighbor)),
            };
            if outcome.changed() {
                self.on_reservoir_change(hop, e.src, added, evicted, caused_at, trace);
            }
        }
    }

    /// Publish the new reservoir contents to every subscriber and ripple
    /// subscribe/unsubscribe messages for the entering/evicted samples.
    fn on_reservoir_change(
        &mut self,
        hop: QueryHopId,
        key: VertexId,
        added: Option<VertexId>,
        evicted: Option<VertexId>,
        caused_at: u64,
        trace: TraceCtx,
    ) {
        let entries = Self::lite_entries(self.reservoirs[hop.index()].samples(key));
        let subs: Vec<u32> = self.sample_subs[hop.index()]
            .get(&key)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        if subs.is_empty() {
            return;
        }
        let fanout_start = std::time::Instant::now();
        let _fanout_span = span("sampler.fanout", trace);
        self.ctx.recorder.record(
            EventKind::HopExpanded,
            self.ctx.worker.0,
            u64::from(hop.0),
            key.raw(),
            subs.len() as u64,
        );
        let downstream: Vec<QueryHopId> = self.ctx.dag.downstream(hop).map(|d| d.hop).collect();
        let msg = SampleMsg::SampleUpdate {
            hop,
            key,
            entries,
            caused_at,
            trace,
        };
        let payload = msg.encode_to_bytes();
        let routing_key = msg.routing_key();
        let mut controls: Vec<ControlMsg> = Vec::new();
        for &sew_raw in &subs {
            let sew = ServingWorkerId(sew_raw);
            self.ctx
                .publish_sample_raw(sew, routing_key, payload.clone());
            if let Some(new_neighbor) = added {
                controls.push(ControlMsg::SubscribeFeature {
                    vertex: new_neighbor,
                    sew,
                });
                for &d in &downstream {
                    controls.push(ControlMsg::SubscribeSamples {
                        hop: d,
                        vertex: new_neighbor,
                        sew,
                    });
                }
            }
            if let Some(old_neighbor) = evicted {
                controls.push(ControlMsg::UnsubscribeFeature {
                    vertex: old_neighbor,
                    sew,
                });
                for &d in &downstream {
                    controls.push(ControlMsg::UnsubscribeSamples {
                        hop: d,
                        vertex: old_neighbor,
                        sew,
                    });
                }
            }
        }
        self.ctx.send_controls(controls);
        self.propagate_ns += fanout_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    }

    // ---- subscription handling (§5.3) ----

    /// Make sure `seed`'s implicit subscriptions are charged to its
    /// *current* owner per the routing table. Called on every hop-0 edge
    /// and seed-typed vertex update; after a rescale commit this is also
    /// what moves a seed the commit scan has not reached yet (new traffic
    /// must never resurrect a discharged owner).
    fn ensure_seed_sub(&mut self, seed: VertexId) {
        let owner = self.ctx.sew_of(seed);
        match self.seeds.get(&seed).copied() {
            None => {
                self.seeds.insert(seed, owner.0);
                self.charge_seed(seed, owner);
            }
            Some(old) if old != owner.0 => {
                self.charge_seed(seed, owner);
                self.seeds.insert(seed, owner.0);
                self.discharge_seed(seed, ServingWorkerId(old));
            }
            Some(_) => {}
        }
    }

    /// Charge `sew` with `seed`'s implicit subscriptions: the hop-0
    /// sample sub plus one feature-sub refcount. Guarded by the hop-0
    /// sub's presence — only charges ever create hop-0 subs (there is no
    /// transitive `SubscribeSamples{hop: 0}`), so presence means "already
    /// charged" and a Prepare-then-Commit double charge is a no-op. The
    /// subscribe path pushes reservoir/feature snapshots (§5.3,
    /// idempotent), which is exactly the bootstrap a joining worker needs.
    fn charge_seed(&mut self, seed: VertexId, sew: ServingWorkerId) {
        let charged = self.sample_subs[0]
            .get(&seed)
            .is_some_and(|m| m.contains_key(&sew.0));
        if !charged {
            self.sub_samples(QueryHopId(0), seed, sew);
            self.sub_feature(seed, sew);
        }
    }

    /// Mirror of `charge_seed`: drop the implicit subscriptions held by
    /// `sew`. The transitive unsubscribe cascade discharges everything
    /// the seed's subscription tree pinned on other workers.
    fn discharge_seed(&mut self, seed: VertexId, sew: ServingWorkerId) {
        let charged = self.sample_subs[0]
            .get(&seed)
            .is_some_and(|m| m.contains_key(&sew.0));
        if charged {
            self.unsub_samples(QueryHopId(0), seed, sew);
            self.unsub_feature(seed, sew);
        }
    }

    fn sub_samples(&mut self, hop: QueryHopId, vertex: VertexId, sew: ServingWorkerId) {
        let rc = self.sample_subs[hop.index()]
            .entry(vertex)
            .or_default()
            .entry(sew.0)
            .or_insert(0);
        *rc += 1;
        let first = *rc == 1;
        // Snapshot push (idempotent) so the subscriber converges
        // even if it subscribed mid-stream.
        let entries = Self::lite_entries(self.reservoirs[hop.index()].samples(vertex));
        let neighbors: Vec<VertexId> = entries.iter().map(|e| e.neighbor).collect();
        self.ctx.publish_sample(
            sew,
            &SampleMsg::SampleUpdate {
                hop,
                key: vertex,
                entries,
                caused_at: 0,
                trace: TraceCtx::NONE,
            },
        );
        if first {
            let downstream: Vec<QueryHopId> = self.ctx.dag.downstream(hop).map(|d| d.hop).collect();
            let mut controls: Vec<ControlMsg> = Vec::new();
            for w in neighbors {
                controls.push(ControlMsg::SubscribeFeature { vertex: w, sew });
                for &d in &downstream {
                    controls.push(ControlMsg::SubscribeSamples {
                        hop: d,
                        vertex: w,
                        sew,
                    });
                }
            }
            self.ctx.send_controls(controls);
        }
    }

    fn unsub_samples(&mut self, hop: QueryHopId, vertex: VertexId, sew: ServingWorkerId) {
        let mut drop_all = false;
        if let Some(m) = self.sample_subs[hop.index()].get_mut(&vertex) {
            if let Some(rc) = m.get_mut(&sew.0) {
                *rc = rc.saturating_sub(1);
                if *rc == 0 {
                    m.remove(&sew.0);
                    drop_all = true;
                }
            }
            if m.is_empty() {
                self.sample_subs[hop.index()].remove(&vertex);
            }
        }
        if drop_all {
            self.ctx
                .publish_sample(sew, &SampleMsg::Evict { hop, key: vertex });
            let neighbors: Vec<VertexId> = self.reservoirs[hop.index()]
                .samples(vertex)
                .iter()
                .map(|e| e.neighbor)
                .collect();
            let downstream: Vec<QueryHopId> = self.ctx.dag.downstream(hop).map(|d| d.hop).collect();
            let mut controls: Vec<ControlMsg> = Vec::new();
            for w in neighbors {
                controls.push(ControlMsg::UnsubscribeFeature { vertex: w, sew });
                for &d in &downstream {
                    controls.push(ControlMsg::UnsubscribeSamples {
                        hop: d,
                        vertex: w,
                        sew,
                    });
                }
            }
            self.ctx.send_controls(controls);
        }
    }

    fn sub_feature(&mut self, vertex: VertexId, sew: ServingWorkerId) {
        let rc = self
            .feat_subs
            .entry(vertex)
            .or_default()
            .entry(sew.0)
            .or_insert(0);
        *rc += 1;
        if *rc == 1 {
            if let Some((f, ts)) = self.features.get(&vertex) {
                self.ctx.publish_sample(
                    sew,
                    &SampleMsg::FeatureUpdate {
                        vertex,
                        feature: f.clone(),
                        ts: *ts,
                        caused_at: 0,
                        trace: TraceCtx::NONE,
                    },
                );
            }
        }
    }

    fn unsub_feature(&mut self, vertex: VertexId, sew: ServingWorkerId) {
        let mut evict = false;
        if let Some(m) = self.feat_subs.get_mut(&vertex) {
            if let Some(rc) = m.get_mut(&sew.0) {
                *rc = rc.saturating_sub(1);
                if *rc == 0 {
                    m.remove(&sew.0);
                    evict = true;
                }
            }
            if m.is_empty() {
                self.feat_subs.remove(&vertex);
            }
        }
        if evict {
            self.ctx
                .publish_sample(sew, &SampleMsg::EvictFeature { vertex });
        }
    }

    fn handle_control(&mut self, msg: ControlMsg) {
        match msg {
            ControlMsg::SubscribeSamples { hop, vertex, sew } => self.sub_samples(hop, vertex, sew),
            ControlMsg::UnsubscribeSamples { hop, vertex, sew } => {
                self.unsub_samples(hop, vertex, sew)
            }
            ControlMsg::SubscribeFeature { vertex, sew } => self.sub_feature(vertex, sew),
            ControlMsg::UnsubscribeFeature { vertex, sew } => self.unsub_feature(vertex, sew),
        }
    }

    // ---- rescale (membership handoff scans) ----

    /// Run one rescale scan. `Prepare` charges the pending table's new
    /// owner of every seed whose owner changes (warming its cache through
    /// the idempotent snapshot path) without touching routing state, so
    /// live traffic keeps flowing to the old owners. `Commit` makes the
    /// move authoritative: charge (no-op when prepared), repoint `seeds`,
    /// discharge the old owner — the refcounted unsubscribe cascade then
    /// strips everything only the old owner pinned. `Abort` undoes an
    /// abandoned `Prepare` by discharging the pending owners it charged.
    /// `Rebuild` re-derives the whole subscription tree from reservoir
    /// contents under the current table (topology-mismatched restore).
    fn handle_rescale(&mut self, table: &RouteTable, phase: RescalePhase) {
        match phase {
            RescalePhase::Prepare => {
                let moved: Vec<VertexId> = self
                    .seeds
                    .iter()
                    .filter(|(v, &old)| table.owner_of(**v).0 != old)
                    .map(|(v, _)| *v)
                    .collect();
                for v in moved {
                    self.charge_seed(v, table.owner_of(v));
                }
            }
            RescalePhase::Commit => {
                let moved: Vec<(VertexId, u32)> = self
                    .seeds
                    .iter()
                    .filter(|(v, &old)| table.owner_of(**v).0 != old)
                    .map(|(v, &old)| (*v, old))
                    .collect();
                for (v, old) in moved {
                    let new = table.owner_of(v);
                    self.charge_seed(v, new);
                    self.seeds.insert(v, new.0);
                    self.discharge_seed(v, ServingWorkerId(old));
                }
            }
            RescalePhase::Abort => {
                // Exact mirror of Prepare: every seed the abandoned table
                // would have moved had its pending owner charged; drop
                // that charge. Seeds it never moved — or that a Commit of
                // this very table already repointed — fail the filter (or
                // the discharge guard) and are untouched.
                let moved: Vec<VertexId> = self
                    .seeds
                    .iter()
                    .filter(|(v, &cur)| table.owner_of(**v).0 != cur)
                    .map(|(v, _)| *v)
                    .collect();
                for v in moved {
                    self.discharge_seed(v, table.owner_of(v));
                }
            }
            RescalePhase::Rebuild => {
                let mut seeds: Vec<VertexId> = self.seeds.keys().copied().collect();
                seeds.extend(self.reservoirs[0].iter().map(|(k, _)| k));
                seeds.sort_unstable();
                seeds.dedup();
                for t in &mut self.sample_subs {
                    t.clear();
                }
                self.feat_subs.clear();
                self.seeds.clear();
                for v in seeds {
                    self.ensure_seed_sub(v);
                }
            }
        }
    }

    fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            reservoirs: self
                .reservoirs
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|(k, r)| (k, r.neighbors().collect()))
                        .collect()
                })
                .collect(),
            sample_subs: self.sample_subs.clone(),
            feat_subs: self.feat_subs.clone(),
            seeds: self.seeds.clone(),
        }
    }

    // ---- TTL (§4.2) ----

    fn handle_expire(&mut self, horizon: Timestamp) {
        for hop_idx in 0..self.reservoirs.len() {
            let hop = QueryHopId(hop_idx as u16);
            let evicted = self.reservoirs[hop_idx].expire_before(horizon);
            let downstream: Vec<QueryHopId> = self.ctx.dag.downstream(hop).map(|d| d.hop).collect();
            let mut touched: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
            for (key, entry) in evicted {
                touched.entry(key).or_default().push(entry.neighbor);
            }
            for (key, lost) in touched {
                let subs: Vec<u32> = self.sample_subs[hop_idx]
                    .get(&key)
                    .map(|m| m.keys().copied().collect())
                    .unwrap_or_default();
                if subs.is_empty() {
                    continue;
                }
                let entries = Self::lite_entries(self.reservoirs[hop_idx].samples(key));
                let msg = SampleMsg::SampleUpdate {
                    hop,
                    key,
                    entries,
                    caused_at: 0,
                    trace: TraceCtx::NONE,
                };
                let mut controls: Vec<ControlMsg> = Vec::new();
                for &sew_raw in &subs {
                    let sew = ServingWorkerId(sew_raw);
                    self.ctx.publish_sample(sew, &msg);
                    for &w in &lost {
                        controls.push(ControlMsg::UnsubscribeFeature { vertex: w, sew });
                        for &d in &downstream {
                            controls.push(ControlMsg::UnsubscribeSamples {
                                hop: d,
                                vertex: w,
                                sew,
                            });
                        }
                    }
                }
                self.ctx.send_controls(controls);
            }
        }
        self.features.retain(|_, (_, ts)| *ts >= horizon);
    }

    // ---- checkpointing (§4.1 fault tolerance) ----

    fn checkpoint_path(&self, dir: &std::path::Path) -> PathBuf {
        dir.join(format!(
            "saw{}-shard{}.ckpt",
            self.ctx.worker.0, self.shard_idx
        ))
    }

    fn handle_checkpoint(&mut self, dir: &std::path::Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut buf = bytes::BytesMut::new();
        (self.reservoirs.len() as u32).encode(&mut buf);
        for (hop_idx, table) in self.reservoirs.iter().enumerate() {
            let cells: Vec<(VertexId, helios_sampling::Reservoir)> =
                table.iter().map(|(k, r)| (k, r.clone())).collect();
            (cells.len() as u32).encode(&mut buf);
            for (k, r) in cells {
                k.encode(&mut buf);
                r.encode(&mut buf);
            }
            // Subscriptions for this hop.
            let subs = &self.sample_subs[hop_idx];
            (subs.len() as u32).encode(&mut buf);
            for (v, m) in subs {
                v.encode(&mut buf);
                let pairs: Vec<(u32, u32)> = m.iter().map(|(a, b)| (*a, *b)).collect();
                pairs.encode(&mut buf);
            }
        }
        // Features + feature subs.
        (self.features.len() as u32).encode(&mut buf);
        for (v, (f, ts)) in &self.features {
            v.encode(&mut buf);
            f.encode(&mut buf);
            ts.encode(&mut buf);
        }
        (self.feat_subs.len() as u32).encode(&mut buf);
        for (v, m) in &self.feat_subs {
            v.encode(&mut buf);
            let pairs: Vec<(u32, u32)> = m.iter().map(|(a, b)| (*a, *b)).collect();
            pairs.encode(&mut buf);
        }
        // Seed ownership (who is charged with each implicit subscription).
        (self.seeds.len() as u32).encode(&mut buf);
        for (v, sew) in &self.seeds {
            v.encode(&mut buf);
            sew.encode(&mut buf);
        }
        std::fs::write(self.checkpoint_path(dir), &buf)?;
        Ok(())
    }

    fn handle_restore(&mut self, dir: &std::path::Path) -> Result<()> {
        let path = self.checkpoint_path(dir);
        let raw = match std::fs::read(&path) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let mut buf = raw.as_slice();
        let hops = u32::decode(&mut buf)? as usize;
        for hop_idx in 0..hops.min(self.reservoirs.len()) {
            let cells = u32::decode(&mut buf)?;
            for _ in 0..cells {
                let k = VertexId::decode(&mut buf)?;
                let r = helios_sampling::Reservoir::decode(&mut buf)?;
                self.reservoirs[hop_idx].restore(k, r);
            }
            let subs = u32::decode(&mut buf)?;
            for _ in 0..subs {
                let v = VertexId::decode(&mut buf)?;
                let pairs = Vec::<(u32, u32)>::decode(&mut buf)?;
                self.sample_subs[hop_idx].insert(v, pairs.into_iter().collect());
            }
        }
        let feats = u32::decode(&mut buf)?;
        for _ in 0..feats {
            let v = VertexId::decode(&mut buf)?;
            let f = Vec::<f32>::decode(&mut buf)?;
            let ts = Timestamp::decode(&mut buf)?;
            self.features.insert(v, (f, ts));
        }
        let fsubs = u32::decode(&mut buf)?;
        for _ in 0..fsubs {
            let v = VertexId::decode(&mut buf)?;
            let pairs = Vec::<(u32, u32)>::decode(&mut buf)?;
            self.feat_subs.insert(v, pairs.into_iter().collect());
        }
        let seeds = u32::decode(&mut buf)?;
        for _ in 0..seeds {
            let v = VertexId::decode(&mut buf)?;
            let sew = u32::decode(&mut buf)?;
            self.seeds.insert(v, sew);
        }
        Ok(())
    }
}

static SHARD_UPDATE: helios_types::profile::FrameLabel =
    helios_types::profile::FrameLabel::new("shard_update");

impl helios_actor::Actor for SamplerShard {
    type Msg = ShardMsg;

    fn on_start(&mut self) {
        self.profile_token = Some(helios_types::profile::register_thread(format!(
            "saw{}-sampler-{}",
            self.ctx.worker.0, self.shard_idx
        )));
    }

    fn handle(&mut self, msg: ShardMsg) {
        let busy_start = std::time::Instant::now();
        match msg {
            ShardMsg::Update(env) => {
                let _frame = helios_types::profile::push_frame(&SHARD_UPDATE);
                let shard_span = span("sampler.shard", env.trace);
                let trace = shard_span.ctx();
                self.propagate_ns = 0;
                match &env.update {
                    GraphUpdate::Vertex(v) => self.handle_vertex(v, env.enqueued_at, trace),
                    GraphUpdate::Edge(e) => self.handle_edge(e, env.enqueued_at, trace),
                }
                // Split the shard's processing time into local-state
                // mutation ("sampler-apply") and subscriber fan-out
                // ("samples-propagate"); the handlers accumulated the
                // fan-out share in `propagate_ns`.
                let total = busy_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let propagate = self.propagate_ns.min(total);
                self.ctx.metrics.apply_latency.record(total - propagate);
                self.ctx.metrics.propagate_latency.record(propagate);
                self.ctx.metrics.updates_processed.incr();
            }
            ShardMsg::Control(c) => {
                self.handle_control(c);
                self.ctx.metrics.control_processed.incr();
            }
            ShardMsg::Expire(h) => self.handle_expire(h),
            ShardMsg::Checkpoint(dir, ack) => {
                let _ = ack.send(self.handle_checkpoint(&dir));
            }
            ShardMsg::Restore(dir, ack) => {
                let _ = ack.send(self.handle_restore(&dir));
            }
            ShardMsg::Rescale { table, phase, ack } => {
                self.handle_rescale(&table, phase);
                let _ = ack.send(());
            }
            ShardMsg::Inspect(ack) => {
                let _ = ack.send(self.snapshot());
            }
        }
        if let Some(cell) = self.ctx.metrics.shard_busy_nanos.get(self.shard_idx) {
            cell.add(busy_start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
}

/// A running sampling worker: polling threads + sampling shard pool.
pub struct SamplingWorker {
    id: SamplingWorkerId,
    ctx: Arc<Ctx>,
    shards: Arc<ShardedPool<ShardMsg>>,
    metrics: Arc<SamplerMetrics>,
    stop: Arc<AtomicBool>,
    /// Highest route-table epoch whose Prepare scan every shard has run.
    prepared_epoch: Arc<AtomicU64>,
    /// Highest route-table epoch whose Commit scan every shard has run.
    committed_epoch: Arc<AtomicU64>,
    pollers: Vec<JoinHandle<()>>,
}

impl SamplingWorker {
    /// Start sampling worker `id` of `m`, routing seeds to serving
    /// workers through `router`. Counters register as
    /// `sampler.*{worker=<id>}` in `registry`.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        id: SamplingWorkerId,
        config: &HeliosConfig,
        query: &KHopQuery,
        broker: &Arc<Broker>,
        router: Arc<Router>,
        beacon: Beacon,
        registry: &Registry,
        recorder: &Arc<FlightRecorder>,
    ) -> Result<SamplingWorker> {
        let m = config.sampling_workers;
        let metrics = Arc::new(SamplerMetrics::registered(
            registry,
            id.0,
            config.sampling_threads,
        ));
        let ctx = Arc::new(Ctx {
            worker: id,
            m,
            router,
            dag: query.dag(),
            seed_type: query.seed_type(),
            broker: Arc::clone(broker),
            sample_topics: RwLock::new(FxHashMap::default()),
            control_topic: broker.topic(topics::CONTROL)?,
            metrics: Arc::clone(&metrics),
            recorder: Arc::clone(recorder),
        });
        let pool_ctx = Arc::clone(&ctx);
        let shards = Arc::new(ShardedPool::new(
            &format!("saw{}-sampler", id.0),
            config.sampling_threads,
            move |i| SamplerShard::new(Arc::clone(&pool_ctx), i),
        ));

        let stop = Arc::new(AtomicBool::new(false));
        let mut pollers = Vec::new();

        // Updates polling thread.
        {
            let mut consumer = broker.consumer(
                &format!("saw-{}", id.0),
                topics::UPDATES,
                &[PartitionId(id.0)],
            )?;
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let poll_batch = config.poll_batch;
            let poll_timeout = config.poll_timeout;
            let beacon2 = beacon.clone();
            pollers.push(
                std::thread::Builder::new()
                    .name(format!("saw{}-poll-updates", id.0))
                    .spawn(move || {
                        let _token = helios_types::profile::register_thread(format!(
                            "saw{}-poll-updates",
                            id.0
                        ));
                        while !stop.load(Ordering::Relaxed) {
                            beacon2.beat();
                            let recs = consumer.poll(poll_batch, poll_timeout);
                            let consumed_at = if recs.is_empty() { 0 } else { now_nanos() };
                            for rec in recs {
                                if rec.produced_at > 0 {
                                    metrics
                                        .update_dwell
                                        .record(consumed_at.saturating_sub(rec.produced_at));
                                }
                                match UpdateEnvelope::decode_from_slice(&rec.payload) {
                                    Ok(mut env) => {
                                        let key = env.update.routing_vertex().raw();
                                        metrics.updates_dispatched.incr();
                                        // Nest the shard's work under a
                                        // dispatch span so the trace shows
                                        // the poll → shard handoff.
                                        let poll_span = span("sampler.poll", env.trace);
                                        env.trace = poll_span.ctx();
                                        shards.send(key, ShardMsg::Update(env));
                                    }
                                    Err(_) => {
                                        // Corrupt record: count it processed so
                                        // drain accounting stays consistent.
                                        metrics.updates_dispatched.incr();
                                        metrics.updates_processed.incr();
                                    }
                                }
                            }
                            // Soft backpressure: let sampling threads drain.
                            while shards.backlog() > 100_000 && !stop.load(Ordering::Relaxed) {
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                        }
                    })
                    .expect("spawn updates poller"),
            );
        }

        // Control polling thread.
        {
            let mut consumer = broker.consumer(
                &format!("saw-ctl-{}", id.0),
                topics::CONTROL,
                &[PartitionId(id.0)],
            )?;
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            let poll_batch = config.poll_batch;
            let poll_timeout = config.poll_timeout;
            pollers.push(
                std::thread::Builder::new()
                    .name(format!("saw{}-poll-control", id.0))
                    .spawn(move || {
                        let _token = helios_types::profile::register_thread(format!(
                            "saw{}-poll-control",
                            id.0
                        ));
                        while !stop.load(Ordering::Relaxed) {
                            beacon.beat();
                            let recs = consumer.poll(poll_batch, poll_timeout);
                            for rec in recs {
                                match ControlMsg::decode_from_slice(&rec.payload) {
                                    Ok(msg) => {
                                        let key = msg.target_vertex().raw();
                                        metrics.control_dispatched.incr();
                                        shards.send(key, ShardMsg::Control(msg));
                                    }
                                    Err(_) => {
                                        metrics.control_dispatched.incr();
                                        metrics.control_processed.incr();
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn control poller"),
            );
        }

        let prepared_epoch = Arc::new(AtomicU64::new(0));
        let committed_epoch = Arc::new(AtomicU64::new(0));

        // Membership polling thread: applies Prepare/Commit rescale
        // broadcasts. Each message is fanned out to every shard and the
        // acks are awaited before the epoch watermark advances, so the
        // deployment can tell when *all* shards of this worker have run a
        // scan. Commit additionally installs the table (new traffic
        // routes to new owners) and invalidates cached topic handles.
        if let Ok(mut consumer) = broker.consumer(
            &format!("saw-mbr-{}", id.0),
            topics::MEMBERSHIP,
            &[PartitionId(id.0)],
        ) {
            let shards = Arc::clone(&shards);
            let stop = Arc::clone(&stop);
            let ctx2 = Arc::clone(&ctx);
            let prepared = Arc::clone(&prepared_epoch);
            let committed = Arc::clone(&committed_epoch);
            let poll_timeout = config.poll_timeout;
            pollers.push(
                std::thread::Builder::new()
                    .name(format!("saw{}-poll-membership", id.0))
                    .spawn(move || {
                        let _token = helios_types::profile::register_thread(format!(
                            "saw{}-poll-membership",
                            id.0
                        ));
                        while !stop.load(Ordering::Relaxed) {
                            for rec in consumer.poll(64, poll_timeout) {
                                let msg = match MembershipMsg::decode_from_slice(&rec.payload) {
                                    Ok(m) => m,
                                    Err(_) => continue,
                                };
                                let (phase, table) = match msg {
                                    MembershipMsg::Prepare { table } => {
                                        (RescalePhase::Prepare, Arc::new(table))
                                    }
                                    MembershipMsg::Commit { table } => {
                                        (RescalePhase::Commit, Arc::new(table))
                                    }
                                    MembershipMsg::Abort { table } => {
                                        (RescalePhase::Abort, Arc::new(table))
                                    }
                                };
                                if matches!(phase, RescalePhase::Commit) {
                                    ctx2.router.install(Arc::clone(&table));
                                    ctx2.invalidate_sample_topics(table.workers() as u32);
                                }
                                let (tx, rx) = crossbeam::channel::bounded(shards.shards());
                                for i in 0..shards.shards() {
                                    shards.send_to(
                                        i,
                                        ShardMsg::Rescale {
                                            table: Arc::clone(&table),
                                            phase,
                                            ack: tx.clone(),
                                        },
                                    );
                                }
                                drop(tx);
                                for _ in 0..shards.shards() {
                                    if rx.recv().is_err() {
                                        break;
                                    }
                                }
                                match phase {
                                    RescalePhase::Prepare => {
                                        prepared.fetch_max(table.epoch(), Ordering::SeqCst);
                                    }
                                    RescalePhase::Commit => {
                                        committed.fetch_max(table.epoch(), Ordering::SeqCst);
                                    }
                                    // Aborts are fire-and-forget: nothing
                                    // awaits them (FIFO ordering alone
                                    // guarantees they run before a retry's
                                    // Prepare scan).
                                    RescalePhase::Abort | RescalePhase::Rebuild => {}
                                }
                            }
                        }
                    })
                    .expect("spawn membership poller"),
            );
        }

        Ok(SamplingWorker {
            id,
            ctx,
            shards,
            metrics,
            stop,
            prepared_epoch,
            committed_epoch,
            pollers,
        })
    }

    /// Worker id.
    pub fn id(&self) -> SamplingWorkerId {
        self.id
    }

    /// Shared counters.
    pub fn metrics(&self) -> &Arc<SamplerMetrics> {
        &self.metrics
    }

    /// Pending messages in the sampling shards' mailboxes.
    pub fn backlog(&self) -> usize {
        self.shards.backlog()
    }

    /// A detached probe of the shard-mailbox backlog, for reporter
    /// threads that must not borrow the worker handle.
    pub fn backlog_probe(&self) -> impl Fn() -> usize + Send + Sync + 'static {
        let shards = Arc::clone(&self.shards);
        move || shards.backlog()
    }

    /// Trigger TTL expiry on every shard.
    pub fn expire_before(&self, horizon: Timestamp) {
        for i in 0..self.shards.shards() {
            self.shards.send_to(i, ShardMsg::Expire(horizon));
        }
    }

    /// Checkpoint all shard state into `dir`; blocks until done.
    pub fn checkpoint(&self, dir: &std::path::Path) -> Result<()> {
        let (tx, rx) = crossbeam::channel::bounded(self.shards.shards());
        for i in 0..self.shards.shards() {
            self.shards
                .send_to(i, ShardMsg::Checkpoint(dir.to_path_buf(), tx.clone()));
        }
        for _ in 0..self.shards.shards() {
            rx.recv()
                .map_err(|_| helios_types::HeliosError::Disconnected("checkpoint ack".into()))??;
        }
        Ok(())
    }

    /// Restore shard state from `dir`; blocks until done. Call before any
    /// updates are ingested.
    pub fn restore(&self, dir: &std::path::Path) -> Result<()> {
        let (tx, rx) = crossbeam::channel::bounded(self.shards.shards());
        for i in 0..self.shards.shards() {
            self.shards
                .send_to(i, ShardMsg::Restore(dir.to_path_buf(), tx.clone()));
        }
        for _ in 0..self.shards.shards() {
            rx.recv()
                .map_err(|_| helios_types::HeliosError::Disconnected("restore ack".into()))??;
        }
        Ok(())
    }

    /// Highest route-table epoch whose Prepare scan has completed on
    /// every shard of this worker.
    pub fn prepared_epoch(&self) -> u64 {
        self.prepared_epoch.load(Ordering::SeqCst)
    }

    /// Highest route-table epoch whose Commit scan has completed on every
    /// shard of this worker.
    pub fn committed_epoch(&self) -> u64 {
        self.committed_epoch.load(Ordering::SeqCst)
    }

    /// Deep-copy every shard's sampling state (consistent per shard, not
    /// across shards — quiesce first for a global view).
    pub fn inspect(&self) -> Result<Vec<ShardSnapshot>> {
        let (tx, rx) = crossbeam::channel::bounded(self.shards.shards());
        for i in 0..self.shards.shards() {
            self.shards.send_to(i, ShardMsg::Inspect(tx.clone()));
        }
        drop(tx);
        let mut out = Vec::with_capacity(self.shards.shards());
        for _ in 0..self.shards.shards() {
            out.push(
                rx.recv()
                    .map_err(|_| helios_types::HeliosError::Disconnected("inspect ack".into()))?,
            );
        }
        Ok(out)
    }

    /// Drop all subscriptions and re-derive them from reservoir contents
    /// under the router's current table; blocks until every shard is
    /// done. Used after restoring a checkpoint into a different worker
    /// topology, before any traffic flows.
    pub fn rebuild_subscriptions(&self) -> Result<()> {
        let table = self.ctx.router.table();
        let (tx, rx) = crossbeam::channel::bounded(self.shards.shards());
        for i in 0..self.shards.shards() {
            self.shards.send_to(
                i,
                ShardMsg::Rescale {
                    table: Arc::clone(&table),
                    phase: RescalePhase::Rebuild,
                    ack: tx.clone(),
                },
            );
        }
        drop(tx);
        for _ in 0..self.shards.shards() {
            rx.recv()
                .map_err(|_| helios_types::HeliosError::Disconnected("rebuild ack".into()))?;
        }
        Ok(())
    }

    /// Drop cached sample-topic handles outside the live worker set
    /// (called by the deployment after deleting a departed worker's
    /// topic, so a later re-creation is never shadowed by a stale handle).
    pub fn invalidate_sample_topics(&self, live_workers: u32) {
        self.ctx.invalidate_sample_topics(live_workers);
    }

    /// Stop polling and sampling threads (drains shard mailboxes first).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for p in self.pollers.drain(..) {
            let _ = p.join();
        }
        self.shards.stop();
    }
}

/// Timestamp helper re-exported for deployment-level ingestion stamping.
pub fn stamp_now() -> u64 {
    now_nanos()
}
