//! Elastic membership: live scale-out/scale-in of serving workers.
//!
//! [`HeliosDeployment::scale_to`] changes the number of logical serving
//! workers on a *running* deployment without dropping a query. The
//! handoff is a two-phase protocol over the `membership` topic:
//!
//! 1. **Prepare** — the rebalanced [`helios_membership::RouteTable`]
//!    (epoch + 1) is
//!    broadcast to every sampling worker. Each one charges the *new*
//!    owner of every moved seed through the §5.3 subscription path, whose
//!    idempotent snapshot-push is exactly the bootstrap a joining worker
//!    needs: reservoir contents and features stream into its cache while
//!    live traffic keeps routing by the old table.
//! 2. **Catch-up watermark** — the deployment waits until every sampling
//!    worker has run its Prepare scan, the transitive subscribe cascade
//!    has drained, and every serving worker has consumed its sample queue
//!    to the end. Only then is the new table safe to serve from.
//! 3. **Commit** — the table is broadcast again; samplers install it
//!    (new traffic routes to new owners) and discharge the old owners of
//!    moved seeds, whose refcounted unsubscribe cascade strips everything
//!    only they pinned. Scale-in then shuts the departed workers down and
//!    deletes their queues.
//!
//! The serving-set/table ordering is the zero-drop invariant: a scale-out
//! extends the serving set *before* Prepare, a scale-in truncates it only
//! *after* the commit watermark, so the router never points a query at a
//! worker that is not in the set.
//!
//! A handoff that misses its watermark deadline is **abandoned**: routing
//! stays on the old table, an `Abort` broadcast discharges the charges
//! the Prepare scans made, and the attempt's epoch is burned — the next
//! attempt allocates a strictly larger one, so its watermarks can only be
//! satisfied by its own scans.
//!
//! [`HeliosDeployment::start_autoscaler`] drives `scale_to` from
//! telemetry: a [`ScaleController`] watches consumer lag, the freshness
//! SLO burn rate and serve p99 per tick and issues hysteresis-damped
//! decisions. [`HeliosDeployment::register_scale_endpoint`] adds a
//! `/scale?target=N` manual override to the ops server.

use crate::deployment::{HeliosDeployment, ServingSet};
use crate::sampler::topics;
use crate::serving::ServingWorker;
use helios_membership::{MembershipMsg, ScaleController, ScalePolicy, ScaleSignals};
use helios_mq::TopicConfig;
use helios_telemetry::EventKind;
use helios_types::{Encode, HeliosError, PartitionId, Result, ServingWorkerId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stops the autoscaler thread on drop.
pub struct AutoscalerGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for AutoscalerGuard {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl HeliosDeployment {
    /// Rescale the serving fleet to `target` logical workers, live. Safe
    /// to call while queries and updates are flowing; serialized against
    /// concurrent rescales. Returns the committed routing epoch (the
    /// current one when `target` already matches).
    ///
    /// On timeout ([`crate::HeliosConfig::rescale_timeout`]) the rescale
    /// is abandoned *before* commit: routing is untouched, the attempt's
    /// pending subscription charges are rolled back with an `Abort`
    /// broadcast, and a scale-out's extra prepared workers stay warm in
    /// the serving set — harmless, and a retry picks them up. Every
    /// attempt uses a fresh epoch (never reusing an abandoned one), so a
    /// retry's watermarks can only be satisfied by its own scans.
    pub fn scale_to(&self, target: usize) -> Result<u64> {
        let _guard = self.rescale_lock.lock();
        if target == 0 {
            return Err(HeliosError::InvalidConfig(
                "cannot scale to zero serving workers".into(),
            ));
        }
        if target > self.config.route_slots as usize {
            return Err(HeliosError::InvalidConfig(format!(
                "target {target} exceeds route_slots {} (slots bound elasticity)",
                self.config.route_slots
            )));
        }
        let cur_table = self.router.table();
        let cur = cur_table.workers();
        if target == cur {
            return Ok(cur_table.epoch());
        }
        let started = Instant::now();
        let deadline = started + self.config.rescale_timeout;
        self.recorder.record(
            EventKind::HandoffStarted,
            u32::MAX,
            cur_table.epoch(),
            cur as u64,
            target as u64,
        );
        // Allocate an attempt-unique epoch: at least cur+1, and strictly
        // above every previous attempt's. An abandoned attempt leaves the
        // samplers' prepare/commit watermarks at its epoch; reusing it
        // would let a retry's watermark pass off the *abandoned* attempt's
        // scans and commit before the new owners are warm.
        let epoch = self
            .next_rescale_epoch
            .load(std::sync::atomic::Ordering::SeqCst)
            .max(cur_table.epoch() + 1);
        self.next_rescale_epoch
            .store(epoch + 1, std::sync::atomic::Ordering::SeqCst);
        let new_table = Arc::new(cur_table.rebalanced_at(target, epoch));

        // Scale-out: bring the joining workers up (queue, cache, threads)
        // and extend the serving set BEFORE any routing change, so the
        // moment a commit lands there is a worker behind every slot.
        // `have` (set size) can exceed `cur` (routed size) after an
        // abandoned scale-out; those workers are reused, not re-created.
        let have = self.serving.read().logical();
        if target > have {
            let query = self.coordinator.query().clone();
            let replicas = self.config.serving_replicas as u32;
            let mut joined: Vec<Arc<ServingWorker>> = Vec::new();
            for s in have as u32..target as u32 {
                // New sample queues charge the shared mq_log gauge, and
                // joining workers' caches join the memory ledger — the
                // accountant follows the fleet through rescales.
                self.broker.create_topic(
                    &topics::samples(s),
                    TopicConfig {
                        partitions: self.config.sample_queue_partitions,
                        mem: self.mq_log_gauge.clone(),
                        ..Default::default()
                    },
                )?;
                for r in 0..replicas {
                    let beacon = self.coordinator.register_worker(&format!("sew{s}-r{r}"));
                    let worker = ServingWorker::start(
                        ServingWorkerId(s),
                        r,
                        &self.config,
                        &query,
                        &self.broker,
                        beacon,
                        &self.telemetry,
                        &self.recorder,
                    )?;
                    crate::deployment::adopt_serving_mem(&self.accountant, &worker);
                    joined.push(worker);
                }
            }
            let mut guard = self.serving.write();
            let mut workers = guard.workers.clone();
            workers.extend(joined);
            *guard = Arc::new(ServingSet {
                replicas: guard.replicas,
                workers,
            });
        }

        // Phase 1: Prepare. New owners of moved seeds get charged (cache
        // warm-up through the idempotent snapshot path); routing unchanged.
        // On abandonment, broadcast Abort so samplers discharge the
        // attempt's pending charges: per-partition FIFO runs that scan
        // after this attempt's Prepare and before any retry's, so the
        // abandoned table's owners don't keep receiving fan-out forever.
        let prepared = self
            .broadcast_membership(&MembershipMsg::Prepare {
                table: (*new_table).clone(),
            })
            .and_then(|()| {
                self.await_watermark(deadline, "prepare scan", || {
                    self.sampling.iter().all(|w| w.prepared_epoch() >= epoch)
                })
            })
            .and_then(|()| self.await_catch_up(deadline));
        if let Err(e) = prepared {
            let _ = self.broadcast_membership(&MembershipMsg::Abort {
                table: (*new_table).clone(),
            });
            self.recorder.record(
                EventKind::HandoffAborted,
                u32::MAX,
                epoch,
                target as u64,
                started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
            );
            return Err(e);
        }

        // Phase 2: Commit. Samplers install the table (the router is
        // shared with the front-end, so queries repoint instantly) and
        // discharge the old owners of moved seeds.
        self.broadcast_membership(&MembershipMsg::Commit {
            table: (*new_table).clone(),
        })?;
        self.await_watermark(deadline, "commit scan", || {
            self.sampling.iter().all(|w| w.committed_epoch() >= epoch)
        })?;
        // Defense in depth: with zero sampling workers the broadcast has
        // no installer (idempotent — normally already done by a sampler).
        self.router.install(Arc::clone(&new_table));
        self.recorder.record(
            EventKind::EpochBump,
            u32::MAX,
            epoch,
            target as u64,
            new_table.moved_slots(&cur_table) as u64,
        );

        // Scale-in: the committed table routes nothing at any worker
        // >= target, so truncate the set, stop the removed workers, and
        // delete their queues (purging offsets, so a later scale-out's
        // re-created topic starts clean). The removed range is derived
        // from the *set* size, not the previously routed count `cur`: an
        // abandoned scale-out can leave warm spares above `cur`, and
        // truncation removes those too — their topics must go with them
        // or they'd linger with no consumer.
        let have = self.serving.read().logical();
        if target < have {
            let removed: Vec<Arc<ServingWorker>> = {
                let mut guard = self.serving.write();
                let mut workers = guard.workers.clone();
                let removed = workers.split_off(target * guard.replicas);
                *guard = Arc::new(ServingSet {
                    replicas: guard.replicas,
                    workers,
                });
                removed
            };
            for w in &removed {
                w.shutdown();
                self.coordinator
                    .deregister_worker(&format!("sew{}-r{}", w.id().0, w.replica()));
            }
            for s in target as u32..have as u32 {
                let _ = self.broker.delete_topic(&topics::samples(s));
            }
            for w in &self.sampling {
                w.invalidate_sample_topics(target as u32);
            }
        }

        self.recorder.record(
            EventKind::HandoffCompleted,
            u32::MAX,
            epoch,
            target as u64,
            started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64,
        );
        Ok(epoch)
    }

    /// Broadcast one membership message to every partition of the
    /// `membership` topic (one partition per sampling worker).
    fn broadcast_membership(&self, msg: &MembershipMsg) -> Result<()> {
        let topic = self.broker.topic(topics::MEMBERSHIP)?;
        let payload = msg.encode_to_bytes();
        for p in 0..self.config.sampling_workers as u32 {
            topic.produce_to(PartitionId(p), u64::from(p), payload.clone())?;
        }
        Ok(())
    }

    /// Spin (with a short sleep) until `done` or `deadline`.
    fn await_watermark(
        &self,
        deadline: Instant,
        what: &str,
        done: impl Fn() -> bool,
    ) -> Result<()> {
        loop {
            // Deadline first: a watermark reached *after* the deadline
            // still abandons. Checking `done()` first would let an
            // expired attempt race through whenever the samplers happen
            // to ack between the broadcast and the first check.
            let expired = Instant::now() >= deadline;
            if done() && !expired {
                return Ok(());
            }
            if expired {
                return Err(HeliosError::Timeout(format!(
                    "rescale abandoned: {what} watermark not reached"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// The §5.3 bootstrap catch-up: wait for the subscribe cascade the
    /// Prepare scans kicked off to drain (one round per DAG hop, since
    /// each subscribe can transitively trigger one more hop's worth), then
    /// for every serving worker to have consumed its sample queue to the
    /// observed end. After this, a joining worker's cache holds everything
    /// the old owner's did for the moved seeds.
    fn await_catch_up(&self, deadline: Instant) -> Result<()> {
        let rounds = self.coordinator.dag().len() + 1;
        for _ in 0..rounds {
            let control_end = self
                .broker
                .topic(topics::CONTROL)
                .map(|t| t.total_end_offset())
                .unwrap_or(0);
            self.await_watermark(deadline, "control drain", || {
                let done: u64 = self
                    .sampling
                    .iter()
                    .map(|w| w.metrics().control_processed.get())
                    .sum();
                done >= control_end
            })?;
        }
        self.await_watermark(deadline, "sample-queue catch-up", || {
            self.broker
                .lag_report()
                .iter()
                .filter(|e| e.topic.starts_with("samples-"))
                .all(|e| e.lag == 0)
        })
    }

    /// Register the `/scale?target=N` manual override on the deployment's
    /// dynamic ops routes. Responds `202` and runs the rescale on a
    /// background thread (a handoff can take seconds; an ops request must
    /// not), `409` while another rescale is in flight, `400` on a missing
    /// or unparseable target.
    pub fn register_scale_endpoint(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        // One endpoint-initiated rescale at a time. An atomic claim (not
        // a dropped `try_lock` probe) spans the busy-check *and* the
        // spawned rescale: of two concurrent requests exactly one wins
        // the claim and gets 202; the loser gets 409 instead of silently
        // queueing a second rescale behind the first.
        let inflight = Arc::new(std::sync::atomic::AtomicBool::new(false));
        self.dyn_routes.register("/scale", move |_method, query| {
            use std::sync::atomic::Ordering;
            let Some(target) = parse_target(query) else {
                return (
                    400,
                    "text/plain".to_string(),
                    "usage: /scale?target=<workers>\n".to_string(),
                );
            };
            let Some(deployment) = weak.upgrade() else {
                return (
                    503,
                    "text/plain".to_string(),
                    "deployment shut down\n".to_string(),
                );
            };
            let busy = inflight
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_err();
            // Advisory: also report 409 while a directly-invoked or
            // autoscaler-driven rescale holds the lock.
            if busy || deployment.rescale_lock.try_lock().is_none() {
                if !busy {
                    inflight.store(false, Ordering::SeqCst);
                }
                return (
                    409,
                    "text/plain".to_string(),
                    "rescale already in progress\n".to_string(),
                );
            }
            let claim = Arc::clone(&inflight);
            let _ = std::thread::Builder::new()
                .name("helios-scale".into())
                .spawn(move || {
                    // Release the claim even if scale_to panics.
                    struct Release(Arc<std::sync::atomic::AtomicBool>);
                    impl Drop for Release {
                        fn drop(&mut self) {
                            self.0.store(false, std::sync::atomic::Ordering::SeqCst);
                        }
                    }
                    let _release = Release(claim);
                    let _ = deployment.scale_to(target);
                });
            (
                202,
                "text/plain".to_string(),
                format!("scaling to {target}\n"),
            )
        });
    }

    /// Spawn the SLO-driven autoscaler: every `tick` it feeds the
    /// controller one [`ScaleSignals`] observation (worst sample-queue
    /// lag, freshness SLO short-window burn, worst-replica serve p99) and
    /// executes whatever decision comes back. The returned guard stops
    /// the thread on drop.
    pub fn start_autoscaler(
        self: &Arc<Self>,
        policy: ScalePolicy,
        tick: Duration,
    ) -> AutoscalerGuard {
        let weak = Arc::downgrade(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let mut controller = ScaleController::new(policy);
        let handle = std::thread::Builder::new()
            .name("helios-autoscaler".into())
            .spawn(move || {
                while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                    let wake = Instant::now() + tick;
                    while Instant::now() < wake {
                        if stop2.load(std::sync::atomic::Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(tick));
                    }
                    let Some(d) = weak.upgrade() else {
                        return;
                    };
                    let signals = d.scale_signals();
                    if let Some(decision) = controller.observe(&signals) {
                        // Failures (e.g. a timed-out handoff) leave routing
                        // untouched; the cooldown keeps us from hammering.
                        let _ = d.scale_to(decision.target());
                    }
                }
            })
            .expect("spawn autoscaler");
        AutoscalerGuard {
            stop,
            handle: Some(handle),
        }
    }

    /// One tick's autoscaler inputs, straight off live telemetry.
    pub fn scale_signals(&self) -> ScaleSignals {
        let max_sample_lag = self
            .broker
            .lag_report()
            .iter()
            .filter(|e| e.topic.starts_with("samples-"))
            .map(|e| e.lag)
            .max()
            .unwrap_or(0);
        let set = Arc::clone(&self.serving.read());
        let serve_p99_ms = set
            .workers
            .iter()
            .map(|w| w.serve_latency().percentile_ms(99.0))
            .fold(0.0f64, f64::max);
        ScaleSignals {
            workers: self.router.table().workers(),
            max_sample_lag,
            slo_short_burn: self.slo.short_burn(),
            serve_p99_ms,
        }
    }
}

/// Pull `target=<n>` out of an ops query string.
fn parse_target(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("target="))
        .and_then(|v| v.parse::<usize>().ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_membership::RouteTable;

    #[test]
    fn parse_target_handles_query_shapes() {
        assert_eq!(parse_target("target=4"), Some(4));
        assert_eq!(parse_target("foo=1&target=7&bar=2"), Some(7));
        assert_eq!(parse_target(""), None);
        assert_eq!(parse_target("target=x"), None);
        assert_eq!(parse_target("count=4"), None);
    }

    #[test]
    fn rebalance_table_is_what_scale_to_broadcasts() {
        // Sanity-pin the table math scale_to relies on: epoch bump +
        // bounded movement.
        let t = RouteTable::initial(2, 64);
        let out = t.rebalanced(4);
        assert_eq!(out.epoch(), 1);
        assert_eq!(out.workers(), 4);
        assert_eq!(out.moved_slots(&t), 32);
        let back = out.rebalanced(3);
        assert_eq!(back.epoch(), 2);
        assert!(back.assignment().iter().all(|&w| w < 3));
    }
}
