//! Per-process hosts: the pieces a multi-process deployment is built
//! from, mirroring GraphWorker's worker/partitioner/executer split.
//!
//! A single-process `HeliosDeployment` wires sampling workers to serving
//! workers through in-memory mq topics. Here the same unmodified workers
//! run in separate OS processes:
//!
//! - [`SamplingHost`] owns the update/control/membership topics and the
//!   sampling workers. Per serving worker, a **relay** thread consumes
//!   the local `samples-<s>` topic and ships each batch over TCP as a
//!   `Produce` frame, waiting for the ack before the next batch so the
//!   per-partition record order — the thing cache convergence depends
//!   on — is preserved end to end.
//! - [`ServeHost`] owns one serving worker and its local `samples-<s>`
//!   topic. Incoming `Produce` frames are appended partition-for-
//!   partition, key-for-key, so the worker's updater threads see exactly
//!   the sequence they would have seen in process, and serve replies are
//!   byte-identical to the in-process transport on the same stream.
//!
//! Both hosts expose the drain watermarks (`StatsOk`) a coordinator
//! needs to decide "all ingested data has been applied" — the
//! multi-process mirror of `HeliosDeployment::quiesce`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use helios_core::sampler::topics;
use helios_core::{Coordinator, HeliosConfig, SamplingWorker, ServingWorker, UpdateEnvelope};
use helios_membership::{RouteTable, Router};
use helios_mq::{Broker, Topic, TopicConfig};
use helios_query::KHopQuery;
use helios_telemetry::registry::Registry;
use helios_telemetry::{FlightRecorder, HealthReport, OpsServer, OpsState};
use helios_types::{
    hash::route, Encode, GraphUpdate, HeliosError, MemGauge, PartitionId, Result, SamplingWorkerId,
    ServingWorkerId, VertexId,
};
use parking_lot::Mutex;

use crate::server::{NetServer, NetService};
use crate::transport::{NetMetrics, TcpOptions, TcpTransport, Transport};
use crate::wire::{ErrCode, Payload, RelayRecord};

/// How long a relay sleeps between redelivery attempts to a serve
/// worker that is down or unreachable.
const RELAY_RETRY: Duration = Duration::from_millis(100);

fn mq_topic(partitions: u32, mem: &MemGauge) -> TopicConfig {
    TopicConfig {
        partitions,
        mem: mem.clone(),
        ..Default::default()
    }
}

/// Configuration for a [`ServeHost`] process.
pub struct ServeHostConfig {
    /// Which serving worker this process hosts.
    pub sew: u32,
    /// Wire listen address (`127.0.0.1:0` for ephemeral).
    pub listen: String,
    /// Ops/metrics HTTP address; `None` disables it.
    pub ops_addr: Option<String>,
    /// The deployment-wide config — must be identical on every process
    /// (partition counts and route slots are topology-defining).
    pub config: HeliosConfig,
    /// The query every process compiles.
    pub query: KHopQuery,
}

struct ServeHostService {
    sew: u32,
    worker: Arc<ServingWorker>,
    topic: Arc<Topic>,
}

impl NetService for ServeHostService {
    fn serve_encoded(&self, seed: VertexId, out: &mut Vec<u8>) -> Result<()> {
        self.worker.serve_encoded(seed, out)
    }

    fn handle(&self, payload: Payload) -> Payload {
        match payload {
            Payload::Produce { sew, records } => {
                if sew != self.sew {
                    return Payload::Error {
                        code: ErrCode::NotFound,
                        message: format!("this process hosts sew {}, not {sew}", self.sew),
                    };
                }
                let count = records.len() as u64;
                for rec in records {
                    if let Err(e) = self.topic.produce_to(rec.partition, rec.key, rec.payload) {
                        return Payload::Error {
                            code: ErrCode::from_error(&e),
                            message: e.to_string(),
                        };
                    }
                }
                Payload::Ack { count }
            }
            Payload::HealthReq => Payload::HealthOk {
                healthy: true,
                detail: format!(
                    "sew {} applied {} served {}",
                    self.sew,
                    self.worker.applied(),
                    self.worker.served()
                ),
            },
            Payload::StatsReq => Payload::StatsOk {
                entries: vec![
                    ("applied".into(), self.worker.applied()),
                    ("decode_errors".into(), self.worker.decode_errors()),
                    ("served".into(), self.worker.served()),
                ],
            },
            other => Payload::Error {
                code: ErrCode::NotFound,
                message: format!("serve worker does not handle {} frames", other.kind_name()),
            },
        }
    }
}

/// A serving-worker process: one unmodified [`ServingWorker`] behind a
/// [`NetServer`].
pub struct ServeHost {
    addr: SocketAddr,
    ops_addr: Option<SocketAddr>,
    server: Option<NetServer>,
    worker: Arc<ServingWorker>,
    registry: Arc<Registry>,
    _ops: Option<OpsServer>,
}

impl ServeHost {
    /// Start the host: local sample topic, serving worker, wire server.
    pub fn start(host: ServeHostConfig) -> Result<ServeHost> {
        let registry = Arc::new(Registry::new());
        let recorder = FlightRecorder::new(host.config.flight_recorder_capacity);
        let broker = Broker::new();
        let mq_mem = MemGauge::new();
        let topic = broker.create_topic(
            &topics::samples(host.sew),
            mq_topic(host.config.sample_queue_partitions, &mq_mem),
        )?;
        let coordinator = Coordinator::new(host.query.clone());
        let beacon = coordinator.register_worker(&format!("sew{}-r0", host.sew));
        let worker = ServingWorker::start(
            ServingWorkerId(host.sew),
            0,
            &host.config,
            &host.query,
            &broker,
            beacon,
            &registry,
            &recorder,
        )?;
        let service = Arc::new(ServeHostService {
            sew: host.sew,
            worker: Arc::clone(&worker),
            topic,
        });
        let net = NetMetrics::new(&registry, "worker");
        let server = NetServer::start(&host.listen, service, net, Some(Arc::clone(&recorder)))?;
        let ops = match &host.ops_addr {
            Some(addr) => {
                let snap = Arc::clone(&registry);
                let probe_worker = Arc::clone(&worker);
                let sew = host.sew;
                let state = OpsState::new(move || snap.snapshot())
                    .probe(move || {
                        HealthReport::new(
                            format!("serve-worker-{sew}"),
                            true,
                            format!("applied {}", probe_worker.applied()),
                        )
                    })
                    .recorder(Arc::clone(&recorder));
                Some(OpsServer::start(addr, state)?)
            }
            None => None,
        };
        Ok(ServeHost {
            addr: server.addr(),
            ops_addr: ops.as_ref().map(|o| o.addr()),
            server: Some(server),
            worker,
            registry,
            _ops: ops,
        })
    }

    /// The wire address clients (gateway, relays) connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ops address, when an ops server was started.
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops_addr
    }

    /// This process's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The hosted worker (tests assert on its counters).
    pub fn worker(&self) -> &Arc<ServingWorker> {
        &self.worker
    }

    /// Stop the wire server, then the worker.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        self.worker.shutdown();
    }
}

/// Configuration for a [`SamplingHost`] process.
pub struct SamplingHostConfig {
    /// Wire listen address for ingest/stats traffic.
    pub listen: String,
    /// Ops/metrics HTTP address; `None` disables it.
    pub ops_addr: Option<String>,
    /// The deployment-wide config (same instance everywhere).
    pub config: HeliosConfig,
    /// The query every process compiles.
    pub query: KHopQuery,
    /// Serve-worker wire addresses, indexed by serving worker id; one
    /// relay per entry.
    pub serve_workers: Vec<String>,
}

struct SamplingHostService {
    config: HeliosConfig,
    updates_topic: Arc<Topic>,
    control_topic: Arc<Topic>,
    sample_topics: Vec<Arc<Topic>>,
    workers: Arc<Mutex<Vec<SamplingWorker>>>,
    forwarded: Arc<Vec<AtomicU64>>,
}

impl SamplingHostService {
    fn ingest(&self, update: &GraphUpdate) -> Result<()> {
        let m = self.config.sampling_workers;
        match update {
            GraphUpdate::Vertex(_) => {
                self.produce_update(update.clone(), update.routing_vertex(), m)
            }
            GraphUpdate::Edge(e) => {
                for (rv, copy) in self.config.policy.copies(e) {
                    self.produce_update(GraphUpdate::Edge(copy), rv, m)?;
                }
                Ok(())
            }
        }
    }

    fn produce_update(&self, update: GraphUpdate, rv: VertexId, m: usize) -> Result<()> {
        let env = UpdateEnvelope::stamp(update);
        let partition = PartitionId(route(rv.raw(), m) as u32);
        self.updates_topic
            .produce_to(partition, rv.raw(), env.encode_to_bytes())?;
        Ok(())
    }

    fn stats(&self) -> Vec<(String, u64)> {
        let workers = self.workers.lock();
        let mut entries = vec![
            ("updates_end".into(), self.updates_topic.total_end_offset()),
            (
                "updates_done".into(),
                workers
                    .iter()
                    .map(|w| w.metrics().updates_processed.get())
                    .sum(),
            ),
            ("control_end".into(), self.control_topic.total_end_offset()),
            (
                "control_done".into(),
                workers
                    .iter()
                    .map(|w| w.metrics().control_processed.get())
                    .sum(),
            ),
            (
                "backlog".into(),
                workers.iter().map(|w| w.backlog() as u64).sum(),
            ),
        ];
        for (s, topic) in self.sample_topics.iter().enumerate() {
            entries.push((format!("samples_end_{s}"), topic.total_end_offset()));
            entries.push((
                format!("forwarded_{s}"),
                self.forwarded[s].load(Ordering::SeqCst),
            ));
        }
        entries
    }
}

impl NetService for SamplingHostService {
    fn serve_encoded(&self, _seed: VertexId, _out: &mut Vec<u8>) -> Result<()> {
        Err(HeliosError::NotFound(
            "sampling host does not serve queries".into(),
        ))
    }

    fn handle(&self, payload: Payload) -> Payload {
        match payload {
            Payload::Updates { updates } => {
                let count = updates.len() as u64;
                for update in &updates {
                    if let Err(e) = self.ingest(update) {
                        return Payload::Error {
                            code: ErrCode::from_error(&e),
                            message: e.to_string(),
                        };
                    }
                }
                Payload::Ack { count }
            }
            Payload::HealthReq => {
                let backlog: u64 = self.workers.lock().iter().map(|w| w.backlog() as u64).sum();
                Payload::HealthOk {
                    healthy: true,
                    detail: format!("backlog {backlog}"),
                }
            }
            Payload::StatsReq => Payload::StatsOk {
                entries: self.stats(),
            },
            other => Payload::Error {
                code: ErrCode::NotFound,
                message: format!("sampling host does not handle {} frames", other.kind_name()),
            },
        }
    }
}

/// A sampling process: the ingest topics, all sampling workers, and one
/// relay per serving worker shipping `samples-<s>` over TCP.
pub struct SamplingHost {
    addr: SocketAddr,
    ops_addr: Option<SocketAddr>,
    server: Option<NetServer>,
    workers: Arc<Mutex<Vec<SamplingWorker>>>,
    relays: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    service: Arc<SamplingHostService>,
    _ops: Option<OpsServer>,
}

impl SamplingHost {
    /// Start the host: topics, sampling workers, relays, wire server.
    pub fn start(host: SamplingHostConfig) -> Result<SamplingHost> {
        let config = host.config;
        let registry = Arc::new(Registry::new());
        let recorder = FlightRecorder::new(config.flight_recorder_capacity);
        let broker = Broker::new();
        let mq_mem = MemGauge::new();
        let m = config.sampling_workers as u32;
        let n = host.serve_workers.len() as u32;
        let updates_topic = broker.create_topic(topics::UPDATES, mq_topic(m, &mq_mem))?;
        let control_topic = broker.create_topic(topics::CONTROL, mq_topic(m, &mq_mem))?;
        broker.create_topic(topics::MEMBERSHIP, mq_topic(m, &mq_mem))?;
        let mut sample_topics = Vec::with_capacity(n as usize);
        for s in 0..n {
            sample_topics.push(broker.create_topic(
                &topics::samples(s),
                mq_topic(config.sample_queue_partitions, &mq_mem),
            )?);
        }
        let router = Arc::new(Router::new(RouteTable::initial(
            n as usize,
            config.route_slots as usize,
        )));
        let coordinator = Coordinator::new(host.query.clone());
        let mut workers = Vec::with_capacity(m as usize);
        for w in 0..m {
            let beacon = coordinator.register_worker(&format!("saw{w}"));
            workers.push(SamplingWorker::start(
                SamplingWorkerId(w),
                &config,
                &host.query,
                &broker,
                Arc::clone(&router),
                beacon,
                &registry,
                &recorder,
            )?);
        }
        let workers = Arc::new(Mutex::new(workers));
        let forwarded: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let net = NetMetrics::new(&registry, "relay");
        let stop = Arc::new(AtomicBool::new(false));
        let mut relays = Vec::with_capacity(n as usize);
        for (s, addr) in host.serve_workers.iter().enumerate() {
            let consumer =
                broker.consumer_all(&format!("relay-{s}"), &topics::samples(s as u32))?;
            let transport = TcpTransport::with_options(
                addr,
                TcpOptions {
                    pool: 1,
                    metrics: Arc::clone(&net),
                    ..TcpOptions::default()
                },
            );
            let stop = Arc::clone(&stop);
            let forwarded = Arc::clone(&forwarded);
            let poll_batch = config.poll_batch;
            let poll_timeout = config.poll_timeout;
            relays.push(
                std::thread::Builder::new()
                    .name(format!("relay-{s}"))
                    .spawn(move || {
                        relay_loop(
                            s,
                            consumer,
                            transport,
                            stop,
                            forwarded,
                            poll_batch,
                            poll_timeout,
                        );
                    })
                    .expect("spawn relay"),
            );
        }
        let service = Arc::new(SamplingHostService {
            config,
            updates_topic,
            control_topic,
            sample_topics,
            workers: Arc::clone(&workers),
            forwarded,
        });
        let net_server = NetMetrics::new(&registry, "worker");
        let server = NetServer::start(
            &host.listen,
            Arc::clone(&service) as Arc<dyn NetService>,
            net_server,
            Some(Arc::clone(&recorder)),
        )?;
        let ops = match &host.ops_addr {
            Some(addr) => {
                let snap = Arc::clone(&registry);
                let probe_workers = Arc::clone(&workers);
                let state = OpsState::new(move || snap.snapshot())
                    .probe(move || {
                        let backlog: u64 = probe_workers
                            .lock()
                            .iter()
                            .map(|w| w.backlog() as u64)
                            .sum();
                        HealthReport::new("sampling-host", true, format!("backlog {backlog}"))
                    })
                    .recorder(Arc::clone(&recorder));
                Some(OpsServer::start(addr, state)?)
            }
            None => None,
        };
        Ok(SamplingHost {
            addr: server.addr(),
            ops_addr: ops.as_ref().map(|o| o.addr()),
            server: Some(server),
            workers,
            relays,
            stop,
            registry,
            service,
            _ops: ops,
        })
    }

    /// The wire address the gateway/clients send ingest to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ops address, when an ops server was started.
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops_addr
    }

    /// This process's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Ingest a batch locally (launcher-side convenience; the wire path
    /// goes through `Updates` frames).
    pub fn ingest_batch(&self, updates: &[GraphUpdate]) -> Result<()> {
        for u in updates {
            self.service.ingest(u)?;
        }
        Ok(())
    }

    /// The drain watermarks this host reports over `StatsReq`.
    pub fn stats(&self) -> Vec<(String, u64)> {
        self.service.stats()
    }

    /// Stop relays (after they drain), workers, and the wire server.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for relay in self.relays.drain(..) {
            let _ = relay.join();
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        for worker in self.workers.lock().drain(..) {
            worker.shutdown();
        }
    }
}

/// Relay: poll the local sample topic, ship each batch as a `Produce`
/// frame, wait for the ack so per-partition order is preserved, retry
/// forever (the serve worker owns the data; dropping is not an option)
/// until the host shuts down.
fn relay_loop(
    sew: usize,
    mut consumer: helios_mq::Consumer,
    transport: TcpTransport,
    stop: Arc<AtomicBool>,
    forwarded: Arc<Vec<AtomicU64>>,
    poll_batch: usize,
    poll_timeout: Duration,
) {
    loop {
        let recs = consumer.poll(poll_batch, poll_timeout);
        if recs.is_empty() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        }
        let count = recs.len() as u64;
        let records: Vec<RelayRecord> = recs
            .into_iter()
            .map(|r| RelayRecord {
                partition: r.partition,
                key: r.key,
                payload: r.payload,
            })
            .collect();
        let request = Payload::Produce {
            sew: sew as u32,
            records,
        };
        loop {
            match transport.call(request.clone()) {
                Ok(Payload::Ack { .. }) => {
                    forwarded[sew].fetch_add(count, Ordering::SeqCst);
                    break;
                }
                Ok(_) | Err(_) => {
                    // Not acked: the batch was not applied. Redeliver the
                    // same frame — produce_to is append-only, and the
                    // receiver only acks after every record landed, so
                    // retrying a failed delivery cannot reorder.
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(RELAY_RETRY);
                }
            }
        }
    }
}
