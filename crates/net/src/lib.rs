//! # helios-net — the network plane
//!
//! Everything the rest of the workspace simulates in-process, this crate
//! makes real: a compact binary [`wire`] protocol, a [`transport::Transport`]
//! abstraction with in-process and TCP backends, a frame [`server`], a
//! pipelined [`client`] SDK, a front-end [`gateway`] with admission
//! control, and [`proc`] — the per-process hosts that a multi-process
//! deployment is assembled from.
//!
//! Design rules inherited from the rest of the workspace:
//!
//! - **No new dependencies.** TCP is hand-rolled on `std::net`, in the
//!   same style as `helios-telemetry`'s ops server.
//! - **The in-process transport is the default.** Every existing test
//!   and bench runs unchanged through [`transport::InProcTransport`];
//!   TCP is opt-in via the `helios` launcher binary.
//! - **Decode failures are data, not crashes.** Malformed frames count
//!   into the `serving.decode_errors` pipeline and close only the one
//!   offending connection.

pub mod client;
pub mod gateway;
pub mod proc;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{Client, Completion};
pub use gateway::{Gateway, GatewayConfig};
pub use proc::{SamplingHost, SamplingHostConfig, ServeHost, ServeHostConfig};
pub use server::{NetServer, NetService};
pub use transport::{InProcTransport, NetMetrics, TcpOptions, TcpTransport, Transport};
pub use wire::{ErrCode, Frame, Payload, RelayRecord};
