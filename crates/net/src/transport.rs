//! The transport abstraction: one trait, two backends.
//!
//! [`Transport`] is how anything in Helios talks to a remote component —
//! the gateway to its workers, the client SDK to the gateway, the
//! sampling host's relays to serving workers. The **in-process** impl
//! wraps a [`NetService`] directly (zero serialization on the request
//! path, the reply still travels as encoded bytes so both backends are
//! observationally identical), and is what every existing test and bench
//! runs on. The **TCP** impl speaks the [`crate::wire`] protocol over
//! pooled, pipelined `std::net::TcpStream` connections.
//!
//! Backpressure is built in: each transport carries a bounded in-flight
//! budget implemented as a counting semaphore; [`Transport::begin`]
//! blocks once the budget is full, so a caller that pipelines cannot
//! build an unbounded queue. A request is in flight from the moment it
//! is written until its reply (or failure) lands in the completion's
//! channel — the permit is parked next to the reply waiter and freed by
//! the reader thread, so a caller may issue arbitrarily many `begin`s
//! before harvesting any completion without deadlocking on itself.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use helios_telemetry::registry::{Counter, Gauge, Registry};
use helios_types::{HeliosError, Result, VertexId};
use parking_lot::Mutex;

use crate::server::NetService;
use crate::wire::{self, Payload, KIND_NAMES};

/// Default in-flight request budget per transport.
pub const DEFAULT_INFLIGHT: usize = 128;
/// Default request timeout for [`Transport::call`].
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);
/// Default number of pooled connections per TCP transport.
pub const DEFAULT_POOL: usize = 4;

/// Shared `net.*` instruments for one endpoint role (`client`, `worker`,
/// `gateway`). Counter handles are pre-resolved per frame kind so the
/// hot path never touches the registry's lock.
pub struct NetMetrics {
    frames: Vec<Arc<Counter>>,
    bytes_tx: Arc<Counter>,
    bytes_rx: Arc<Counter>,
    connections: Arc<Gauge>,
    decode_errors: Arc<Counter>,
}

impl NetMetrics {
    /// Resolve the instrument set for `role` in `registry`.
    pub fn new(registry: &Registry, role: &str) -> Arc<NetMetrics> {
        let frames = KIND_NAMES
            .iter()
            .map(|kind| registry.counter("net.frames_total", &[("kind", kind), ("role", role)]))
            .collect();
        Arc::new(NetMetrics {
            frames,
            bytes_tx: registry.counter("net.bytes_total", &[("direction", "tx"), ("role", role)]),
            bytes_rx: registry.counter("net.bytes_total", &[("direction", "rx"), ("role", role)]),
            connections: registry.gauge("net.connections", &[("role", role)]),
            decode_errors: registry.counter(
                "serving.decode_errors",
                &[("component", "net"), ("role", role)],
            ),
        })
    }

    /// Instruments that count into `/dev/null`, for transports built
    /// without a registry (tests, throwaway clients).
    pub fn disabled() -> Arc<NetMetrics> {
        let registry = Registry::new();
        NetMetrics::new(&registry, "disabled")
    }

    /// Record one frame crossing the wire.
    pub fn frame(&self, kind: u8, bytes: usize, tx: bool) {
        let slot = self.frames.get(kind as usize).unwrap_or(&self.frames[0]);
        slot.incr();
        if tx {
            self.bytes_tx.add(bytes as u64);
        } else {
            self.bytes_rx.add(bytes as u64);
        }
    }

    /// Adjust the live-connection gauge.
    pub fn connection_delta(&self, delta: i64) {
        self.connections.add(delta);
    }

    /// Count one undecodable frame into the decode-error pipeline.
    pub fn decode_error(&self) {
        self.decode_errors.incr();
    }
}

/// A counting semaphore over a bounded channel: acquiring pushes a token
/// (blocks at capacity), releasing pops one.
#[derive(Clone)]
pub(crate) struct Budget {
    tx: Sender<()>,
    rx: Receiver<()>,
}

impl Budget {
    pub(crate) fn new(permits: usize) -> Budget {
        let (tx, rx) = bounded(permits.max(1));
        Budget { tx, rx }
    }

    /// Block until a permit is free, then take it.
    pub(crate) fn acquire(&self) -> Permit {
        self.tx
            .send(())
            .expect("budget channel lives as long as both ends");
        Permit {
            rx: self.rx.clone(),
            held: true,
        }
    }

    /// Take a permit only if one is free right now.
    pub(crate) fn try_acquire(&self) -> Option<Permit> {
        match self.tx.try_send(()) {
            Ok(()) => Some(Permit {
                rx: self.rx.clone(),
                held: true,
            }),
            Err(_) => None,
        }
    }
}

/// RAII guard for one in-flight slot; releases on drop.
pub(crate) struct Permit {
    rx: Receiver<()>,
    held: bool,
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.held {
            let _ = self.rx.try_recv();
        }
    }
}

/// A pending reply: the async-style half of [`Transport::begin`].
///
/// The transport's in-flight permit is released when the reply arrives
/// (by the reader thread), not when this completion is consumed — an
/// unharvested completion costs one buffered reply, never a budget slot.
pub struct Completion {
    state: CompletionState,
}

enum CompletionState {
    Ready(Option<Result<Payload>>),
    Pending(Receiver<Result<Payload>>),
}

impl Completion {
    /// A completion that resolved eagerly (in-process transports).
    pub fn ready(result: Result<Payload>) -> Completion {
        Completion {
            state: CompletionState::Ready(Some(result)),
        }
    }

    pub(crate) fn pending(rx: Receiver<Result<Payload>>) -> Completion {
        Completion {
            state: CompletionState::Pending(rx),
        }
    }

    /// Block until the reply arrives. Error replies come back as `Err`.
    pub fn wait(self) -> Result<Payload> {
        self.wait_timeout(DEFAULT_TIMEOUT)
    }

    /// Block up to `timeout` for the reply.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<Payload> {
        match &mut self.state {
            CompletionState::Ready(slot) => slot.take().expect("completion consumed once"),
            CompletionState::Pending(rx) => match rx.recv_timeout(timeout) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => {
                    Err(HeliosError::Timeout(format!("no reply within {timeout:?}")))
                }
                Err(RecvTimeoutError::Disconnected) => Err(HeliosError::Disconnected(
                    "connection closed with the request in flight".into(),
                )),
            },
        }
    }
}

/// Unwrap a wire-level error payload into `Err`, pass everything else.
fn into_result(payload: Payload) -> Result<Payload> {
    match payload {
        Payload::Error { code, message } => Err(code.to_error(&message)),
        other => Ok(other),
    }
}

/// One remote (or remote-shaped) Helios endpoint.
///
/// Contract: `call` is `begin` + wait; replies pair with requests in any
/// order (pipelining safe); a transport never queues more than its
/// in-flight budget — `begin` blocks instead; wire `Error` frames and
/// transport failures both surface as `Err`, so callers handle one
/// error channel.
pub trait Transport: Send + Sync {
    /// Send one request and block for its reply.
    fn call(&self, payload: Payload) -> Result<Payload> {
        self.call_with_timeout(payload, DEFAULT_TIMEOUT)
    }

    /// Send one request and block up to `timeout` for its reply.
    fn call_with_timeout(&self, payload: Payload, timeout: Duration) -> Result<Payload> {
        self.begin(payload)?.wait_timeout(timeout)
    }

    /// Issue a request without waiting; the reply arrives through the
    /// returned [`Completion`]. Blocks only when the in-flight budget
    /// is exhausted.
    fn begin(&self, payload: Payload) -> Result<Completion>;

    /// Human-readable peer address for logs and health reports.
    fn peer(&self) -> String;
}

/// The in-process backend: calls the service on the caller's thread.
///
/// Requests skip serialization entirely; serve replies are the same
/// encoded bytes TCP would carry, so results are byte-identical across
/// backends by construction.
pub struct InProcTransport {
    service: Arc<dyn NetService>,
    budget: Budget,
    name: String,
}

impl InProcTransport {
    /// Wrap `service` with the default in-flight budget.
    pub fn new(service: Arc<dyn NetService>) -> InProcTransport {
        InProcTransport::with_budget(service, DEFAULT_INFLIGHT)
    }

    /// Wrap `service` with an explicit in-flight budget.
    pub fn with_budget(service: Arc<dyn NetService>, permits: usize) -> InProcTransport {
        InProcTransport {
            service,
            budget: Budget::new(permits),
            name: "inproc".into(),
        }
    }
}

impl Transport for InProcTransport {
    fn begin(&self, payload: Payload) -> Result<Completion> {
        let _permit = self.budget.acquire();
        let reply = match payload {
            Payload::Serve { seed } => {
                let mut out = Vec::new();
                match self.service.serve_encoded(seed, &mut out) {
                    Ok(()) => Payload::ServeOk { bytes: out.into() },
                    Err(e) => Payload::Error {
                        code: wire::ErrCode::from_error(&e),
                        message: e.to_string(),
                    },
                }
            }
            other => self.service.handle(other),
        };
        Ok(Completion::ready(into_result(reply)))
    }

    fn peer(&self) -> String {
        self.name.clone()
    }
}

/// One pipelined TCP connection: a writer guarded by a mutex, a reader
/// thread demultiplexing replies by request id.
struct Conn {
    writer: Mutex<BufWriter<TcpStream>>,
    /// Reply waiters by request id; each entry parks the in-flight
    /// permit, which the reader thread frees when the reply lands.
    pending: Mutex<HashMap<u64, (Sender<Result<Payload>>, Option<Permit>)>>,
    next_id: AtomicU64,
    dead: AtomicBool,
    stream: TcpStream,
    metrics: Arc<NetMetrics>,
    scratch: Mutex<BytesMut>,
}

impl Conn {
    fn open(addr: &str, metrics: Arc<NetMetrics>) -> Result<Arc<Conn>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let conn = Arc::new(Conn {
            writer: Mutex::new(writer),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            dead: AtomicBool::new(false),
            stream,
            metrics: Arc::clone(&metrics),
            scratch: Mutex::new(BytesMut::with_capacity(256)),
        });
        metrics.connection_delta(1);
        let reader_conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("net-client-{addr}"))
            .spawn(move || reader_conn.read_loop())
            .expect("spawn net client reader");
        Ok(conn)
    }

    /// Reader thread: demux replies until the socket dies, then fail
    /// every in-flight request so no caller hangs.
    fn read_loop(self: Arc<Conn>) {
        let mut reader = match self.stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(_) => {
                self.poison("could not clone stream");
                return;
            }
        };
        loop {
            match wire::read_frame(&mut reader) {
                Ok(Some((frame, bytes))) => {
                    self.metrics.frame(frame.payload.kind(), bytes, false);
                    let waiter = self.pending.lock().remove(&frame.request_id);
                    if let Some((tx, permit)) = waiter {
                        let _ = tx.send(into_result(frame.payload));
                        drop(permit); // the request is no longer in flight
                    }
                }
                Ok(None) => {
                    self.poison("peer closed the connection");
                    return;
                }
                Err(e) => {
                    if matches!(e, HeliosError::Codec(_)) {
                        self.metrics.decode_error();
                    }
                    self.poison(&format!("reply stream failed: {e}"));
                    return;
                }
            }
        }
    }

    fn poison(&self, why: &str) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            self.metrics.connection_delta(-1);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        let waiters: Vec<_> = self.pending.lock().drain().collect();
        for (_, (tx, permit)) in waiters {
            let _ = tx.send(Err(HeliosError::Disconnected(why.into())));
            drop(permit);
        }
    }

    /// Register a waiter (parking `permit` until the reply arrives),
    /// write the frame, return the reply channel.
    fn request(
        &self,
        payload: &Payload,
        permit: Option<Permit>,
    ) -> Result<Receiver<Result<Payload>>> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(HeliosError::Disconnected("connection is dead".into()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(id, (tx, permit));
        let wrote = {
            let mut w = self.writer.lock();
            let mut scratch = self.scratch.lock();
            wire::write_frame(&mut *w, id, payload, &mut scratch)
                .and_then(|n| w.flush().map(|()| n).map_err(HeliosError::from))
        };
        match wrote {
            Ok(bytes) => {
                self.metrics.frame(payload.kind(), bytes, true);
                Ok(rx)
            }
            Err(e) => {
                self.pending.lock().remove(&id);
                self.poison(&format!("write failed: {e}"));
                Err(e)
            }
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            self.metrics.connection_delta(-1);
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Tuning knobs for a [`TcpTransport`].
pub struct TcpOptions {
    /// Pooled connections to the peer (round-robined).
    pub pool: usize,
    /// Bounded in-flight request budget across the whole pool.
    pub inflight: usize,
    /// Instruments; [`NetMetrics::disabled`] when unobserved.
    pub metrics: Arc<NetMetrics>,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        TcpOptions {
            pool: DEFAULT_POOL,
            inflight: DEFAULT_INFLIGHT,
            metrics: NetMetrics::disabled(),
        }
    }
}

/// The TCP backend: a lazily-(re)connected pool of pipelined
/// connections speaking the [`crate::wire`] protocol.
pub struct TcpTransport {
    addr: String,
    conns: Mutex<Vec<Option<Arc<Conn>>>>,
    rr: AtomicUsize,
    budget: Budget,
    metrics: Arc<NetMetrics>,
}

impl TcpTransport {
    /// Create a transport to `addr` with default options. Connections
    /// are opened lazily on first use and reopened after failures.
    pub fn connect(addr: &str) -> TcpTransport {
        TcpTransport::with_options(addr, TcpOptions::default())
    }

    /// Create a transport with explicit pool/budget/instrumentation.
    pub fn with_options(addr: &str, options: TcpOptions) -> TcpTransport {
        TcpTransport {
            addr: addr.to_string(),
            conns: Mutex::new((0..options.pool.max(1)).map(|_| None).collect()),
            rr: AtomicUsize::new(0),
            budget: Budget::new(options.inflight),
            metrics: options.metrics,
        }
    }

    fn conn(&self) -> Result<Arc<Conn>> {
        let mut conns = self.conns.lock();
        let slot = self.rr.fetch_add(1, Ordering::Relaxed) % conns.len();
        if let Some(conn) = &conns[slot] {
            if !conn.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(conn));
            }
        }
        let fresh = Conn::open(&self.addr, Arc::clone(&self.metrics))?;
        conns[slot] = Some(Arc::clone(&fresh));
        Ok(fresh)
    }
}

impl Transport for TcpTransport {
    fn begin(&self, payload: Payload) -> Result<Completion> {
        let permit = self.budget.acquire();
        let rx = self.conn()?.request(&payload, Some(permit))?;
        Ok(Completion::pending(rx))
    }

    fn peer(&self) -> String {
        self.addr.clone()
    }
}

/// Serve `seed` through any transport, appending the encoded subgraph
/// to `out` — the transport-generic mirror of `serve_encoded`.
pub fn serve_via(transport: &dyn Transport, seed: VertexId, out: &mut Vec<u8>) -> Result<()> {
    match transport.call(Payload::Serve { seed })? {
        Payload::ServeOk { bytes } => {
            out.extend_from_slice(&bytes);
            Ok(())
        }
        other => Err(HeliosError::Codec(format!(
            "expected serve_ok reply, got {}",
            other.kind_name()
        ))),
    }
}
