//! The front-end gateway: one address for the whole fleet.
//!
//! Clients speak the wire protocol to the gateway; the gateway routes
//! serve requests to the owning serving worker (same slot-based
//! `RouteTable` the in-process router uses, so a seed lands on the same
//! worker either way), forwards update batches to the sampling host, and
//! aggregates fleet health behind one `/healthz`.
//!
//! ## Admission control
//!
//! The gateway holds a bounded in-flight budget. A serve request that
//! arrives with the budget full is **shed**: it gets an immediate
//! `Error { Overloaded }` reply (counted in `gateway.shed_total`) instead
//! of a queue slot. Admitted requests are pipelined downstream; per
//! client connection, replies are written in request order by a
//! dedicated responder thread, so a slow seed never deadlocks the
//! stream — and nothing in the gateway queues without a bound.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use helios_membership::RouteTable;
use helios_telemetry::registry::{Counter, Gauge, Registry};
use helios_telemetry::{HealthReport, Histogram, OpsServer, OpsState};
use helios_types::Result;
use parking_lot::Mutex;

use crate::transport::{Completion, NetMetrics, TcpOptions, TcpTransport, Transport};
use crate::wire::{self, ErrCode, Payload};

/// Gateway tuning and topology.
pub struct GatewayConfig {
    /// Address to listen on for client traffic (`127.0.0.1:0` works).
    pub listen: String,
    /// Serving-worker endpoints, indexed by serving worker id.
    pub workers: Vec<String>,
    /// Sampling-host endpoint for update ingestion, when ingest flows
    /// through the gateway.
    pub sampling: Option<String>,
    /// Bounded in-flight serve budget; requests beyond it are shed.
    pub admission: usize,
    /// Route-table slots. Must match the serving tier's
    /// `HeliosConfig::route_slots`, or seeds land on workers whose
    /// caches never saw them; the default mirrors the config default.
    pub route_slots: usize,
    /// Per-worker health probe timeout.
    pub probe_timeout: Duration,
    /// Ops/metrics HTTP address; `None` disables the ops server.
    pub ops_addr: Option<String>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            listen: "127.0.0.1:0".into(),
            workers: Vec::new(),
            sampling: None,
            admission: 256,
            route_slots: 64,
            probe_timeout: Duration::from_millis(500),
            ops_addr: None,
        }
    }
}

struct GatewayMetrics {
    shed: Arc<Counter>,
    admitted: Arc<Counter>,
    inflight: Arc<Gauge>,
    forward_errors: Arc<Counter>,
    forward_latency: Arc<Histogram>,
}

impl GatewayMetrics {
    fn new(registry: &Registry) -> Arc<GatewayMetrics> {
        Arc::new(GatewayMetrics {
            shed: registry.counter("gateway.shed_total", &[]),
            admitted: registry.counter("gateway.admitted_total", &[]),
            inflight: registry.gauge("gateway.inflight", &[]),
            forward_errors: registry.counter("gateway.forward_errors", &[]),
            forward_latency: registry.histogram("gateway.forward_latency_us", &[]),
        })
    }
}

/// One reply waiting its turn on a client connection: either resolved
/// already (sheds, local answers) or pending downstream.
enum Reply {
    Ready(Payload),
    Forwarded {
        completion: Completion,
        started: Instant,
        /// Admitted serves release one admission slot on completion.
        admitted: bool,
    },
}

struct Shared {
    table: RouteTable,
    workers: Vec<Arc<TcpTransport>>,
    sampling: Option<Arc<TcpTransport>>,
    admission: usize,
    inflight: AtomicUsize,
    metrics: Arc<GatewayMetrics>,
    net: Arc<NetMetrics>,
}

/// A running gateway process core.
pub struct Gateway {
    addr: SocketAddr,
    ops_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    _ops: Option<OpsServer>,
    registry: Arc<Registry>,
}

impl Gateway {
    /// Start the gateway: bind the client listener, connect downstream
    /// transports lazily, and (optionally) start the ops server with
    /// fleet-aggregated health probes.
    pub fn start(config: GatewayConfig) -> std::io::Result<Gateway> {
        let registry = Arc::new(Registry::new());
        let metrics = GatewayMetrics::new(&registry);
        let net = NetMetrics::new(&registry, "gateway");
        let workers: Vec<Arc<TcpTransport>> = config
            .workers
            .iter()
            .map(|addr| {
                Arc::new(TcpTransport::with_options(
                    addr,
                    TcpOptions {
                        // Big enough that admission control, not the
                        // transport budget, is the binding constraint.
                        inflight: config.admission.max(1) * 2,
                        metrics: Arc::clone(&net),
                        ..TcpOptions::default()
                    },
                ))
            })
            .collect();
        let sampling = config.sampling.as_ref().map(|addr| {
            Arc::new(TcpTransport::with_options(
                addr,
                TcpOptions {
                    metrics: Arc::clone(&net),
                    ..TcpOptions::default()
                },
            ))
        });
        let shared = Arc::new(Shared {
            table: RouteTable::initial(workers.len().max(1), config.route_slots),
            workers,
            sampling,
            admission: config.admission.max(1),
            inflight: AtomicUsize::new(0),
            metrics: Arc::clone(&metrics),
            net: Arc::clone(&net),
        });

        let ops = match &config.ops_addr {
            Some(addr) => {
                let state = ops_state(&registry, &shared, config.probe_timeout);
                Some(OpsServer::start(addr, state)?)
            }
            None => None,
        };
        let ops_addr = ops.as_ref().map(|o| o.addr());

        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("gateway-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                if stream.set_nodelay(true).is_err() {
                                    continue;
                                }
                                if let Ok(track) = stream.try_clone() {
                                    conns.lock().push(track);
                                }
                                let shared = Arc::clone(&shared);
                                let _ = std::thread::Builder::new()
                                    .name(format!("gateway-conn-{peer}"))
                                    .spawn(move || client_connection(stream, shared));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                })
                .expect("spawn gateway accept loop")
        };
        Ok(Gateway {
            addr,
            ops_addr,
            stop,
            accept: Some(accept),
            conns,
            _ops: ops,
            registry,
        })
    }

    /// The client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ops server address, when one was started.
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops_addr
    }

    /// The gateway's metrics registry (`gateway.*` and `net.*`).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Stop accepting and close every client connection.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Build the gateway's ops state: metrics snapshot plus one health
/// probe per downstream worker, each bounded by `probe_timeout` so a
/// dead worker turns into a 503 with its id, not a hang.
fn ops_state(registry: &Arc<Registry>, shared: &Arc<Shared>, probe_timeout: Duration) -> OpsState {
    let snap = Arc::clone(registry);
    let mut state = OpsState::new(move || snap.snapshot());
    for (sew, transport) in shared.workers.iter().enumerate() {
        let transport = Arc::clone(transport);
        state = state.probe(move || worker_probe(sew, &transport, probe_timeout));
    }
    let shed_shared = Arc::clone(shared);
    state = state.probe(move || {
        let inflight = shed_shared.inflight.load(Ordering::Relaxed);
        HealthReport::new(
            "gateway-admission",
            inflight <= shed_shared.admission,
            format!(
                "inflight {inflight}/{} shed_total {}",
                shed_shared.admission,
                shed_shared.metrics.shed.get()
            ),
        )
    });
    state
}

fn worker_probe(sew: usize, transport: &Arc<TcpTransport>, timeout: Duration) -> HealthReport {
    let component = format!("serve-worker-{sew}");
    let begun = transport.begin(Payload::HealthReq);
    let reply = begun.and_then(|c| c.wait_timeout(timeout));
    match reply {
        Ok(Payload::HealthOk { healthy, detail }) => HealthReport::new(component, healthy, detail),
        Ok(other) => HealthReport::new(
            component,
            false,
            format!("unexpected probe reply {}", other.kind_name()),
        ),
        Err(e) => HealthReport::new(
            component,
            false,
            format!("unreachable at {}: {e}", transport.peer()),
        ),
    }
}

/// Per-connection reader: decode, admit/shed/route, enqueue the reply
/// slot in request order for the responder thread.
fn client_connection(stream: TcpStream, shared: Arc<Shared>) {
    shared.net.connection_delta(1);
    let (reply_tx, reply_rx) = unbounded::<(u64, Reply)>();
    let responder = {
        let writer = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                shared.net.connection_delta(-1);
                return;
            }
        };
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("gateway-responder".into())
            .spawn(move || respond_loop(writer, reply_rx, shared))
            .expect("spawn gateway responder")
    };

    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.net.connection_delta(-1);
            return;
        }
    });
    loop {
        let (frame, bytes) = match wire::read_frame(&mut reader) {
            Ok(Some(got)) => got,
            Ok(None) => break,
            Err(e) => {
                if matches!(e, helios_types::HeliosError::Codec(_)) {
                    shared.net.decode_error();
                    let _ = reply_tx.send((
                        0,
                        Reply::Ready(Payload::Error {
                            code: ErrCode::Codec,
                            message: e.to_string(),
                        }),
                    ));
                }
                break;
            }
        };
        shared.net.frame(frame.payload.kind(), bytes, false);
        let reply = route_request(&shared, frame.payload);
        if reply_tx.send((frame.request_id, reply)).is_err() {
            break;
        }
    }
    // Closing the channel drains the responder; it writes what is
    // already in flight and exits.
    drop(reply_tx);
    let _ = responder.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
    shared.net.connection_delta(-1);
}

/// Decide what happens to one request: shed, forward, or answer locally.
fn route_request(shared: &Arc<Shared>, payload: Payload) -> Reply {
    match payload {
        Payload::Serve { seed } => {
            // Admission control: reserve a slot or shed. The slot is
            // released by the responder when the reply is consumed.
            let admitted = shared
                .inflight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < shared.admission).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                shared.metrics.shed.incr();
                return Reply::Ready(Payload::Error {
                    code: ErrCode::Overloaded,
                    message: format!("admission budget {} full", shared.admission),
                });
            }
            shared.metrics.admitted.incr();
            shared
                .metrics
                .inflight
                .set(shared.inflight.load(Ordering::Relaxed) as i64);
            let sew = shared.table.owner_of(seed).0 as usize % shared.workers.len();
            match shared.workers[sew].begin(Payload::Serve { seed }) {
                Ok(completion) => Reply::Forwarded {
                    completion,
                    started: Instant::now(),
                    admitted: true,
                },
                Err(e) => {
                    shared.inflight.fetch_sub(1, Ordering::SeqCst);
                    shared.metrics.forward_errors.incr();
                    Reply::Ready(error_payload(&e))
                }
            }
        }
        Payload::Updates { updates } => match &shared.sampling {
            Some(t) => match t.begin(Payload::Updates { updates }) {
                Ok(completion) => Reply::Forwarded {
                    completion,
                    started: Instant::now(),
                    admitted: false,
                },
                Err(e) => {
                    shared.metrics.forward_errors.incr();
                    Reply::Ready(error_payload(&e))
                }
            },
            None => Reply::Ready(Payload::Error {
                code: ErrCode::NotFound,
                message: "gateway has no sampling endpoint configured".into(),
            }),
        },
        Payload::HealthReq => {
            // Cheap liveness answer on the wire path; deep fleet health
            // lives on the ops server's /healthz.
            let inflight = shared.inflight.load(Ordering::Relaxed);
            Reply::Ready(Payload::HealthOk {
                healthy: true,
                detail: format!("inflight {inflight}/{}", shared.admission),
            })
        }
        Payload::StatsReq => Reply::Ready(Payload::StatsOk {
            entries: vec![
                ("gateway.shed_total".into(), shared.metrics.shed.get()),
                (
                    "gateway.admitted_total".into(),
                    shared.metrics.admitted.get(),
                ),
                (
                    "gateway.inflight".into(),
                    shared.inflight.load(Ordering::Relaxed) as u64,
                ),
                (
                    "gateway.forward_errors".into(),
                    shared.metrics.forward_errors.get(),
                ),
            ],
        }),
        other => Reply::Ready(Payload::Error {
            code: ErrCode::NotFound,
            message: format!("gateway does not route {} frames", other.kind_name()),
        }),
    }
}

fn error_payload(e: &helios_types::HeliosError) -> Payload {
    Payload::Error {
        code: ErrCode::from_error(e),
        message: e.to_string(),
    }
}

/// Responder: pop reply slots in request order, resolve, write.
fn respond_loop(stream: TcpStream, rx: Receiver<(u64, Reply)>, shared: Arc<Shared>) {
    let mut writer = std::io::BufWriter::new(stream);
    let mut scratch = BytesMut::with_capacity(512);
    while let Ok((request_id, reply)) = rx.recv() {
        let payload = match reply {
            Reply::Ready(p) => p,
            Reply::Forwarded {
                completion,
                started,
                admitted,
            } => {
                let result = completion.wait();
                if admitted {
                    shared.inflight.fetch_sub(1, Ordering::SeqCst);
                    shared
                        .metrics
                        .inflight
                        .set(shared.inflight.load(Ordering::Relaxed) as i64);
                    shared
                        .metrics
                        .forward_latency
                        .record(started.elapsed().as_micros() as u64);
                }
                match result {
                    Ok(p) => p,
                    Err(e) => {
                        shared.metrics.forward_errors.incr();
                        error_payload(&e)
                    }
                }
            }
        };
        let wrote = write_reply(&mut writer, request_id, &payload, &mut scratch);
        match wrote {
            Ok(n) => shared.net.frame(payload.kind(), n, true),
            Err(_) => break,
        }
    }
}

fn write_reply(
    writer: &mut impl std::io::Write,
    request_id: u64,
    payload: &Payload,
    scratch: &mut BytesMut,
) -> Result<usize> {
    let n = match payload {
        // Serve replies are raw bytes from downstream; forward without
        // re-encoding through a Payload round trip.
        Payload::ServeOk { bytes } => wire::write_raw_frame(writer, 2, request_id, bytes)?,
        other => wire::write_frame(writer, request_id, other, scratch)?,
    };
    writer.flush()?;
    Ok(n)
}
