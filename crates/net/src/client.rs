//! The client SDK: a thin, typed veneer over a [`TcpTransport`].
//!
//! A [`Client`] owns a pooled, pipelined transport to one endpoint
//! (usually the gateway). The blocking helpers (`serve`, `ingest`,
//! `health`, `stats`) cover the simple cases; `begin_serve` exposes the
//! pipelined path — issue many requests, then harvest completions — with
//! the transport's bounded in-flight budget as built-in backpressure, so
//! a client that outruns the server blocks instead of ballooning memory.

pub use crate::transport::Completion;
use bytes::Bytes;

use helios_types::{GraphUpdate, HeliosError, Result, VertexId};

use crate::transport::{TcpOptions, TcpTransport, Transport};
use crate::wire::Payload;

/// A pending serve reply from [`Client::begin_serve`].
pub struct ServeCompletion {
    inner: Completion,
}

impl ServeCompletion {
    /// Block for the encoded subgraph bytes.
    pub fn wait(self) -> Result<Bytes> {
        match self.inner.wait()? {
            Payload::ServeOk { bytes } => Ok(bytes),
            other => Err(unexpected("serve_ok", &other)),
        }
    }
}

/// A connection-pooled, pipelining client for one Helios endpoint.
pub struct Client {
    transport: TcpTransport,
}

impl Client {
    /// Connect to `addr` with default pool and in-flight budget.
    pub fn connect(addr: &str) -> Client {
        Client {
            transport: TcpTransport::connect(addr),
        }
    }

    /// Connect with explicit [`TcpOptions`].
    pub fn with_options(addr: &str, options: TcpOptions) -> Client {
        Client {
            transport: TcpTransport::with_options(addr, options),
        }
    }

    /// The remote address this client talks to.
    pub fn peer(&self) -> String {
        self.transport.peer()
    }

    /// Serve one seed and block for the encoded subgraph.
    pub fn serve(&self, seed: VertexId) -> Result<Bytes> {
        self.begin_serve(seed)?.wait()
    }

    /// Issue a serve without waiting. Blocks only when the in-flight
    /// budget is full — harvest outstanding completions to make room.
    pub fn begin_serve(&self, seed: VertexId) -> Result<ServeCompletion> {
        Ok(ServeCompletion {
            inner: self.transport.begin(Payload::Serve { seed })?,
        })
    }

    /// Ship a batch of graph updates; returns the acknowledged count.
    pub fn ingest(&self, updates: Vec<GraphUpdate>) -> Result<u64> {
        match self.transport.call(Payload::Updates { updates })? {
            Payload::Ack { count } => Ok(count),
            other => Err(unexpected("ack", &other)),
        }
    }

    /// Probe the endpoint's health.
    pub fn health(&self) -> Result<(bool, String)> {
        match self.transport.call(Payload::HealthReq)? {
            Payload::HealthOk { healthy, detail } => Ok((healthy, detail)),
            other => Err(unexpected("health_ok", &other)),
        }
    }

    /// Fetch the endpoint's flat stats snapshot.
    pub fn stats(&self) -> Result<Vec<(String, u64)>> {
        match self.transport.call(Payload::StatsReq)? {
            Payload::StatsOk { entries } => Ok(entries),
            other => Err(unexpected("stats_ok", &other)),
        }
    }

    /// Escape hatch: send any payload through the pipelined transport.
    pub fn begin(&self, payload: Payload) -> Result<Completion> {
        self.transport.begin(payload)
    }
}

fn unexpected(wanted: &str, got: &Payload) -> HeliosError {
    HeliosError::Codec(format!("expected {wanted} reply, got {}", got.kind_name()))
}
