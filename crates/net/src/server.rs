//! The frame server: a hand-rolled TCP front for any [`NetService`],
//! in the same nonblocking-accept style as the telemetry ops server.
//!
//! Each accepted connection gets one handler thread that decodes frames
//! in order and writes replies back on the same stream, so requests from
//! one client are processed FIFO while different connections proceed in
//! parallel. The serve path is zero-copy on the reply side: the encoded
//! subgraph goes from the service's scratch buffer straight into the
//! socket, never through a [`Payload`] allocation.
//!
//! Malformed frames never take the process down: the offending
//! connection gets a best-effort `Error { Codec }` reply, the frame is
//! counted into the `serving.decode_errors` pipeline (plus a
//! [`EventKind::DecodeError`] flight event), and the connection closes.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::BytesMut;
use helios_telemetry::{EventKind, FlightRecorder};
use helios_types::{HeliosError, Result, VertexId};
use parking_lot::Mutex;

use crate::transport::NetMetrics;
use crate::wire::{self, ErrCode, Payload};

/// What a process exposes to the network plane.
///
/// The split mirrors the serving worker's own shape: `serve_encoded` is
/// the latency-critical path and writes into a caller-owned buffer;
/// everything else goes through `handle`, which never fails — errors
/// come back as [`Payload::Error`] so they cross the wire like any
/// other reply.
pub trait NetService: Send + Sync {
    /// Serve one seed, appending the canonical encoded subgraph to `out`.
    fn serve_encoded(&self, seed: VertexId, out: &mut Vec<u8>) -> Result<()>;

    /// Handle any non-serve request.
    fn handle(&self, payload: Payload) -> Payload;
}

/// A running frame server.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl NetServer {
    /// Bind `addr` (port 0 for ephemeral) and serve `service`.
    pub fn start(
        addr: &str,
        service: Arc<dyn NetService>,
        metrics: Arc<NetMetrics>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name(format!("net-accept-{}", addr.port()))
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                if stream.set_nodelay(true).is_err() {
                                    continue;
                                }
                                if let Ok(track) = stream.try_clone() {
                                    conns.lock().push(track);
                                }
                                let service = Arc::clone(&service);
                                let metrics = Arc::clone(&metrics);
                                let recorder = recorder.clone();
                                // A failed spawn (fd/thread pressure)
                                // just drops the connection.
                                let _ = std::thread::Builder::new()
                                    .name(format!("net-conn-{peer}"))
                                    .spawn(move || {
                                        metrics.connection_delta(1);
                                        let _ =
                                            handle_connection(stream, &service, &metrics, recorder);
                                        metrics.connection_delta(-1);
                                    });
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(2)),
                        }
                    }
                })
                .expect("spawn net accept loop")
        };
        Ok(NetServer {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and tear down every open connection.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Serve one connection until EOF, error, or a malformed frame.
fn handle_connection(
    stream: TcpStream,
    service: &Arc<dyn NetService>,
    metrics: &Arc<NetMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
) -> Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut scratch = BytesMut::with_capacity(512);
    let mut serve_buf: Vec<u8> = Vec::new();
    loop {
        let (frame, bytes) = match wire::read_frame(&mut reader) {
            Ok(Some(got)) => got,
            Ok(None) => return Ok(()),
            Err(HeliosError::Codec(msg)) => {
                // Count the bad frame where operators already look for
                // corrupt data, answer, and hang up: after a framing
                // error the stream position is unrecoverable.
                metrics.decode_error();
                if let Some(r) = &recorder {
                    r.record(EventKind::DecodeError, u32::MAX, 1, 0, 0);
                }
                let reply = Payload::Error {
                    code: ErrCode::Codec,
                    message: msg,
                };
                let _ = wire::write_frame(&mut writer, 0, &reply, &mut scratch)
                    .and_then(|_| writer.flush().map_err(HeliosError::from));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        metrics.frame(frame.payload.kind(), bytes, false);
        let request_id = frame.request_id;
        let wrote = match frame.payload {
            Payload::Serve { seed } => {
                serve_buf.clear();
                match service.serve_encoded(seed, &mut serve_buf) {
                    Ok(()) => wire::write_raw_frame(&mut writer, 2, request_id, &serve_buf)
                        .map(|n| (n, 2u8)),
                    Err(e) => {
                        let reply = Payload::Error {
                            code: ErrCode::from_error(&e),
                            message: e.to_string(),
                        };
                        wire::write_frame(&mut writer, request_id, &reply, &mut scratch)
                            .map(|n| (n, reply.kind()))
                    }
                }
            }
            other => {
                let reply = service.handle(other);
                wire::write_frame(&mut writer, request_id, &reply, &mut scratch)
                    .map(|n| (n, reply.kind()))
            }
        };
        let (n, kind) = wrote?;
        writer.flush()?;
        metrics.frame(kind, n, true);
    }
}
