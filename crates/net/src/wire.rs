//! The length-prefixed binary wire protocol of the network plane.
//!
//! Every message on a Helios socket is one **frame**:
//!
//! | bytes | field        | notes                                     |
//! |-------|--------------|-------------------------------------------|
//! | 2     | magic        | `0x484E` (`"NH"` little-endian)           |
//! | 1     | version      | [`WIRE_VERSION`]                          |
//! | 1     | kind         | payload discriminant, see [`Payload`]     |
//! | 8     | request id   | caller-chosen; echoed on the reply        |
//! | 4     | payload len  | bytes after the header, ≤ [`MAX_PAYLOAD`] |
//! | n     | payload      | kind-specific, [`Encode`] encoding        |
//!
//! All integers are little-endian, matching the rest of the workspace's
//! [`Encode`] impls. Request ids pair replies with in-flight requests on
//! a pipelined connection; one-way frames carry id 0 by convention.
//!
//! The decoder is strict: bad magic, unknown version/kind, oversized or
//! truncated payloads, and trailing bytes all surface as
//! [`HeliosError::Codec`] — never a panic — so one malformed peer cannot
//! take a server down, and the error feeds the `serving.decode_errors`
//! pipeline like a corrupt mq record does.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use helios_membership::MembershipMsg;
use helios_types::{Decode, Encode, GraphUpdate, HeliosError, PartitionId, Result, VertexId};

/// Frame magic: `b"NH"` read as a little-endian u16.
pub const WIRE_MAGIC: u16 = 0x484E;
/// Current protocol version. Bumped on any incompatible frame change.
pub const WIRE_VERSION: u8 = 1;
/// Frame header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Hard ceiling on payload length: a 64 MiB frame is already far beyond
/// any legitimate serve reply or relay batch, and the cap keeps a corrupt
/// length field from looking like an allocation request.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Frame-kind labels indexed by kind byte (0 is the unknown bucket);
/// pre-resolved metric labels come from here.
pub const KIND_NAMES: [&str; 12] = [
    "unknown",
    "serve",
    "serve_ok",
    "updates",
    "ack",
    "produce",
    "health_req",
    "health_ok",
    "stats_req",
    "stats_ok",
    "membership",
    "error",
];

/// Wire error codes carried by [`Payload::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Admission control shed the request (bounded in-flight budget full).
    Overloaded,
    /// The addressed entity does not exist (unknown seed owner, topic…).
    NotFound,
    /// The downstream worker is unreachable or disconnected mid-request.
    Unavailable,
    /// The peer could not decode the request.
    Codec,
    /// The peer is shutting down.
    ShuttingDown,
    /// Any other server-side failure.
    Internal,
}

impl ErrCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrCode::Overloaded => 1,
            ErrCode::NotFound => 2,
            ErrCode::Unavailable => 3,
            ErrCode::Codec => 4,
            ErrCode::ShuttingDown => 5,
            ErrCode::Internal => 6,
        }
    }

    fn from_u8(v: u8) -> Result<ErrCode> {
        Ok(match v {
            1 => ErrCode::Overloaded,
            2 => ErrCode::NotFound,
            3 => ErrCode::Unavailable,
            4 => ErrCode::Codec,
            5 => ErrCode::ShuttingDown,
            6 => ErrCode::Internal,
            t => return Err(HeliosError::Codec(format!("invalid wire error code {t}"))),
        })
    }

    /// Convert a wire error reply into the workspace error it stands for.
    pub fn to_error(self, message: &str) -> HeliosError {
        match self {
            ErrCode::Overloaded => HeliosError::Overloaded(message.into()),
            ErrCode::NotFound => HeliosError::NotFound(message.into()),
            ErrCode::Unavailable => HeliosError::Disconnected(message.into()),
            ErrCode::Codec => HeliosError::Codec(message.into()),
            ErrCode::ShuttingDown => HeliosError::ShuttingDown,
            ErrCode::Internal => HeliosError::Disconnected(message.into()),
        }
    }

    /// Classify a server-side failure into the code its reply carries.
    pub fn from_error(e: &HeliosError) -> ErrCode {
        match e {
            HeliosError::Overloaded(_) => ErrCode::Overloaded,
            HeliosError::NotFound(_) => ErrCode::NotFound,
            HeliosError::Codec(_) => ErrCode::Codec,
            HeliosError::ShuttingDown => ErrCode::ShuttingDown,
            HeliosError::Disconnected(_) | HeliosError::Io(_) => ErrCode::Unavailable,
            _ => ErrCode::Internal,
        }
    }
}

/// One relayed sample-queue record: the sampling host ships the raw topic
/// payload with its partition and key so the receiving serving worker's
/// local topic reproduces the exact per-partition sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayRecord {
    /// Destination partition in the receiver's `samples-<sew>` topic.
    pub partition: PartitionId,
    /// Producer routing key (the sample message's routing vertex).
    pub key: u64,
    /// The encoded [`helios_core::SampleMsg`] bytes, shipped opaquely.
    pub payload: Bytes,
}

impl Encode for RelayRecord {
    fn encode(&self, buf: &mut BytesMut) {
        self.partition.encode(buf);
        self.key.encode(buf);
        (self.payload.len() as u32).encode(buf);
        buf.put_slice(&self.payload);
    }
}

impl Decode for RelayRecord {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let partition = PartitionId::decode(buf)?;
        let key = u64::decode(buf)?;
        let len = u32::decode(buf)? as usize;
        if len > buf.remaining() {
            return Err(HeliosError::Codec(format!(
                "truncated relay payload: need {len} bytes, have {}",
                buf.remaining()
            )));
        }
        Ok(RelayRecord {
            partition,
            key,
            payload: buf.copy_to_bytes(len),
        })
    }
}

/// The body of one wire frame. Request/reply pairing is by request id;
/// the kind byte in the header is this enum's discriminant.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Serve a K-hop sampling query for `seed`.
    Serve { seed: VertexId },
    /// Successful serve reply: the canonical encoded subgraph bytes,
    /// exactly what `serve_encoded` writes — shipped opaquely so the
    /// server can assemble the frame straight from its arena buffer.
    ServeOk { bytes: Bytes },
    /// A batch of graph updates for ingestion.
    Updates { updates: Vec<GraphUpdate> },
    /// Generic acknowledgement with an operation count.
    Ack { count: u64 },
    /// Sample-queue relay batch for serving worker `sew`.
    Produce { sew: u32, records: Vec<RelayRecord> },
    /// Health probe request.
    HealthReq,
    /// Health probe reply.
    HealthOk { healthy: bool, detail: String },
    /// Stats snapshot request.
    StatsReq,
    /// Stats snapshot reply: flat name→value pairs (drain watermarks,
    /// shed counts, …); the schema is the names, kept self-describing.
    StatsOk { entries: Vec<(String, u64)> },
    /// Membership / rescale broadcast (Prepare, Commit or Abort).
    Membership(MembershipMsg),
    /// Error reply.
    Error { code: ErrCode, message: String },
}

impl Payload {
    /// The frame kind byte for this payload.
    pub fn kind(&self) -> u8 {
        match self {
            Payload::Serve { .. } => 1,
            Payload::ServeOk { .. } => 2,
            Payload::Updates { .. } => 3,
            Payload::Ack { .. } => 4,
            Payload::Produce { .. } => 5,
            Payload::HealthReq => 6,
            Payload::HealthOk { .. } => 7,
            Payload::StatsReq => 8,
            Payload::StatsOk { .. } => 9,
            Payload::Membership(_) => 10,
            Payload::Error { .. } => 11,
        }
    }

    /// Human-readable kind label (telemetry's `kind` metric label).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Serve { .. } => "serve",
            Payload::ServeOk { .. } => "serve_ok",
            Payload::Updates { .. } => "updates",
            Payload::Ack { .. } => "ack",
            Payload::Produce { .. } => "produce",
            Payload::HealthReq => "health_req",
            Payload::HealthOk { .. } => "health_ok",
            Payload::StatsReq => "stats_req",
            Payload::StatsOk { .. } => "stats_ok",
            Payload::Membership(_) => "membership",
            Payload::Error { .. } => "error",
        }
    }

    fn encode_body(&self, buf: &mut BytesMut) {
        match self {
            Payload::Serve { seed } => seed.encode(buf),
            Payload::ServeOk { bytes } => buf.put_slice(bytes),
            Payload::Updates { updates } => updates.encode(buf),
            Payload::Ack { count } => count.encode(buf),
            Payload::Produce { sew, records } => {
                sew.encode(buf);
                records.encode(buf);
            }
            Payload::HealthReq | Payload::StatsReq => {}
            Payload::HealthOk { healthy, detail } => {
                u8::from(*healthy).encode(buf);
                detail.encode(buf);
            }
            Payload::StatsOk { entries } => entries.encode(buf),
            Payload::Membership(msg) => msg.encode(buf),
            Payload::Error { code, message } => {
                code.to_u8().encode(buf);
                message.encode(buf);
            }
        }
    }

    pub(crate) fn decode_body(kind: u8, body: &[u8]) -> Result<Payload> {
        let mut buf = body;
        let payload = match kind {
            1 => Payload::Serve {
                seed: VertexId::decode(&mut buf)?,
            },
            2 => {
                let bytes = Bytes::copy_from_slice(buf);
                buf = &[];
                Payload::ServeOk { bytes }
            }
            3 => Payload::Updates {
                updates: Vec::<GraphUpdate>::decode(&mut buf)?,
            },
            4 => Payload::Ack {
                count: u64::decode(&mut buf)?,
            },
            5 => Payload::Produce {
                sew: u32::decode(&mut buf)?,
                records: Vec::<RelayRecord>::decode(&mut buf)?,
            },
            6 => Payload::HealthReq,
            7 => Payload::HealthOk {
                healthy: u8::decode(&mut buf)? != 0,
                detail: String::decode(&mut buf)?,
            },
            8 => Payload::StatsReq,
            9 => Payload::StatsOk {
                entries: Vec::<(String, u64)>::decode(&mut buf)?,
            },
            10 => Payload::Membership(MembershipMsg::decode(&mut buf)?),
            11 => Payload::Error {
                code: ErrCode::from_u8(u8::decode(&mut buf)?)?,
                message: String::decode(&mut buf)?,
            },
            t => return Err(HeliosError::Codec(format!("invalid frame kind {t}"))),
        };
        if !buf.is_empty() {
            return Err(HeliosError::Codec(format!(
                "{} trailing bytes after frame payload",
                buf.len()
            )));
        }
        Ok(payload)
    }
}

/// One wire frame: a request id plus its payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Caller-chosen id echoed on the reply; 0 for one-way frames.
    pub request_id: u64,
    /// The frame body.
    pub payload: Payload,
}

impl Frame {
    /// Append the whole frame (header + payload) to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        let header_at = buf.len();
        encode_header(buf, self.payload.kind(), self.request_id, 0);
        let body_at = buf.len();
        self.payload.encode_body(buf);
        let len = (buf.len() - body_at) as u32;
        buf[header_at + 12..header_at + 16].copy_from_slice(&len.to_le_bytes());
    }

    /// Encode into a fresh buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + 64);
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode one frame from a slice that must contain exactly one frame.
    pub fn decode(bytes: &[u8]) -> Result<Frame> {
        let header = decode_header(bytes)?;
        let total = HEADER_LEN + header.payload_len;
        if bytes.len() < total {
            return Err(HeliosError::Codec(format!(
                "truncated frame: header promises {} payload bytes, have {}",
                header.payload_len,
                bytes.len() - HEADER_LEN
            )));
        }
        if bytes.len() > total {
            return Err(HeliosError::Codec(format!(
                "{} trailing bytes after frame",
                bytes.len() - total
            )));
        }
        let payload = Payload::decode_body(header.kind, &bytes[HEADER_LEN..total])?;
        Ok(Frame {
            request_id: header.request_id,
            payload,
        })
    }
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame kind byte (validated against [`Payload`] on body decode).
    pub kind: u8,
    /// Request id.
    pub request_id: u64,
    /// Payload length in bytes (already checked against [`MAX_PAYLOAD`]).
    pub payload_len: usize,
}

/// Append a frame header. `payload_len` may be patched afterwards (the
/// length field sits at byte offset 12) when the body is encoded in
/// place after the header.
pub fn encode_header(buf: &mut BytesMut, kind: u8, request_id: u64, payload_len: u32) {
    buf.put_u16_le(WIRE_MAGIC);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(kind);
    buf.put_u64_le(request_id);
    buf.put_u32_le(payload_len);
}

/// Write a standalone header into a fixed array (socket write paths that
/// assemble `[header][payload]` with vectored writes).
pub fn header_bytes(kind: u8, request_id: u64, payload_len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..2].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
    h[2] = WIRE_VERSION;
    h[3] = kind;
    h[4..12].copy_from_slice(&request_id.to_le_bytes());
    h[12..16].copy_from_slice(&payload_len.to_le_bytes());
    h
}

/// Validate and decode a frame header from the first [`HEADER_LEN`] bytes.
pub fn decode_header(bytes: &[u8]) -> Result<Header> {
    if bytes.len() < HEADER_LEN {
        return Err(HeliosError::Codec(format!(
            "truncated frame header: need {HEADER_LEN} bytes, have {}",
            bytes.len()
        )));
    }
    let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
    if magic != WIRE_MAGIC {
        return Err(HeliosError::Codec(format!(
            "bad frame magic {magic:#06x} (expected {WIRE_MAGIC:#06x})"
        )));
    }
    let version = bytes[2];
    if version != WIRE_VERSION {
        return Err(HeliosError::Codec(format!(
            "unsupported wire version {version} (speaking {WIRE_VERSION})"
        )));
    }
    let kind = bytes[3];
    let request_id = u64::from_le_bytes(bytes[4..12].try_into().expect("8 header bytes"));
    let payload_len =
        u32::from_le_bytes(bytes[12..16].try_into().expect("4 header bytes")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(HeliosError::Codec(format!(
            "frame payload of {payload_len} bytes exceeds the {MAX_PAYLOAD} limit"
        )));
    }
    Ok(Header {
        kind,
        request_id,
        payload_len,
    })
}

/// Read `buf.len()` bytes, or report a clean EOF (`Ok(false)`) when the
/// peer closed before the first byte. EOF mid-buffer is an error.
fn fill_or_eof(r: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut off = 0;
    while off < buf.len() {
        let n = r.read(&mut buf[off..])?;
        if n == 0 {
            if off == 0 {
                return Ok(false);
            }
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        off += n;
    }
    Ok(true)
}

/// Read one frame from a blocking stream. Returns `Ok(None)` on clean
/// EOF (peer closed between frames), the frame plus its total wire size
/// otherwise. Malformed data is [`HeliosError::Codec`]; socket failures
/// are [`HeliosError::Io`].
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<(Frame, usize)>> {
    let mut hdr = [0u8; HEADER_LEN];
    if !fill_or_eof(r, &mut hdr)? {
        return Ok(None);
    }
    let header = decode_header(&hdr)?;
    let mut body = vec![0u8; header.payload_len];
    r.read_exact(&mut body)?;
    let payload = Payload::decode_body(header.kind, &body)?;
    Ok(Some((
        Frame {
            request_id: header.request_id,
            payload,
        },
        HEADER_LEN + header.payload_len,
    )))
}

/// Write one frame. `scratch` is a reusable encode buffer (cleared on
/// entry) so steady-state writes allocate nothing. Returns the wire size.
pub fn write_frame(
    w: &mut impl std::io::Write,
    request_id: u64,
    payload: &Payload,
    scratch: &mut BytesMut,
) -> Result<usize> {
    scratch.clear();
    encode_header(scratch, payload.kind(), request_id, 0);
    payload.encode_body(scratch);
    let len = (scratch.len() - HEADER_LEN) as u32;
    scratch[12..16].copy_from_slice(&len.to_le_bytes());
    w.write_all(scratch)?;
    Ok(scratch.len())
}

/// Write a reply frame whose body is already-encoded bytes, straight
/// from the caller's buffer — the zero-copy path for serve replies.
pub fn write_raw_frame(
    w: &mut impl std::io::Write,
    kind: u8,
    request_id: u64,
    body: &[u8],
) -> Result<usize> {
    let hdr = header_bytes(kind, request_id, body.len() as u32);
    w.write_all(&hdr)?;
    w.write_all(body)?;
    Ok(HEADER_LEN + body.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_membership::RouteTable;
    use helios_types::{EdgeType, EdgeUpdate, Timestamp, VertexType, VertexUpdate};
    use proptest::prelude::*;

    fn roundtrip(frame: &Frame) {
        let bytes = frame.to_bytes();
        let back = Frame::decode(&bytes).expect("decode");
        assert_eq!(*frame, back);
    }

    fn sample_updates(n: u64) -> Vec<GraphUpdate> {
        (0..n)
            .flat_map(|i| {
                [
                    GraphUpdate::Vertex(VertexUpdate {
                        vtype: VertexType(0),
                        id: VertexId(i),
                        feature: vec![i as f32, 0.5],
                        ts: Timestamp(i),
                    }),
                    GraphUpdate::Edge(EdgeUpdate {
                        etype: EdgeType(1),
                        src_type: VertexType(0),
                        src: VertexId(i),
                        dst_type: VertexType(1),
                        dst: VertexId(1000 + i),
                        ts: Timestamp(100 + i),
                        weight: 2.5,
                    }),
                ]
            })
            .collect()
    }

    /// One frame of every kind, exercised by the identity and fuzz tests.
    fn all_kinds() -> Vec<Frame> {
        let table = RouteTable::initial(3, 64);
        vec![
            Frame {
                request_id: 1,
                payload: Payload::Serve { seed: VertexId(42) },
            },
            Frame {
                request_id: 2,
                payload: Payload::ServeOk {
                    bytes: Bytes::from(vec![1u8, 2, 3, 4, 5]),
                },
            },
            Frame {
                request_id: 3,
                payload: Payload::Updates {
                    updates: sample_updates(3),
                },
            },
            Frame {
                request_id: 4,
                payload: Payload::Ack { count: 77 },
            },
            Frame {
                request_id: 5,
                payload: Payload::Produce {
                    sew: 1,
                    records: vec![
                        RelayRecord {
                            partition: PartitionId(0),
                            key: 9,
                            payload: Bytes::from(vec![0xAA; 20]),
                        },
                        RelayRecord {
                            partition: PartitionId(3),
                            key: 11,
                            payload: Bytes::new(),
                        },
                    ],
                },
            },
            Frame {
                request_id: 6,
                payload: Payload::HealthReq,
            },
            Frame {
                request_id: 7,
                payload: Payload::HealthOk {
                    healthy: false,
                    detail: "lag 12000".into(),
                },
            },
            Frame {
                request_id: 8,
                payload: Payload::StatsReq,
            },
            Frame {
                request_id: 9,
                payload: Payload::StatsOk {
                    entries: vec![("serving.applied".into(), 10), ("backlog".into(), 0)],
                },
            },
            Frame {
                request_id: 10,
                payload: Payload::Membership(MembershipMsg::Prepare {
                    table: table.clone(),
                }),
            },
            Frame {
                request_id: 11,
                payload: Payload::Membership(MembershipMsg::Commit {
                    table: table.clone(),
                }),
            },
            Frame {
                request_id: 12,
                payload: Payload::Membership(MembershipMsg::Abort { table }),
            },
            Frame {
                request_id: 13,
                payload: Payload::Error {
                    code: ErrCode::Overloaded,
                    message: "budget 64 full".into(),
                },
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        for frame in all_kinds() {
            roundtrip(&frame);
        }
    }

    #[test]
    fn header_rejects_bad_magic_version_and_length() {
        let good = Frame {
            request_id: 5,
            payload: Payload::HealthReq,
        }
        .to_bytes()
        .to_vec();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(HeliosError::Codec(_))
        ));

        let mut bad_version = good.clone();
        bad_version[2] = 99;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(HeliosError::Codec(_))
        ));

        let mut bad_len = good.clone();
        bad_len[12..16].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad_len),
            Err(HeliosError::Codec(_))
        ));

        let mut bad_kind = good;
        bad_kind[3] = 250;
        assert!(matches!(
            Frame::decode(&bad_kind),
            Err(HeliosError::Codec(_))
        ));
    }

    #[test]
    fn truncation_at_every_boundary_is_a_clean_codec_error() {
        for frame in all_kinds() {
            let bytes = frame.to_bytes();
            for cut in 0..bytes.len() {
                match Frame::decode(&bytes[..cut]) {
                    Err(HeliosError::Codec(_)) => {}
                    other => panic!(
                        "cut at {cut}/{} of kind {} must be a codec error, got {other:?}",
                        bytes.len(),
                        frame.payload.kind_name()
                    ),
                }
            }
        }
    }

    #[test]
    fn error_codes_round_trip_and_map_to_errors() {
        for code in [
            ErrCode::Overloaded,
            ErrCode::NotFound,
            ErrCode::Unavailable,
            ErrCode::Codec,
            ErrCode::ShuttingDown,
            ErrCode::Internal,
        ] {
            assert_eq!(ErrCode::from_u8(code.to_u8()).unwrap(), code);
            let err = code.to_error("x");
            assert_eq!(ErrCode::from_error(&err), code_after_roundtrip(code));
        }
        assert!(ErrCode::from_u8(0).is_err());
        assert!(ErrCode::from_u8(7).is_err());
    }

    /// `Internal` deliberately maps onto `Disconnected`, which classifies
    /// back as `Unavailable`; every other code survives the round trip.
    fn code_after_roundtrip(code: ErrCode) -> ErrCode {
        match code {
            ErrCode::Internal => ErrCode::Unavailable,
            c => c,
        }
    }

    proptest! {
        #[test]
        fn corrupt_single_byte_never_panics(idx in 0usize..200, flip in 1u8..=255) {
            for frame in all_kinds() {
                let mut bytes = frame.to_bytes().to_vec();
                let i = idx % bytes.len();
                bytes[i] ^= flip;
                // Either it still decodes (the flip hit a don't-care bit
                // pattern that yields another valid frame) or it fails
                // with a codec error; it must never panic.
                match Frame::decode(&bytes) {
                    Ok(_) | Err(HeliosError::Codec(_)) => {}
                    Err(other) => panic!("unexpected error class: {other}"),
                }
            }
        }

        #[test]
        fn random_bytes_never_panic(len in 0usize..96, seed in 0u64..u64::MAX) {
            // Deterministic pseudo-random garbage; no valid magic required.
            let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            match Frame::decode(&bytes) {
                Ok(_) | Err(HeliosError::Codec(_)) => {}
                Err(other) => panic!("unexpected error class: {other}"),
            }
        }

        #[test]
        fn serve_and_ack_round_trip_any_values(seed in 0u64..u64::MAX, count in 0u64..u64::MAX, id in 0u64..u64::MAX) {
            roundtrip(&Frame {
                request_id: id,
                payload: Payload::Serve { seed: VertexId(seed) },
            });
            roundtrip(&Frame {
                request_id: id,
                payload: Payload::Ack { count },
            });
        }
    }
}
