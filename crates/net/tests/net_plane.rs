//! Network-plane integration tests over loopback: transport equivalence
//! (in-process vs TCP), client pipelining under a bounded in-flight
//! budget, corrupt-frame handling, gateway admission control, and the
//! gateway's worker-aware /healthz aggregation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use helios_net::{
    Client, Gateway, GatewayConfig, InProcTransport, NetMetrics, NetServer, NetService, Payload,
    TcpOptions, TcpTransport, Transport,
};
use helios_telemetry::Registry;
use helios_types::{HeliosError, VertexId};

/// A deterministic service: the reply for seed `v` is a function of `v`,
/// so in-process and TCP replies can be compared byte for byte.
struct EchoService {
    delay: Duration,
    served: AtomicU64,
}

impl EchoService {
    fn new(delay: Duration) -> Arc<EchoService> {
        Arc::new(EchoService {
            delay,
            served: AtomicU64::new(0),
        })
    }
}

impl NetService for EchoService {
    fn serve_encoded(&self, seed: VertexId, out: &mut Vec<u8>) -> helios_types::Result<()> {
        if self.delay > Duration::ZERO {
            std::thread::sleep(self.delay);
        }
        if seed.raw() == u64::MAX {
            return Err(HeliosError::NotFound("sentinel seed".into()));
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        out.extend_from_slice(&seed.raw().to_le_bytes());
        out.extend_from_slice(&(seed.raw().wrapping_mul(0x9E37_79B9)).to_le_bytes());
        Ok(())
    }

    fn handle(&self, payload: Payload) -> Payload {
        match payload {
            Payload::HealthReq => Payload::HealthOk {
                healthy: true,
                detail: "echo".into(),
            },
            Payload::StatsReq => Payload::StatsOk {
                entries: vec![("served".into(), self.served.load(Ordering::Relaxed))],
            },
            other => Payload::Error {
                code: helios_net::ErrCode::NotFound,
                message: format!("echo does not handle {}", other.kind_name()),
            },
        }
    }
}

#[test]
fn tcp_replies_are_byte_identical_to_in_process() {
    let service = EchoService::new(Duration::ZERO);
    let server =
        NetServer::start("127.0.0.1:0", service.clone(), NetMetrics::disabled(), None).unwrap();
    let inproc = InProcTransport::new(service);
    let tcp = TcpTransport::connect(&server.addr().to_string());
    for raw in [0u64, 1, 7, 1 << 40, u64::MAX - 1] {
        let seed = VertexId(raw);
        let a = match inproc.call(Payload::Serve { seed }).unwrap() {
            Payload::ServeOk { bytes } => bytes,
            other => panic!("unexpected {}", other.kind_name()),
        };
        let b = match tcp.call(Payload::Serve { seed }).unwrap() {
            Payload::ServeOk { bytes } => bytes,
            other => panic!("unexpected {}", other.kind_name()),
        };
        assert_eq!(a, b, "seed {raw}: transports disagree");
    }
    // Errors also cross the wire as errors, not as mangled successes.
    let seed = VertexId(u64::MAX);
    assert!(inproc.call(Payload::Serve { seed }).is_err());
    assert!(tcp.call(Payload::Serve { seed }).is_err());
    server.shutdown();
}

#[test]
fn client_pipelines_within_a_bounded_inflight_budget() {
    let service = EchoService::new(Duration::from_millis(2));
    let server =
        NetServer::start("127.0.0.1:0", service.clone(), NetMetrics::disabled(), None).unwrap();
    let client = Client::with_options(
        &server.addr().to_string(),
        TcpOptions {
            pool: 1,
            inflight: 8,
            ..Default::default()
        },
    );
    // Issue far more requests than the budget; begin_serve blocks when
    // the window is full, so this cannot balloon memory — and every
    // completion must still resolve to the right seed's bytes.
    let completions: Vec<_> = (0..64u64)
        .map(|raw| (raw, client.begin_serve(VertexId(raw)).unwrap()))
        .collect();
    for (raw, completion) in completions {
        let bytes = completion.wait().unwrap();
        assert_eq!(&bytes[..8], &raw.to_le_bytes());
    }
    assert_eq!(service.served.load(Ordering::Relaxed), 64);
    // The typed helpers ride the same pipelined transport.
    assert_eq!(client.health().unwrap().0, true);
    assert_eq!(client.stats().unwrap()[0].1, 64);
    server.shutdown();
}

#[test]
fn corrupt_frames_get_a_clean_codec_error_and_are_counted() {
    let registry = Arc::new(Registry::new());
    let metrics = NetMetrics::new(&registry, "test");
    let service = EchoService::new(Duration::ZERO);
    let server = NetServer::start("127.0.0.1:0", service, metrics, None).unwrap();

    // Hand the server plain garbage: it must reply with a codec error
    // frame (best effort), bump `serving.decode_errors`, and close the
    // connection rather than wedge or panic.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"this is not a helios frame at all!!")
        .unwrap();
    stream.flush().unwrap();
    let mut reply = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = stream.read_to_end(&mut reply); // server closes after the error
    let deadline = Instant::now() + Duration::from_secs(5);
    while registry.snapshot().counter_total("serving.decode_errors") == 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        registry.snapshot().counter_total("serving.decode_errors"),
        1,
        "decode error not counted"
    );

    // A well-formed connection still works after the bad one.
    let tcp = TcpTransport::connect(&server.addr().to_string());
    assert!(tcp.call(Payload::HealthReq).is_ok());
    server.shutdown();
}

#[test]
fn gateway_sheds_with_an_explicit_overloaded_error() {
    let service = EchoService::new(Duration::from_millis(50));
    let server = NetServer::start("127.0.0.1:0", service, NetMetrics::disabled(), None).unwrap();
    let gateway = Gateway::start(GatewayConfig {
        workers: vec![server.addr().to_string()],
        admission: 1,
        ..Default::default()
    })
    .unwrap();
    let client = Arc::new(Client::connect(&gateway.addr().to_string()));

    let sheds = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let client = Arc::clone(&client);
            let (sheds, served) = (&sheds, &served);
            scope.spawn(move || {
                for raw in 0..4u64 {
                    match client.serve(VertexId(raw)) {
                        Ok(_) => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(HeliosError::Overloaded(_)) => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("expected shed or success, got {e}"),
                    }
                }
            });
        }
    });
    // With a budget of one and a 50 ms service time, 8x4 concurrent
    // requests cannot all be admitted: the excess must shed explicitly
    // (and promptly — the scope above would hang otherwise).
    assert!(sheds.load(Ordering::Relaxed) > 0, "nothing was shed");
    assert!(served.load(Ordering::Relaxed) > 0, "nothing was admitted");
    let stats = client.stats().unwrap();
    let shed_total = stats
        .iter()
        .find(|(k, _)| k == "gateway.shed_total")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(shed_total, sheds.load(Ordering::Relaxed));

    // Once the burst is over the budget frees up again.
    assert!(client.serve(VertexId(9)).is_ok());
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn gateway_healthz_reports_dead_workers_as_503() {
    let service = EchoService::new(Duration::ZERO);
    let live = NetServer::start("127.0.0.1:0", service, NetMetrics::disabled(), None).unwrap();
    // Reserve (then release) a port nothing listens on: worker 1 is dead.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let gateway = Gateway::start(GatewayConfig {
        workers: vec![live.addr().to_string(), dead_addr],
        ops_addr: Some("127.0.0.1:0".into()),
        probe_timeout: Duration::from_millis(200),
        ..Default::default()
    })
    .unwrap();

    let ops = gateway.ops_addr().expect("ops server configured");
    let mut stream = TcpStream::connect(ops).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 503"),
        "expected 503 with a dead worker, got: {}",
        response.lines().next().unwrap_or("")
    );
    assert!(
        response.contains("serve-worker-1"),
        "dead worker id missing from healthz body: {response}"
    );
    assert!(
        response.contains("serve-worker-0"),
        "live worker missing from healthz body: {response}"
    );
    gateway.shutdown();
    live.shutdown();
}
