//! Deployment-wide byte-accurate memory accounting.
//!
//! Components account their bytes on exact alloc/free sites through
//! [`MemGauge`] handles (defined in `helios-types` so leaf crates need
//! no telemetry dependency). The [`MemAccountant`] is the deployment's
//! ledger: each gauge is registered under a component name (plus
//! arbitrary labels), and a periodic [`MemAccountant::export`] — driven
//! by the stats reporter — copies every gauge into the registry as
//! `mem.bytes{component,…}`, derives `mem.budget_fraction_permille`
//! against the configured budget, and maintains the over-budget streak
//! the `/healthz` memory probe and the `MemPressure` flight event key
//! off.
//!
//! The hot path never touches the accountant: accounting is one relaxed
//! atomic on the component's own gauge; aggregation cost is paid only
//! at export time (O(components), a few dozen entries).

use crate::registry::{Gauge, Registry};
use helios_types::MemGauge;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Exported gauge name for per-component resident bytes.
pub const MEM_BYTES: &str = "mem.bytes";
/// Exported gauge name for the budget fraction, in permille (1000 =
/// exactly at `memory_budget_bytes`), matching the ×1000 convention of
/// the SLO burn gauges. Absent (never exported) when no budget is set.
pub const MEM_BUDGET_FRACTION: &str = "mem.budget_fraction_permille";

struct Entry {
    gauge: MemGauge,
    component: String,
    exported: Arc<Gauge>,
}

/// Outcome of one [`MemAccountant::export`] tick, consumed by the stats
/// reporter to fire pressure events on rising edges.
#[derive(Debug, Clone, Copy)]
pub struct MemTick {
    /// Sum of all registered component gauges, bytes.
    pub total_bytes: i64,
    /// `total / budget`, when a budget is configured.
    pub budget_fraction: Option<f64>,
    /// True when this tick is over budget.
    pub over_budget: bool,
    /// True when this tick crossed from under to over budget — the
    /// rising edge that records a `MemPressure` anomaly.
    pub crossed_over: bool,
}

/// The deployment's memory ledger. See module docs.
pub struct MemAccountant {
    registry: Arc<Registry>,
    budget_bytes: Option<u64>,
    entries: Mutex<Vec<Entry>>,
    fraction_gauge: Arc<Gauge>,
    /// Consecutive export ticks over budget (0 while under).
    over_streak: AtomicU64,
    /// Largest total ever observed by an export tick, bytes. Tick-sampled
    /// (stats-reporter cadence), so a sub-tick spike can be missed — the
    /// bench snapshot reports it as "memory high-water" with that caveat.
    high_water: AtomicI64,
}

impl MemAccountant {
    /// New accountant exporting into `registry`, judged against
    /// `budget_bytes` (`None` = unlimited: `mem.bytes` still exports,
    /// the fraction and the pressure probe stay inert).
    pub fn new(registry: Arc<Registry>, budget_bytes: Option<u64>) -> Self {
        let fraction_gauge = registry.gauge(MEM_BUDGET_FRACTION, &[]);
        MemAccountant {
            registry,
            budget_bytes,
            entries: Mutex::new(Vec::new()),
            fraction_gauge,
            over_streak: AtomicU64::new(0),
            high_water: AtomicI64::new(0),
        }
    }

    /// Create and register a fresh gauge for `component` with extra
    /// labels (e.g. `worker`, `table`, `topic`).
    pub fn register(&self, component: &str, labels: &[(&str, &str)]) -> MemGauge {
        let gauge = MemGauge::new();
        self.adopt(component, labels, gauge.clone());
        gauge
    }

    /// Register an existing gauge (components that create their gauges
    /// before the accountant sees them, e.g. serving workers). Adopting
    /// the same cell twice is a caller bug and would double-count; a
    /// duplicate is ignored.
    pub fn adopt(&self, component: &str, labels: &[(&str, &str)], gauge: MemGauge) {
        let mut all: Vec<(&str, &str)> = labels.to_vec();
        all.push(("component", component));
        let exported = self.registry.gauge(MEM_BYTES, &all);
        let mut entries = self.entries.lock();
        if entries.iter().any(|e| e.gauge.same_cell(&gauge)) {
            return;
        }
        entries.push(Entry {
            gauge,
            component: component.to_string(),
            exported,
        });
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Current total across all components, bytes.
    pub fn total_bytes(&self) -> i64 {
        self.entries.lock().iter().map(|e| e.gauge.get()).sum()
    }

    /// Current bytes of one component (summed over labels).
    pub fn component_bytes(&self, component: &str) -> i64 {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.gauge.get())
            .sum()
    }

    /// Registered component names, sorted and deduplicated.
    pub fn components(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .lock()
            .iter()
            .map(|e| e.component.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Copy every gauge into the registry, refresh the budget fraction,
    /// and advance the over-budget streak. Called from the stats
    /// reporter tick (and directly by tests).
    pub fn export(&self) -> MemTick {
        let mut total = 0i64;
        for e in self.entries.lock().iter() {
            let v = e.gauge.get();
            e.exported.set(v);
            total += v;
        }
        self.high_water.fetch_max(total, Ordering::Relaxed);
        let budget_fraction = self
            .budget_bytes
            .map(|b| total.max(0) as f64 / (b.max(1)) as f64);
        if let Some(f) = budget_fraction {
            self.fraction_gauge.set((f * 1000.0) as i64);
        }
        let over_budget = budget_fraction.is_some_and(|f| f > 1.0);
        let crossed_over = if over_budget {
            self.over_streak.fetch_add(1, Ordering::Relaxed) == 0
        } else {
            self.over_streak.store(0, Ordering::Relaxed);
            false
        };
        MemTick {
            total_bytes: total,
            budget_fraction,
            over_budget,
            crossed_over,
        }
    }

    /// Largest total an export tick has ever observed, bytes. See the
    /// field docs for the tick-sampling caveat.
    pub fn high_water_bytes(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// True when at least `min_ticks` consecutive export ticks were
    /// over budget — the "sustained" gate of the `/healthz` memory
    /// probe, so one transient spike between two ticks doesn't flap the
    /// endpoint.
    pub fn sustained_over_budget(&self, min_ticks: u64) -> bool {
        self.over_streak.load(Ordering::Relaxed) >= min_ticks.max(1)
    }
}

impl std::fmt::Debug for MemAccountant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemAccountant")
            .field("budget_bytes", &self.budget_bytes)
            .field("components", &self.components())
            .field("total_bytes", &self.total_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_publishes_component_gauges() {
        let registry = Arc::new(Registry::new());
        let acct = MemAccountant::new(Arc::clone(&registry), None);
        let a = acct.register("memtable", &[("worker", "0")]);
        let b = acct.register("block_cache", &[("worker", "0")]);
        a.add(1000);
        b.add(24);
        let tick = acct.export();
        assert_eq!(tick.total_bytes, 1024);
        assert!(tick.budget_fraction.is_none());
        assert!(!tick.over_budget);
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("mem.bytes{component=memtable,worker=0}"), 1000);
        assert_eq!(snap.gauge("mem.bytes{component=block_cache,worker=0}"), 24);
        assert_eq!(acct.component_bytes("memtable"), 1000);
    }

    #[test]
    fn budget_fraction_and_streak() {
        let registry = Arc::new(Registry::new());
        let acct = MemAccountant::new(Arc::clone(&registry), Some(1000));
        let g = acct.register("memtable", &[]);
        g.add(500);
        let t = acct.export();
        assert_eq!(t.budget_fraction, Some(0.5));
        assert!(!t.over_budget && !t.crossed_over);
        assert!(!acct.sustained_over_budget(2));
        g.add(1000); // 1500/1000
        let t = acct.export();
        assert!(t.over_budget && t.crossed_over, "rising edge");
        let t = acct.export();
        assert!(t.over_budget && !t.crossed_over, "still over, no new edge");
        assert!(acct.sustained_over_budget(2));
        assert_eq!(registry.snapshot().gauge(MEM_BUDGET_FRACTION), 1500);
        g.sub(1200);
        let t = acct.export();
        assert!(!t.over_budget);
        assert!(!acct.sustained_over_budget(1), "streak resets on drain");
        // The next crossing is a fresh edge.
        g.add(2000);
        assert!(acct.export().crossed_over);
    }

    #[test]
    fn adopting_the_same_cell_twice_is_ignored() {
        let registry = Arc::new(Registry::new());
        let acct = MemAccountant::new(Arc::clone(&registry), None);
        let g = acct.register("mq_log", &[("topic", "updates")]);
        acct.adopt("mq_log", &[("topic", "updates")], g.clone());
        g.add(100);
        assert_eq!(acct.total_bytes(), 100, "no double counting");
    }
}
