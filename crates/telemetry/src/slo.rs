//! Windowed SLO tracking for end-to-end freshness (or any latency
//! stream).
//!
//! An SLO here is "quantile `q` of the tracked latency stays under
//! `objective`", e.g. *p99 of update-to-visible freshness < 50 ms*. The
//! tracker keeps a sliding window of timestamped samples and reports the
//! classic multi-window **burn rate**: the fraction of samples violating
//! the objective divided by the error budget (`1 − q`). A burn rate of
//! 1.0 means the budget is being consumed exactly as fast as it accrues;
//! sustained values above 1.0 on the short window are page-worthy and are
//! what the deployment's anomaly hook watches.
//!
//! Recording takes one short mutex (the prober records a handful of
//! samples per second — this is nowhere near a hot path).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Objective + window configuration for one tracked SLO.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Latency objective in nanoseconds (e.g. 50 ms).
    pub objective_ns: u64,
    /// Target quantile in percent (e.g. 99.0 ⇒ 1% error budget).
    pub quantile: f64,
    /// Fast-burn window (classically 5 minutes).
    pub short_window: Duration,
    /// Slow-burn window (classically 1 hour).
    pub long_window: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objective_ns: 50_000_000, // 50 ms
            quantile: 99.0,
            short_window: Duration::from_secs(300),
            long_window: Duration::from_secs(3600),
        }
    }
}

/// Bound on retained samples; beyond it the oldest are discarded early.
/// At one probe per 50 ms this holds over an hour of history.
const MAX_SAMPLES: usize = 1 << 16;

#[derive(Debug)]
struct WindowState {
    /// (arrival, latency_ns), oldest first.
    samples: VecDeque<(Instant, u64)>,
}

/// Sliding-window SLO tracker. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    state: Mutex<WindowState>,
}

impl SloTracker {
    /// New tracker for `config`.
    pub fn new(config: SloConfig) -> SloTracker {
        SloTracker {
            config,
            state: Mutex::new(WindowState {
                samples: VecDeque::new(),
            }),
        }
    }

    /// The configured objective.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Record one observed latency.
    pub fn record(&self, latency_ns: u64) {
        let mut s = self.state.lock();
        s.samples.push_back((Instant::now(), latency_ns));
        if s.samples.len() > MAX_SAMPLES {
            s.samples.pop_front();
        }
        let horizon = Instant::now() - self.config.long_window.min(Duration::from_secs(86_400));
        while s.samples.front().is_some_and(|(t, _)| *t < horizon) {
            s.samples.pop_front();
        }
    }

    /// `(violating, total)` over the trailing `window`.
    fn window_counts(&self, window: Duration) -> (u64, u64) {
        let cutoff = Instant::now().checked_sub(window);
        let s = self.state.lock();
        let mut violating = 0u64;
        let mut total = 0u64;
        for (t, lat) in s.samples.iter().rev() {
            if let Some(cutoff) = cutoff {
                if *t < cutoff {
                    break;
                }
            }
            total += 1;
            if *lat > self.config.objective_ns {
                violating += 1;
            }
        }
        (violating, total)
    }

    /// Burn rate over `window`: violating fraction ÷ error budget.
    /// 0.0 with no samples; 1.0 = budget consumed exactly at the rate it
    /// accrues; > 1.0 = burning.
    pub fn burn_rate(&self, window: Duration) -> f64 {
        let (violating, total) = self.window_counts(window);
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.config.quantile / 100.0).max(1e-9);
        (violating as f64 / total as f64) / budget
    }

    /// Burn rate over the configured short window.
    pub fn short_burn(&self) -> f64 {
        self.burn_rate(self.config.short_window)
    }

    /// Burn rate over the configured long window.
    pub fn long_burn(&self) -> f64 {
        self.burn_rate(self.config.long_window)
    }

    /// Whether the objective currently holds over the long window (the
    /// violating fraction fits in the error budget).
    pub fn objective_met(&self) -> bool {
        self.long_burn() <= 1.0
    }

    /// Samples currently retained (diagnostics).
    pub fn samples(&self) -> usize {
        self.state.lock().samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(objective_ns: u64, quantile: f64) -> SloTracker {
        SloTracker::new(SloConfig {
            objective_ns,
            quantile,
            short_window: Duration::from_secs(60),
            long_window: Duration::from_secs(120),
        })
    }

    #[test]
    fn empty_tracker_is_quiet() {
        let t = tracker(1_000, 99.0);
        assert_eq!(t.short_burn(), 0.0);
        assert!(t.objective_met());
    }

    #[test]
    fn burn_rate_is_violations_over_budget() {
        let t = tracker(1_000, 99.0); // 1% budget
                                      // 2 violations in 100 samples = 2% violating = burn 2.0.
        for i in 0..100u64 {
            t.record(if i < 2 { 5_000 } else { 10 });
        }
        let burn = t.short_burn();
        assert!((burn - 2.0).abs() < 1e-9, "burn {burn}");
        assert!(!t.objective_met());
    }

    #[test]
    fn all_good_samples_meet_objective() {
        let t = tracker(1_000_000, 99.0);
        for _ in 0..1000 {
            t.record(500);
        }
        assert_eq!(t.short_burn(), 0.0);
        assert!(t.objective_met());
    }

    #[test]
    fn sample_cap_is_enforced() {
        let t = tracker(1_000, 50.0);
        for _ in 0..(MAX_SAMPLES + 500) {
            t.record(1);
        }
        assert!(t.samples() <= MAX_SAMPLES);
    }

    #[test]
    fn exact_objective_value_is_not_a_violation() {
        let t = tracker(1_000, 99.0);
        for _ in 0..10 {
            t.record(1_000); // equal to the objective: within SLO
        }
        assert_eq!(t.short_burn(), 0.0);
    }
}
