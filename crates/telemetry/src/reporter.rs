//! Periodic stats reporting thread.
//!
//! [`StatsReporter`] runs a caller-supplied closure at a fixed interval on
//! a named background thread. The deployment uses it to refresh pipeline
//! gauges (mq lag, actor mailbox depth, kvstore sizes) and optionally
//! print the registry table; anything else that needs a heartbeat (cache
//! resize loops, watchdogs) can reuse it. The thread wakes every few
//! milliseconds to check the stop flag so shutdown is prompt even with
//! long intervals.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to a periodic reporting thread; stops and joins on drop.
pub struct StatsReporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl StatsReporter {
    /// Spawn a thread named `name` that runs `tick` every `interval`.
    /// The first tick fires after one interval, not immediately.
    pub fn start<F>(name: &str, interval: Duration, mut tick: F) -> StatsReporter
    where
        F: FnMut() + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                while !stop2.load(Ordering::Relaxed) {
                    if Instant::now() >= next {
                        tick();
                        next = Instant::now() + interval;
                    }
                    let nap = next
                        .saturating_duration_since(Instant::now())
                        .min(Duration::from_millis(10));
                    std::thread::sleep(nap.max(Duration::from_millis(1)));
                }
            })
            .expect("spawn stats reporter");
        StatsReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Run one final tick (on the caller's thread) after stopping the
    /// reporter, so the last interval's data is not lost. Consumes the
    /// reporter.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_periodically_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let r = StatsReporter::start("test-reporter", Duration::from_millis(5), move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(60));
        r.stop();
        let ticks = n.load(Ordering::Relaxed);
        assert!(ticks >= 3, "expected several ticks, got {ticks}");
        let after = n.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(n.load(Ordering::Relaxed), after, "stopped means stopped");
    }

    #[test]
    fn drop_joins_thread() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        {
            let _r = StatsReporter::start("drop-reporter", Duration::from_millis(2), move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(10));
        }
        let after = n.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(n.load(Ordering::Relaxed), after);
    }
}
