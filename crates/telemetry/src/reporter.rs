//! Periodic stats reporting thread.
//!
//! [`StatsReporter`] runs a caller-supplied closure at a fixed interval on
//! a named background thread. The deployment uses it to refresh pipeline
//! gauges (mq lag, actor mailbox depth, kvstore sizes) and optionally
//! print the registry table; anything else that needs a heartbeat (cache
//! resize loops, watchdogs) can reuse it. The thread wakes every few
//! milliseconds to check the stop flag so shutdown is prompt even with
//! long intervals.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to a periodic reporting thread; stops and joins on drop.
pub struct StatsReporter {
    stop: Arc<AtomicBool>,
    // Shared with the reporter thread so `stop()` can run one final tick
    // on the caller's thread after the join (never concurrently).
    tick: Arc<Mutex<Box<dyn FnMut() + Send>>>,
    handle: Option<JoinHandle<()>>,
}

impl StatsReporter {
    /// Spawn a thread named `name` that runs `tick` every `interval`.
    /// The first tick fires after one interval, not immediately.
    pub fn start<F>(name: &str, interval: Duration, tick: F) -> StatsReporter
    where
        F: FnMut() + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let tick: Arc<Mutex<Box<dyn FnMut() + Send>>> = Arc::new(Mutex::new(Box::new(tick)));
        let tick2 = Arc::clone(&tick);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                let mut next = Instant::now() + interval;
                while !stop2.load(Ordering::Relaxed) {
                    if Instant::now() >= next {
                        (tick2.lock())();
                        next = Instant::now() + interval;
                    }
                    let nap = next
                        .saturating_duration_since(Instant::now())
                        .min(Duration::from_millis(10));
                    std::thread::sleep(nap.max(Duration::from_millis(1)));
                }
            })
            .expect("spawn stats reporter");
        StatsReporter {
            stop,
            tick,
            handle: Some(handle),
        }
    }

    /// Stop the reporter, join its thread, then run one final tick (on
    /// the caller's thread) so the last partial interval's data is not
    /// lost. Consumes the reporter.
    pub fn stop(mut self) {
        self.shutdown();
        (self.tick.lock())();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StatsReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_periodically_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let r = StatsReporter::start("test-reporter", Duration::from_millis(5), move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(60));
        r.stop();
        let ticks = n.load(Ordering::Relaxed);
        assert!(ticks >= 3, "expected several ticks, got {ticks}");
        let after = n.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(n.load(Ordering::Relaxed), after, "stopped means stopped");
    }

    #[test]
    fn stop_flushes_a_final_tick() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        // Interval far longer than the test: the thread never ticks on
        // its own, so the only tick is the flush from stop().
        let r = StatsReporter::start("flush-reporter", Duration::from_secs(3600), move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 0);
        r.stop();
        assert_eq!(n.load(Ordering::Relaxed), 1, "stop() must flush one tick");
    }

    #[test]
    fn drop_joins_thread() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        {
            let _r = StatsReporter::start("drop-reporter", Duration::from_millis(2), move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            std::thread::sleep(Duration::from_millis(10));
        }
        let after = n.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(n.load(Ordering::Relaxed), after);
    }
}
