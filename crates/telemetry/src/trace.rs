//! Flag-gated span tracing with per-thread ring-buffer journals.
//!
//! Tracing answers "where did *this one* request/update go", not "what is
//! the aggregate latency" (that is the registry's job). Each traced
//! operation gets a [`TraceCtx`] — a trace id plus the parent span id —
//! that rides along with the message across queue boundaries. Every stage
//! opens a [`span`], which allocates a span id, and forwards
//! `guard.ctx()` so downstream stages become children.
//!
//! Recording is disabled by default. When disabled, [`span`] is two
//! relaxed atomic loads and no allocation; enabling it
//! ([`set_tracing`]) turns on journal writes. Finished spans land in a
//! per-thread ring buffer (no cross-thread contention on the record path);
//! [`drain_spans`] collects and clears all journals, and the result can be
//! serialised as JSONL ([`to_jsonl`]) or chrome://tracing JSON
//! ([`to_chrome_trace`]).

use bytes::{Buf, BufMut, BytesMut};
use helios_types::{Decode, Encode, HeliosError, Result};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Per-thread journal capacity. Oldest spans are overwritten first; a
/// single request/update trace is a handful of spans, so 16Ki per thread
/// comfortably holds the recent history of a busy worker.
const JOURNAL_CAP: usize = 16 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
// Head-sampling rate as f64 bits; 1.0 keeps the pre-sampling behaviour
// (every root is traced when tracing is enabled).
static SAMPLE_BITS: AtomicU64 = AtomicU64::new(0x3FF0_0000_0000_0000); // 1.0f64

/// Turn span recording on or off process-wide.
pub fn set_tracing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Set the probabilistic head-sampling rate: the fraction of new traces
/// ([`TraceCtx::root`]) that are actually sampled when tracing is
/// enabled. Clamped to `[0, 1]`; non-finite input falls back to `1.0`.
/// The per-trace decision is made once at the root and carried in the
/// [`TraceCtx`], so a trace is either recorded at every stage or at none.
pub fn set_trace_sample_rate(rate: f64) {
    let rate = if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        1.0
    };
    SAMPLE_BITS.store(rate.to_bits(), Ordering::Relaxed);
}

/// The current head-sampling rate (fraction of roots sampled).
pub fn trace_sample_rate() -> f64 {
    f64::from_bits(SAMPLE_BITS.load(Ordering::Relaxed))
}

thread_local! {
    // Per-thread splitmix64 state for the sampling coin flip — no locks,
    // no external RNG dependency on the serve hot path.
    static SAMPLE_RNG: std::cell::Cell<u64> = std::cell::Cell::new({
        // Seed from the global id counter plus the thread-local's address
        // so threads start decorrelated.
        let addr = &SAMPLE_RNG as *const _ as u64;
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ addr
    });
}

#[inline]
fn sample_decision() -> bool {
    let rate = trace_sample_rate();
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    let x = SAMPLE_RNG.with(|s| {
        // splitmix64 step.
        let mut z = s.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
        s.set(z);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    });
    // Top 53 bits → uniform in [0, 1).
    ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_since_epoch_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Trace context carried across queue/thread boundaries: which trace this
/// message belongs to and which span caused it. `trace == 0` means "not
/// traced" and makes every downstream [`span`] free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id; 0 = untraced.
    pub trace: u64,
    /// Span id of the causing span; 0 = root.
    pub parent: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        parent: 0,
    };

    /// Whether this context belongs to an active trace.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.trace != 0
    }

    /// Start a new trace — an active root context when tracing is
    /// enabled *and* the head-sampling coin flip
    /// ([`set_trace_sample_rate`]) selects this trace,
    /// [`TraceCtx::NONE`] otherwise (so callers can stamp
    /// unconditionally). The decision is made once here and then carried
    /// in the context across every queue/thread boundary.
    #[inline]
    pub fn root() -> TraceCtx {
        if tracing_enabled() && sample_decision() {
            TraceCtx {
                trace: next_id(),
                parent: 0,
            }
        } else {
            TraceCtx::NONE
        }
    }
}

impl Encode for TraceCtx {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.trace);
        buf.put_u64_le(self.parent);
    }
}

impl Decode for TraceCtx {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 16 {
            return Err(HeliosError::Codec(format!(
                "truncated input: need 16 bytes for TraceCtx, have {}",
                buf.remaining()
            )));
        }
        Ok(TraceCtx {
            trace: buf.get_u64_le(),
            parent: buf.get_u64_le(),
        })
    }
}

/// A finished span as recorded in a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique within the process).
    pub span: u64,
    /// Parent span id; 0 for a trace root.
    pub parent: u64,
    /// Stage name, e.g. `serve.router` or `sampler.shard`.
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Name of the thread the span ran on.
    pub thread: String,
}

// Journal entries carry a process-wide record sequence number so
// non-destructive readers ([`read_spans_since`]) can window their reads
// without clearing the ring under destructive ones ([`drain_spans`]).
type Journal = Arc<Mutex<VecDeque<(u64, SpanRecord)>>>;

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

fn journals() -> &'static Mutex<Vec<Journal>> {
    static JOURNALS: OnceLock<Mutex<Vec<Journal>>> = OnceLock::new();
    JOURNALS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_JOURNAL: Journal = {
        let j: Journal = Arc::new(Mutex::new(VecDeque::new()));
        journals().lock().push(Arc::clone(&j));
        j
    };
}

fn record(rec: SpanRecord) {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    LOCAL_JOURNAL.with(|j| {
        let mut j = j.lock();
        if j.len() >= JOURNAL_CAP {
            j.pop_front();
        }
        j.push_back((seq, rec));
    });
}

/// Open a span named `name` under `ctx`. Returns an inert guard (no id,
/// no recording) when tracing is disabled or the context is untraced —
/// the disabled path is two relaxed loads.
#[inline]
pub fn span(name: &'static str, ctx: TraceCtx) -> SpanGuard {
    if !tracing_enabled() || !ctx.is_active() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            trace: ctx.trace,
            span: next_id(),
            parent: ctx.parent,
            name,
            start_ns: now_since_epoch_ns(),
        }),
    }
}

struct ActiveSpan {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

/// RAII span: records itself into the thread journal on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.span)
    }

    /// Context to forward downstream: same trace, this span as parent.
    /// [`TraceCtx::NONE`] when inert, so propagation is unconditional.
    pub fn ctx(&self) -> TraceCtx {
        match &self.active {
            Some(a) => TraceCtx {
                trace: a.trace,
                parent: a.span,
            },
            None => TraceCtx::NONE,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            record(SpanRecord {
                trace: a.trace,
                span: a.span,
                parent: a.parent,
                name: a.name,
                start_ns: a.start_ns,
                end_ns: now_since_epoch_ns(),
                thread: std::thread::current().name().unwrap_or("?").to_string(),
            });
        }
    }
}

/// Collect and clear every thread journal, sorted by start time.
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for j in journals().lock().iter() {
        out.extend(j.lock().drain(..).map(|(_, r)| r));
    }
    out.sort_by_key(|s| (s.trace, s.start_ns, s.span));
    out
}

/// Copy every span recorded at-or-after `cursor` (and still retained)
/// out of the journals *without* clearing them, returning the spans plus
/// the cursor for the next read. Each recorded span is returned at most
/// once per cursor chain, so several independent consumers (e.g. one
/// retained-trace store per deployment, plus tests draining) can read
/// the same process-global journals without stealing from each other.
/// Start from cursor `0` (or [`current_span_cursor`]) and feed the
/// returned cursor back in.
pub fn read_spans_since(cursor: u64) -> (Vec<SpanRecord>, u64) {
    // Window `[cursor, next)`: spans whose sequence number lands at or
    // past `next` while we scan are left for the next read, so a racing
    // recorder produces no duplicates.
    let next = NEXT_SEQ.load(Ordering::Relaxed);
    let mut out = Vec::new();
    for j in journals().lock().iter() {
        out.extend(
            j.lock()
                .iter()
                .filter(|(s, _)| *s >= cursor && *s < next)
                .map(|(_, r)| r.clone()),
        );
    }
    out.sort_by_key(|s| (s.trace, s.start_ns, s.span));
    (out, next)
}

/// The sequence number the next recorded span will receive; a starting
/// cursor for [`read_spans_since`] that skips everything already journaled.
pub fn current_span_cursor() -> u64 {
    NEXT_SEQ.load(Ordering::Relaxed)
}

/// Clear every thread journal without collecting.
pub fn clear_spans() {
    for j in journals().lock().iter() {
        j.lock().clear();
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSON object per line, one line per span.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = writeln!(
            out,
            "{{\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{},\"thread\":\"{}\"}}",
            s.trace,
            s.span,
            s.parent,
            json_escape(s.name),
            s.start_ns,
            s.end_ns,
            s.end_ns.saturating_sub(s.start_ns),
            json_escape(&s.thread),
        );
    }
    out
}

/// chrome://tracing / Perfetto "trace event" JSON: one complete (`"X"`)
/// event per span, grouped by thread name, microsecond timestamps.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    // Stable small integers for thread ids.
    let mut tids: Vec<&str> = Vec::new();
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        let tid = match tids.iter().position(|t| *t == s.thread) {
            Some(p) => p,
            None => {
                tids.push(&s.thread);
                tids.len() - 1
            }
        };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"trace{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            json_escape(s.name),
            s.trace,
            s.start_ns as f64 / 1e3,
            s.end_ns.saturating_sub(s.start_ns) as f64 / 1e3,
            tid,
            s.trace,
            s.span,
            s.parent,
        );
    }
    // Thread-name metadata so the viewer shows real names.
    for (tid, t) in tids.iter().enumerate() {
        if !out.ends_with('[') {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            json_escape(t),
        );
    }
    out.push(']');
    out
}

// Tracing state is process-global; tests that toggle it (here and in
// sibling modules) serialise on this gate.
#[cfg(test)]
pub(crate) fn test_gate() -> parking_lot::MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> parking_lot::MutexGuard<'static, ()> {
        test_gate()
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = lock();
        set_tracing(false);
        clear_spans();
        let root = TraceCtx::root();
        assert!(!root.is_active());
        let s = span("x", root);
        assert_eq!(s.id(), 0);
        assert_eq!(s.ctx(), TraceCtx::NONE);
        drop(s);
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn parent_child_links_recorded() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let root_ctx = TraceCtx::root();
        let parent = span("parent", root_ctx);
        let pid = parent.id();
        let child = span("child", parent.ctx());
        let cid = child.id();
        drop(child);
        drop(parent);
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let p = spans.iter().find(|s| s.name == "parent").unwrap();
        let c = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(p.span, pid);
        assert_eq!(p.parent, 0);
        assert_eq!(c.span, cid);
        assert_eq!(c.parent, pid);
        assert_eq!(c.trace, p.trace);
        assert!(c.start_ns >= p.start_ns);
        assert!(c.end_ns <= p.end_ns);
    }

    #[test]
    fn spans_cross_threads_and_drain_clears() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let ctx = TraceCtx::root();
        let parent = span("main", ctx);
        let fwd = parent.ctx();
        std::thread::Builder::new()
            .name("worker-7".into())
            .spawn(move || {
                let _s = span("worker", fwd);
            })
            .unwrap()
            .join()
            .unwrap();
        drop(parent);
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let w = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(w.thread, "worker-7");
        assert!(drain_spans().is_empty(), "drain clears journals");
    }

    #[test]
    fn journal_is_bounded() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let ctx = TraceCtx::root();
        for _ in 0..(JOURNAL_CAP + 100) {
            let _s = span("tick", ctx);
        }
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), JOURNAL_CAP);
    }

    #[test]
    fn head_sampling_gates_roots() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        set_trace_sample_rate(0.0);
        for _ in 0..100 {
            assert!(!TraceCtx::root().is_active(), "rate 0 samples nothing");
        }
        set_trace_sample_rate(1.0);
        assert!(TraceCtx::root().is_active(), "rate 1 samples everything");
        // A fractional rate selects roughly that fraction of roots.
        set_trace_sample_rate(0.25);
        let n = 4000;
        let sampled = (0..n).filter(|_| TraceCtx::root().is_active()).count();
        assert!(
            (n / 8..n / 2).contains(&sampled),
            "0.25 sampling picked {sampled}/{n}"
        );
        set_trace_sample_rate(1.0);
        set_tracing(false);
        clear_spans();
    }

    #[test]
    fn sample_rate_is_clamped() {
        let _g = lock();
        set_trace_sample_rate(7.5);
        assert_eq!(trace_sample_rate(), 1.0);
        set_trace_sample_rate(-3.0);
        assert_eq!(trace_sample_rate(), 0.0);
        set_trace_sample_rate(f64::NAN);
        assert_eq!(trace_sample_rate(), 1.0);
        set_trace_sample_rate(1.0);
    }

    #[test]
    fn journal_wraparound_evicts_oldest_first() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let ctx = TraceCtx::root();
        let mut ids = Vec::with_capacity(JOURNAL_CAP + 256);
        for _ in 0..(JOURNAL_CAP + 256) {
            let s = span("tick", ctx);
            ids.push(s.id());
        }
        set_tracing(false);
        let spans = drain_spans();
        // The survivors must be exactly the newest CAP records (ignore any
        // spans other threads in this binary may have recorded meanwhile).
        let drained: Vec<u64> = {
            let mut v: Vec<u64> = spans
                .iter()
                .filter(|s| s.name == "tick")
                .map(|s| s.span)
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(drained.len(), JOURNAL_CAP, "ring keeps exactly CAP spans");
        let expected: Vec<u64> = {
            let mut v = ids[ids.len() - JOURNAL_CAP..].to_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(drained, expected, "oldest spans are evicted first");
    }

    #[test]
    fn drain_races_concurrent_recording_without_corruption() {
        let _g = lock();
        set_tracing(true);
        set_trace_sample_rate(1.0);
        clear_spans();
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 1500;
        let done = std::sync::atomic::AtomicUsize::new(0);
        let collected = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let done = &done;
                scope.spawn(move || {
                    for _ in 0..PER_WRITER {
                        let root = TraceCtx::root();
                        let p = span("race.parent", root);
                        let c = span("race.child", p.ctx());
                        drop(c);
                        drop(p);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    let _ = w;
                });
            }
            // Drain concurrently while the writers hammer their journals.
            while done.load(Ordering::Relaxed) < WRITERS {
                collected.lock().extend(drain_spans());
                std::thread::yield_now();
            }
        });
        set_tracing(false);
        let mut all = collected.into_inner();
        all.extend(drain_spans());
        // Other tests in this binary may record spans concurrently; judge
        // only the spans this test emitted.
        all.retain(|s| s.name.starts_with("race."));
        // Every record must be internally consistent; ids must be unique.
        let mut seen = std::collections::HashSet::new();
        let mut parents = std::collections::HashMap::new();
        for s in &all {
            assert!(seen.insert(s.span), "duplicate span id {}", s.span);
            assert_ne!(s.trace, 0, "recorded spans carry a trace id");
            if s.name == "race.parent" {
                parents.insert(s.span, s.trace);
            }
        }
        let mut linked = 0usize;
        for s in &all {
            if s.name == "race.child" {
                assert_ne!(s.parent, 0, "children never lose their parent link");
                // A child's parent, whenever drained, is in the same trace:
                // no cross-trace corruption from concurrent drains.
                if let Some(&t) = parents.get(&s.parent) {
                    assert_eq!(t, s.trace, "child trace matches its parent's");
                    linked += 1;
                }
            }
        }
        assert_eq!(
            all.len(),
            WRITERS * PER_WRITER * 2,
            "no spans lost while draining concurrently"
        );
        assert!(linked > 0, "at least some parent/child pairs observed");
    }

    #[test]
    fn cursor_reads_are_non_destructive_and_windowed() {
        let _g = lock();
        set_tracing(true);
        set_trace_sample_rate(1.0);
        clear_spans();
        let ctx = TraceCtx::root();
        let before = current_span_cursor();
        drop(span("cursor.a", ctx));
        let (first, mid) = read_spans_since(before);
        assert_eq!(
            first.iter().filter(|s| s.name == "cursor.a").count(),
            1,
            "window covers the new span"
        );
        drop(span("cursor.b", ctx));
        // Advancing from the returned cursor sees only what came after…
        let (second, _) = read_spans_since(mid);
        assert!(second.iter().any(|s| s.name == "cursor.b"));
        assert!(
            !second.iter().any(|s| s.name == "cursor.a"),
            "consumed window is not re-read"
        );
        // …while an independent consumer reading from its own cursor still
        // sees everything: nothing was stolen.
        let (replay, _) = read_spans_since(before);
        for name in ["cursor.a", "cursor.b"] {
            assert!(
                replay.iter().any(|s| s.name == name),
                "{name} still journaled for other consumers"
            );
        }
        // The destructive drain still works on top.
        let drained = drain_spans();
        assert!(drained.iter().any(|s| s.name == "cursor.a"));
        let (after_drain, _) = read_spans_since(before);
        assert!(
            !after_drain.iter().any(|s| s.name.starts_with("cursor.")),
            "drain clears the journals for cursor readers too"
        );
        set_tracing(false);
        clear_spans();
    }

    #[test]
    fn jsonl_and_chrome_formats() {
        let spans = vec![
            SpanRecord {
                trace: 9,
                span: 2,
                parent: 1,
                name: "serve.hop",
                start_ns: 1_000,
                end_ns: 3_500,
                thread: "sew0-serve-0".into(),
            },
            SpanRecord {
                trace: 9,
                span: 3,
                parent: 2,
                name: "kv.get",
                start_ns: 1_200,
                end_ns: 2_000,
                thread: "sew0-serve-0".into(),
            },
        ];
        let jsonl = to_jsonl(&spans);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"trace\":9"));
        assert!(jsonl.contains("\"parent\":2"));
        assert!(jsonl.contains("\"dur_ns\":2500"));
        let chrome = to_chrome_trace(&spans);
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"M\""));
        assert!(chrome.contains("sew0-serve-0"));
    }

    #[test]
    fn trace_ctx_roundtrips_encode() {
        let ctx = TraceCtx {
            trace: 77,
            parent: 12,
        };
        let bytes = ctx.encode_to_bytes();
        assert_eq!(bytes.len(), 16);
        let back = TraceCtx::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, ctx);
        assert!(TraceCtx::decode_from_slice(&bytes[..7]).is_err());
    }
}
