//! Flag-gated span tracing with per-thread ring-buffer journals.
//!
//! Tracing answers "where did *this one* request/update go", not "what is
//! the aggregate latency" (that is the registry's job). Each traced
//! operation gets a [`TraceCtx`] — a trace id plus the parent span id —
//! that rides along with the message across queue boundaries. Every stage
//! opens a [`span`], which allocates a span id, and forwards
//! `guard.ctx()` so downstream stages become children.
//!
//! Recording is disabled by default. When disabled, [`span`] is two
//! relaxed atomic loads and no allocation; enabling it
//! ([`set_tracing`]) turns on journal writes. Finished spans land in a
//! per-thread ring buffer (no cross-thread contention on the record path);
//! [`drain_spans`] collects and clears all journals, and the result can be
//! serialised as JSONL ([`to_jsonl`]) or chrome://tracing JSON
//! ([`to_chrome_trace`]).

use bytes::{Buf, BufMut, BytesMut};
use helios_types::{Decode, Encode, HeliosError, Result};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Per-thread journal capacity. Oldest spans are overwritten first; a
/// single request/update trace is a handful of spans, so 16Ki per thread
/// comfortably holds the recent history of a busy worker.
const JOURNAL_CAP: usize = 16 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Turn span recording on or off process-wide.
pub fn set_tracing(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_since_epoch_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Trace context carried across queue/thread boundaries: which trace this
/// message belongs to and which span caused it. `trace == 0` means "not
/// traced" and makes every downstream [`span`] free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id; 0 = untraced.
    pub trace: u64,
    /// Span id of the causing span; 0 = root.
    pub parent: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        parent: 0,
    };

    /// Whether this context belongs to an active trace.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.trace != 0
    }

    /// Start a new trace — an active root context when tracing is
    /// enabled, [`TraceCtx::NONE`] otherwise (so callers can stamp
    /// unconditionally).
    #[inline]
    pub fn root() -> TraceCtx {
        if tracing_enabled() {
            TraceCtx {
                trace: next_id(),
                parent: 0,
            }
        } else {
            TraceCtx::NONE
        }
    }
}

impl Encode for TraceCtx {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.trace);
        buf.put_u64_le(self.parent);
    }
}

impl Decode for TraceCtx {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 16 {
            return Err(HeliosError::Codec(format!(
                "truncated input: need 16 bytes for TraceCtx, have {}",
                buf.remaining()
            )));
        }
        Ok(TraceCtx {
            trace: buf.get_u64_le(),
            parent: buf.get_u64_le(),
        })
    }
}

/// A finished span as recorded in a journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique within the process).
    pub span: u64,
    /// Parent span id; 0 for a trace root.
    pub parent: u64,
    /// Stage name, e.g. `serve.router` or `sampler.shard`.
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Name of the thread the span ran on.
    pub thread: String,
}

type Journal = Arc<Mutex<VecDeque<SpanRecord>>>;

fn journals() -> &'static Mutex<Vec<Journal>> {
    static JOURNALS: OnceLock<Mutex<Vec<Journal>>> = OnceLock::new();
    JOURNALS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_JOURNAL: Journal = {
        let j: Journal = Arc::new(Mutex::new(VecDeque::new()));
        journals().lock().push(Arc::clone(&j));
        j
    };
}

fn record(rec: SpanRecord) {
    LOCAL_JOURNAL.with(|j| {
        let mut j = j.lock();
        if j.len() >= JOURNAL_CAP {
            j.pop_front();
        }
        j.push_back(rec);
    });
}

/// Open a span named `name` under `ctx`. Returns an inert guard (no id,
/// no recording) when tracing is disabled or the context is untraced —
/// the disabled path is two relaxed loads.
#[inline]
pub fn span(name: &'static str, ctx: TraceCtx) -> SpanGuard {
    if !tracing_enabled() || !ctx.is_active() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            trace: ctx.trace,
            span: next_id(),
            parent: ctx.parent,
            name,
            start_ns: now_since_epoch_ns(),
        }),
    }
}

struct ActiveSpan {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

/// RAII span: records itself into the thread journal on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.span)
    }

    /// Context to forward downstream: same trace, this span as parent.
    /// [`TraceCtx::NONE`] when inert, so propagation is unconditional.
    pub fn ctx(&self) -> TraceCtx {
        match &self.active {
            Some(a) => TraceCtx {
                trace: a.trace,
                parent: a.span,
            },
            None => TraceCtx::NONE,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            record(SpanRecord {
                trace: a.trace,
                span: a.span,
                parent: a.parent,
                name: a.name,
                start_ns: a.start_ns,
                end_ns: now_since_epoch_ns(),
                thread: std::thread::current().name().unwrap_or("?").to_string(),
            });
        }
    }
}

/// Collect and clear every thread journal, sorted by start time.
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for j in journals().lock().iter() {
        out.extend(j.lock().drain(..));
    }
    out.sort_by_key(|s| (s.trace, s.start_ns, s.span));
    out
}

/// Clear every thread journal without collecting.
pub fn clear_spans() {
    for j in journals().lock().iter() {
        j.lock().clear();
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSON object per line, one line per span.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        let _ = writeln!(
            out,
            "{{\"trace\":{},\"span\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"dur_ns\":{},\"thread\":\"{}\"}}",
            s.trace,
            s.span,
            s.parent,
            json_escape(s.name),
            s.start_ns,
            s.end_ns,
            s.end_ns.saturating_sub(s.start_ns),
            json_escape(&s.thread),
        );
    }
    out
}

/// chrome://tracing / Perfetto "trace event" JSON: one complete (`"X"`)
/// event per span, grouped by thread name, microsecond timestamps.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    // Stable small integers for thread ids.
    let mut tids: Vec<&str> = Vec::new();
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        let tid = match tids.iter().position(|t| *t == s.thread) {
            Some(p) => p,
            None => {
                tids.push(&s.thread);
                tids.len() - 1
            }
        };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"trace{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            json_escape(s.name),
            s.trace,
            s.start_ns as f64 / 1e3,
            s.end_ns.saturating_sub(s.start_ns) as f64 / 1e3,
            tid,
            s.trace,
            s.span,
            s.parent,
        );
    }
    // Thread-name metadata so the viewer shows real names.
    for (tid, t) in tids.iter().enumerate() {
        if !out.ends_with('[') {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            json_escape(t),
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; serialise the tests that toggle it.
    fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = lock();
        set_tracing(false);
        clear_spans();
        let root = TraceCtx::root();
        assert!(!root.is_active());
        let s = span("x", root);
        assert_eq!(s.id(), 0);
        assert_eq!(s.ctx(), TraceCtx::NONE);
        drop(s);
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn parent_child_links_recorded() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let root_ctx = TraceCtx::root();
        let parent = span("parent", root_ctx);
        let pid = parent.id();
        let child = span("child", parent.ctx());
        let cid = child.id();
        drop(child);
        drop(parent);
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let p = spans.iter().find(|s| s.name == "parent").unwrap();
        let c = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(p.span, pid);
        assert_eq!(p.parent, 0);
        assert_eq!(c.span, cid);
        assert_eq!(c.parent, pid);
        assert_eq!(c.trace, p.trace);
        assert!(c.start_ns >= p.start_ns);
        assert!(c.end_ns <= p.end_ns);
    }

    #[test]
    fn spans_cross_threads_and_drain_clears() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let ctx = TraceCtx::root();
        let parent = span("main", ctx);
        let fwd = parent.ctx();
        std::thread::Builder::new()
            .name("worker-7".into())
            .spawn(move || {
                let _s = span("worker", fwd);
            })
            .unwrap()
            .join()
            .unwrap();
        drop(parent);
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), 2);
        let w = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(w.thread, "worker-7");
        assert!(drain_spans().is_empty(), "drain clears journals");
    }

    #[test]
    fn journal_is_bounded() {
        let _g = lock();
        set_tracing(true);
        clear_spans();
        let ctx = TraceCtx::root();
        for _ in 0..(JOURNAL_CAP + 100) {
            let _s = span("tick", ctx);
        }
        set_tracing(false);
        let spans = drain_spans();
        assert_eq!(spans.len(), JOURNAL_CAP);
    }

    #[test]
    fn jsonl_and_chrome_formats() {
        let spans = vec![
            SpanRecord {
                trace: 9,
                span: 2,
                parent: 1,
                name: "serve.hop",
                start_ns: 1_000,
                end_ns: 3_500,
                thread: "sew0-serve-0".into(),
            },
            SpanRecord {
                trace: 9,
                span: 3,
                parent: 2,
                name: "kv.get",
                start_ns: 1_200,
                end_ns: 2_000,
                thread: "sew0-serve-0".into(),
            },
        ];
        let jsonl = to_jsonl(&spans);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"trace\":9"));
        assert!(jsonl.contains("\"parent\":2"));
        assert!(jsonl.contains("\"dur_ns\":2500"));
        let chrome = to_chrome_trace(&spans);
        assert!(chrome.starts_with('[') && chrome.ends_with(']'));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"M\""));
        assert!(chrome.contains("sew0-serve-0"));
    }

    #[test]
    fn trace_ctx_roundtrips_encode() {
        let ctx = TraceCtx {
            trace: 77,
            parent: 12,
        };
        let bytes = ctx.encode_to_bytes();
        assert_eq!(bytes.len(), 16);
        let back = TraceCtx::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, ctx);
        assert!(TraceCtx::decode_from_slice(&bytes[..7]).is_err());
    }
}
