//! Embedded operational HTTP server.
//!
//! A deliberately tiny, dependency-free HTTP/1.1 server (std
//! `TcpListener`, one handler thread) exposing the observability surface
//! of one deployment:
//!
//! * `GET /metrics` — Prometheus text exposition of the registry
//!   ([`crate::exposition::render_prometheus`]);
//! * `GET /healthz` — runs the registered component probes; `200` when
//!   all healthy, `503` otherwise, JSON body either way;
//! * `GET /vars` — JSON snapshot of every counter/gauge plus histogram
//!   summaries (count, p50/p99/max in ms);
//! * `GET|POST /trace/start`, `/trace/stop` — toggle span tracing at
//!   runtime; `/trace/stop` returns the drained spans as JSONL;
//! * `GET /traces` — summaries of tail-retained traces (slow, errored or
//!   flagged requests); `?id=<trace>` fetches one trace's spans as JSONL,
//!   `?id=<trace>&format=chrome` as chrome://tracing JSON;
//! * `GET /recorder` — the flight recorder's ring as JSONL.
//! * `GET /profile?seconds=N` — run the in-process sampling profiler
//!   for `N` seconds (default 1, capped) and return folded stacks
//!   (`format=collapsed`, the only format) ready for flamegraph tools.
//!
//! The server exists for scrape-and-poke traffic (one Prometheus scraper,
//! an operator's `curl`), not for serving-path load: connections are
//! handled sequentially with short read timeouts.

use crate::exposition::render_prometheus;
use crate::profiler::{Profiler, MAX_PROFILE_SECS};
use crate::recorder::FlightRecorder;
use crate::registry::RegistrySnapshot;
use crate::retention::RetainedTraces;
use crate::trace;
use parking_lot::RwLock;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Result of one component health probe.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Component name, e.g. `mq`, `sampler`, `kvstore`, `pipeline`.
    pub component: String,
    /// Whether the component is within its healthy bounds.
    pub healthy: bool,
    /// Human-readable detail (current value vs bound).
    pub detail: String,
}

impl HealthReport {
    /// Convenience constructor.
    pub fn new(component: impl Into<String>, healthy: bool, detail: impl Into<String>) -> Self {
        HealthReport {
            component: component.into(),
            healthy,
            detail: detail.into(),
        }
    }
}

/// A named health probe, run on every `/healthz` request.
pub type HealthProbe = Box<dyn Fn() -> HealthReport + Send + Sync>;

/// Handler for a dynamically registered path: `(method, query)` in,
/// `(status code, content type, body)` out.
pub type DynHandler = Box<dyn Fn(&str, &str) -> (u16, String, String) + Send + Sync>;

/// Paths registered *after* the server started.
///
/// The builder-style [`OpsState`] is consumed by [`OpsServer::start`], so
/// components constructed later (e.g. a rescale controller that needs an
/// `Arc` to the deployment, which does not exist yet when the ops server
/// is wired up) cannot add endpoints through it. `DynRoutes` is the
/// escape hatch: share one handle with the ops state and register
/// handlers whenever the component comes up. Registering a path that
/// already exists replaces the old handler; built-in paths always win.
#[derive(Default)]
pub struct DynRoutes {
    routes: RwLock<Vec<(String, DynHandler)>>,
}

impl DynRoutes {
    /// An empty, shareable route table.
    pub fn new() -> Arc<DynRoutes> {
        Arc::new(DynRoutes::default())
    }

    /// Register (or replace) the handler for `path` (must start with `/`).
    pub fn register(
        &self,
        path: impl Into<String>,
        handler: impl Fn(&str, &str) -> (u16, String, String) + Send + Sync + 'static,
    ) {
        let path = path.into();
        debug_assert!(path.starts_with('/'), "dyn route must start with /");
        let mut routes = self.routes.write();
        routes.retain(|(p, _)| *p != path);
        routes.push((path, Box::new(handler)));
    }

    /// Currently registered paths.
    pub fn paths(&self) -> Vec<String> {
        self.routes.read().iter().map(|(p, _)| p.clone()).collect()
    }

    fn dispatch(&self, path: &str, method: &str, query: &str) -> Option<(u16, String, String)> {
        let routes = self.routes.read();
        let (_, handler) = routes.iter().find(|(p, _)| p == path)?;
        Some(handler(method, query))
    }
}

impl std::fmt::Debug for DynRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynRoutes")
            .field("paths", &self.paths())
            .finish()
    }
}

/// Everything the ops server serves from. Build one, then
/// [`OpsServer::start`] it.
pub struct OpsState {
    snapshot: Box<dyn Fn() -> RegistrySnapshot + Send + Sync>,
    probes: Vec<HealthProbe>,
    recorder: Option<Arc<FlightRecorder>>,
    retained: Option<Arc<RetainedTraces>>,
    profiler: Option<Arc<Profiler>>,
    dyn_routes: Option<Arc<DynRoutes>>,
}

impl OpsState {
    /// State serving snapshots from `snapshot` (typically a clone of the
    /// deployment registry behind a closure).
    pub fn new(snapshot: impl Fn() -> RegistrySnapshot + Send + Sync + 'static) -> OpsState {
        OpsState {
            snapshot: Box::new(snapshot),
            probes: Vec::new(),
            recorder: None,
            retained: None,
            profiler: None,
            dyn_routes: None,
        }
    }

    /// Add a component health probe.
    pub fn probe(mut self, probe: impl Fn() -> HealthReport + Send + Sync + 'static) -> OpsState {
        self.probes.push(Box::new(probe));
        self
    }

    /// Attach a flight recorder for `/recorder`.
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> OpsState {
        self.recorder = Some(recorder);
        self
    }

    /// Attach a retained-trace store for `/traces`.
    pub fn retained_traces(mut self, retained: Arc<RetainedTraces>) -> OpsState {
        self.retained = Some(retained);
        self
    }

    /// Attach a sampling profiler for `/profile`.
    pub fn profiler(mut self, profiler: Arc<Profiler>) -> OpsState {
        self.profiler = Some(profiler);
        self
    }

    /// Attach a dynamic route table; handlers registered on it later are
    /// served immediately.
    pub fn routes(mut self, routes: Arc<DynRoutes>) -> OpsState {
        self.dyn_routes = Some(routes);
        self
    }

    /// Run all probes.
    pub fn health(&self) -> Vec<HealthReport> {
        self.probes.iter().map(|p| p()).collect()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `/vars`: the snapshot as one JSON object.
fn render_vars(snap: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), v);
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, s)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_ms\":{:.6},\"p50_ms\":{:.6},\"p99_ms\":{:.6},\"max_ms\":{:.6}}}",
            json_escape(k),
            s.count,
            s.mean_ms(),
            s.percentile_ms(50.0),
            s.percentile_ms(99.0),
            s.max as f64 / 1e6,
        );
    }
    out.push_str("}}");
    out
}

fn render_health(reports: &[HealthReport]) -> (bool, String) {
    let all_healthy = reports.iter().all(|r| r.healthy);
    let mut body = format!(
        "{{\"status\":\"{}\",\"components\":[",
        if all_healthy { "ok" } else { "degraded" }
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"component\":\"{}\",\"healthy\":{},\"detail\":\"{}\"}}",
            json_escape(&r.component),
            r.healthy,
            json_escape(&r.detail),
        );
    }
    body.push_str("]}");
    (all_healthy, body)
}

/// A running ops server; stops and joins its handler thread on drop.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OpsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`, or port `0` for an ephemeral
    /// port) and start serving `state`.
    pub fn start(addr: &str, state: OpsState) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("helios-ops".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Ops traffic is trusted and tiny; one request
                            // per connection, handled inline.
                            let _ = handle_connection(stream, &state);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
            .expect("spawn ops server");
        Ok(OpsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &OpsState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (we ignore any body: every
    // endpoint is parameterless).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let (status, content_type, body) = route(method, path, query, state);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Map a numeric status to an HTTP/1.1 status line.
fn status_line(code: u16) -> String {
    let reason = match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    };
    format!("{code} {reason}")
}

fn route(method: &str, path: &str, query: &str, state: &OpsState) -> (String, String, String) {
    let (status, content_type, body) = route_builtin(method, path, query, state);
    if status == "404 Not Found" {
        if let Some(routes) = &state.dyn_routes {
            if let Some((code, ct, body)) = routes.dispatch(path, method, query) {
                return (status_line(code), ct, body);
            }
        }
    }
    (status.into(), content_type.into(), body)
}

fn route_builtin(
    method: &str,
    path: &str,
    query: &str,
    state: &OpsState,
) -> (&'static str, &'static str, String) {
    if method != "GET" && method != "POST" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render_prometheus(&(state.snapshot)()),
        ),
        "/healthz" => {
            let (healthy, body) = render_health(&state.health());
            (
                if healthy {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                },
                "application/json",
                body,
            )
        }
        "/vars" => (
            "200 OK",
            "application/json",
            render_vars(&(state.snapshot)()),
        ),
        "/trace/start" => {
            trace::set_tracing(true);
            ("200 OK", "text/plain; charset=utf-8", "tracing on\n".into())
        }
        "/trace/stop" => {
            trace::set_tracing(false);
            let spans = trace::drain_spans();
            ("200 OK", "application/x-ndjson", trace::to_jsonl(&spans))
        }
        "/traces" => match &state.retained {
            Some(retained) => {
                // Fold in anything still sitting in the thread journals so
                // the listing reflects the latest completed requests.
                retained.sweep();
                match query.split('&').find_map(|p| p.strip_prefix("id=")) {
                    None => ("200 OK", "application/json", retained.list_json()),
                    Some(raw) => match raw.parse::<u64>() {
                        Err(_) => (
                            "400 Bad Request",
                            "text/plain; charset=utf-8",
                            "id must be a decimal trace id\n".into(),
                        ),
                        Ok(id) => match retained.get(id) {
                            None => (
                                "404 Not Found",
                                "text/plain; charset=utf-8",
                                "no such retained trace\n".into(),
                            ),
                            Some(spans) => {
                                if query.split('&').any(|p| p == "format=chrome") {
                                    (
                                        "200 OK",
                                        "application/json",
                                        trace::to_chrome_trace(&spans),
                                    )
                                } else {
                                    ("200 OK", "application/x-ndjson", trace::to_jsonl(&spans))
                                }
                            }
                        },
                    },
                }
            }
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no retained trace store attached\n".into(),
            ),
        },
        "/recorder" => match &state.recorder {
            Some(r) => ("200 OK", "application/x-ndjson", r.to_jsonl()),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no flight recorder attached\n".into(),
            ),
        },
        "/profile" => match &state.profiler {
            Some(profiler) => {
                if let Some(fmt) = query.split('&').find_map(|p| p.strip_prefix("format=")) {
                    if fmt != "collapsed" {
                        return (
                            "400 Bad Request",
                            "text/plain; charset=utf-8",
                            "unsupported format; only format=collapsed\n".into(),
                        );
                    }
                }
                let seconds = match query.split('&').find_map(|p| p.strip_prefix("seconds=")) {
                    None => 1.0,
                    Some(raw) => match raw.parse::<f64>() {
                        Ok(s) if s.is_finite() && s > 0.0 => s.min(MAX_PROFILE_SECS),
                        _ => {
                            return (
                                "400 Bad Request",
                                "text/plain; charset=utf-8",
                                "seconds must be a positive number\n".into(),
                            )
                        }
                    },
                };
                let folded = profiler.collect_collapsed(Duration::from_secs_f64(seconds));
                ("200 OK", "text/plain; charset=utf-8", folded)
            }
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no profiler attached\n".into(),
            ),
        },
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "unknown path; try /metrics /healthz /vars /trace/start /trace/stop /traces /recorder /profile\n"
                .into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::EventKind;
    use crate::registry::Registry;

    /// Minimal test-side HTTP client: one request, returns (status line,
    /// body).
    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    fn test_state() -> (Arc<Registry>, Arc<AtomicBool>, OpsState) {
        let registry = Arc::new(Registry::new());
        let healthy = Arc::new(AtomicBool::new(true));
        let r2 = Arc::clone(&registry);
        let h2 = Arc::clone(&healthy);
        let state = OpsState::new(move || r2.snapshot()).probe(move || {
            HealthReport::new("mq", h2.load(Ordering::Relaxed), "lag 0 (bound 100)")
        });
        (registry, healthy, state)
    }

    #[test]
    fn metrics_vars_and_404() {
        let (registry, _healthy, state) = test_state();
        registry
            .counter("serving.served", &[("worker", "0")])
            .add(5);
        registry.histogram("e2e.freshness", &[]).record(1_000_000);
        let server = OpsServer::start("127.0.0.1:0", state).unwrap();
        let (status, body) = http_get(server.addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(
            body.contains("serving_served_total{worker=\"0\"} 5"),
            "{body}"
        );
        assert!(body.contains("e2e_freshness_bucket"), "{body}");
        let (status, body) = http_get(server.addr(), "/vars");
        assert!(status.contains("200"));
        assert!(body.contains("\"serving.served{worker=0}\":5"), "{body}");
        assert!(body.contains("\"e2e.freshness\""));
        let (status, _) = http_get(server.addr(), "/nope");
        assert!(status.contains("404"));
    }

    #[test]
    fn healthz_flips_with_probe_state() {
        let (_registry, healthy, state) = test_state();
        let server = OpsServer::start("127.0.0.1:0", state).unwrap();
        let (status, body) = http_get(server.addr(), "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\":\"ok\""));
        healthy.store(false, Ordering::Relaxed);
        let (status, body) = http_get(server.addr(), "/healthz");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"status\":\"degraded\""));
        assert!(body.contains("\"component\":\"mq\""));
    }

    #[test]
    fn trace_toggle_roundtrip() {
        let (_registry, _healthy, state) = test_state();
        let server = OpsServer::start("127.0.0.1:0", state).unwrap();
        let (status, _) = http_get(server.addr(), "/trace/start");
        assert!(status.contains("200"));
        assert!(trace::tracing_enabled());
        {
            let _s = trace::span("ops.test", crate::TraceCtx::root());
        }
        let (status, body) = http_get(server.addr(), "/trace/stop");
        assert!(status.contains("200"));
        assert!(!trace::tracing_enabled());
        assert!(body.contains("ops.test"), "{body}");
    }

    #[test]
    fn dynamic_routes_register_and_replace() {
        let (_registry, _healthy, state) = test_state();
        let routes = DynRoutes::new();
        let server = OpsServer::start("127.0.0.1:0", state.routes(Arc::clone(&routes))).unwrap();
        // Not registered yet.
        let (status, _) = http_get(server.addr(), "/scale");
        assert!(status.contains("404"), "{status}");
        // Registered after start; sees the query string.
        routes.register("/scale", |method, query| {
            (
                200,
                "text/plain; charset=utf-8".into(),
                format!("method={method} query={query}\n"),
            )
        });
        let (status, body) = http_get(server.addr(), "/scale?target=4");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "method=GET query=target=4\n");
        // Re-registering replaces, and non-200 codes map to status lines.
        routes.register("/scale", |_, _| (409, "text/plain".into(), "busy\n".into()));
        let (status, body) = http_get(server.addr(), "/scale");
        assert!(status.contains("409"), "{status}");
        assert_eq!(body, "busy\n");
        // Built-in paths are not shadowed by dyn routes.
        routes.register("/vars", |_, _| {
            (200, "text/plain".into(), "shadow\n".into())
        });
        let (_, body) = http_get(server.addr(), "/vars");
        assert!(body.contains("\"counters\""), "{body}");
        assert_eq!(routes.paths().len(), 2);
    }

    #[test]
    fn traces_endpoint_lists_and_fetches_retained_traces() {
        // Holds the trace gate: the endpoint sweeps the process-global
        // span journals, which would race the trace module's own tests.
        let _g = crate::trace::test_gate();
        let (_registry, _healthy, state) = test_state();
        let retained = Arc::new(RetainedTraces::new(8, 1_000_000));
        retained.ingest(vec![
            crate::SpanRecord {
                trace: 42,
                span: 420,
                parent: 0,
                name: "serve",
                start_ns: 1_000,
                end_ns: 3_001_000,
                thread: "sew-0-r0".into(),
            },
            crate::SpanRecord {
                trace: 42,
                span: 421,
                parent: 420,
                name: "serve.hop_expand",
                start_ns: 2_000,
                end_ns: 900_000,
                thread: "sew-0-r0".into(),
            },
        ]);
        let server =
            OpsServer::start("127.0.0.1:0", state.retained_traces(Arc::clone(&retained))).unwrap();
        let (status, body) = http_get(server.addr(), "/traces");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"trace\":42"), "{body}");
        assert!(body.contains("\"reasons\":[\"slow\"]"), "{body}");
        let (status, body) = http_get(server.addr(), "/traces?id=42");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"name\":\"serve.hop_expand\""), "{body}");
        assert_eq!(body.lines().count(), 2, "one JSONL line per span");
        let (status, body) = http_get(server.addr(), "/traces?id=42&format=chrome");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with('[') && body.trim_end().ends_with(']'));
        assert!(body.contains("\"ph\":\"X\""), "{body}");
        let (status, _) = http_get(server.addr(), "/traces?id=999");
        assert!(status.contains("404"), "{status}");
        let (status, _) = http_get(server.addr(), "/traces?id=bogus");
        assert!(status.contains("400"), "{status}");
    }

    #[test]
    fn profile_endpoint_returns_folded_stacks() {
        use helios_types::profile::{push_frame, register_thread, FrameLabel};
        static OPS_BUSY: FrameLabel = FrameLabel::new("ops-busy-frame");
        let (_registry, _healthy, state) = test_state();
        let profiler = Arc::new(Profiler::new(&Registry::new()));
        let server = OpsServer::start("127.0.0.1:0", state.profiler(profiler)).unwrap();
        // No profiler attached path is covered by 404 below via a fresh
        // state; here exercise the happy path with one busy thread.
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let h = std::thread::spawn(move || {
            let _token = register_thread("ops-profile-busy");
            let _f = push_frame(&OPS_BUSY);
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (status, body) = http_get(server.addr(), "/profile?seconds=0.15");
        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(
            body.lines()
                .any(|l| l.starts_with("ops-profile-busy;ops-busy-frame ")),
            "{body}"
        );
        let (status, _) = http_get(server.addr(), "/profile?seconds=-3");
        assert!(status.contains("400"), "{status}");
        let (status, _) = http_get(server.addr(), "/profile?seconds=0.1&format=chrome");
        assert!(status.contains("400"), "{status}");
        // Unattached profiler 404s.
        let (_registry, _healthy, bare) = test_state();
        let bare_server = OpsServer::start("127.0.0.1:0", bare).unwrap();
        let (status, _) = http_get(bare_server.addr(), "/profile");
        assert!(status.contains("404"), "{status}");
    }

    #[test]
    fn recorder_endpoint_dumps_ring() {
        let (_registry, _healthy, state) = test_state();
        let rec = FlightRecorder::new(16);
        rec.record(EventKind::LagSample, 0, 7, 7, 0);
        let server = OpsServer::start("127.0.0.1:0", state.recorder(Arc::clone(&rec))).unwrap();
        let (status, body) = http_get(server.addr(), "/recorder");
        assert!(status.contains("200"));
        assert!(body.contains("\"kind\":\"lag_sample\""));
    }
}
