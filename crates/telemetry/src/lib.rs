//! # helios-telemetry
//!
//! The unified observability layer for the Helios reproduction:
//!
//! - a **metrics [`registry`]** of named, labelled instruments
//!   ([`Counter`], [`Gauge`], log-bucketed [`Histogram`]) with lock-free
//!   hot-path recording and cross-worker snapshot/merge;
//! - flag-gated **span [`trace`]-ing** so one inference request or one
//!   graph update can be followed across threads and queues, dumpable as
//!   JSONL or chrome://tracing JSON;
//! - a periodic [`StatsReporter`] thread that refreshes pipeline gauges
//!   (mq consumer lag, actor mailbox depth, kvstore sizes) and prints
//!   snapshot tables;
//! - an **ops plane**: Prometheus text [`exposition`], an embedded
//!   dependency-free HTTP [`ops`] server (`/metrics`, `/healthz`,
//!   `/vars`, `/trace/start|stop`, `/recorder`), a sliding-window
//!   freshness [`slo`] tracker, and an always-on flight [`recorder`]
//!   ring that dumps JSONL on anomalies.
//!
//! [`helios_metrics`] is re-exported as [`metrics`]: it remains the
//! instrument layer (histogram buckets, throughput meters, table
//! rendering) while this crate adds naming, aggregation, tracing, and
//! reporting on top.
//!
//! ## Environment variables
//!
//! | Variable          | Effect                                                        |
//! |-------------------|---------------------------------------------------------------|
//! | `HELIOS_STATS`    | `1`/`true`/`yes`: print a stats snapshot on exit              |
//! | `HELIOS_TRACE`    | `1`/`true`/`yes`: enable span tracing from startup            |
//! | `HELIOS_TRACE_SAMPLE` | head-sampling rate in `[0, 1]` (e.g. `0.01` = 1% of requests traced); setting it also enables tracing from startup |
//! | `HELIOS_OPS_ADDR` | bind address for the embedded ops HTTP server (e.g. `127.0.0.1:9100`; port `0` for ephemeral) |
//! | `HELIOS_CACHE_DIR`| base directory for hybrid (memory + disk) serving caches; unset keeps caches purely in memory |
//! | `HELIOS_MEM_BUDGET` | per-deployment memory budget in bytes (suffixes `k`/`m`/`g` accepted, e.g. `512m`); drives `mem.budget_fraction_permille` and the `/healthz` memory-pressure probe |

pub mod exposition;
pub mod mem;
pub mod ops;
pub mod profiler;
pub mod recorder;
pub mod registry;
pub mod reporter;
pub mod retention;
pub mod slo;
pub mod trace;

/// The instrument layer this crate builds on.
pub use helios_metrics as metrics;

pub use exposition::render_prometheus;
pub use helios_metrics::{Histogram, Snapshot, StopwatchGuard, Table, ThroughputMeter};
pub use mem::{MemAccountant, MemTick, MEM_BUDGET_FRACTION, MEM_BYTES};
pub use ops::{DynRoutes, HealthReport, OpsServer, OpsState};
pub use profiler::Profiler;
pub use recorder::{EventKind, FlightEvent, FlightRecorder};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use reporter::StatsReporter;
pub use retention::{RetainedTraces, TraceSummary};
pub use slo::{SloConfig, SloTracker};
pub use trace::{
    clear_spans, current_span_cursor, drain_spans, read_spans_since, set_trace_sample_rate,
    set_tracing, span, to_chrome_trace, to_jsonl, trace_sample_rate, tracing_enabled, SpanGuard,
    SpanRecord, TraceCtx,
};

use std::sync::{Arc, OnceLock};

/// The process-global registry, for components that are not owned by a
/// deployment (or tools that want one shared sink). Deployments create
/// their own [`Registry`] so parallel tests do not cross-contaminate.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Whether the boolean environment variable `name` is set to an enabling
/// value: `1`, `true`, or `yes`, case-insensitive. Unset or anything else
/// is `false`.
pub fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "yes"),
        Err(_) => false,
    }
}

/// Whether the `HELIOS_STATS` environment variable asks for a stats
/// snapshot on exit (`1`/`true`/`yes`, case-insensitive).
pub fn stats_env() -> bool {
    env_flag("HELIOS_STATS")
}

/// Whether the `HELIOS_TRACE` environment variable asks for tracing to be
/// enabled from startup (`1`/`true`/`yes`, case-insensitive).
pub fn trace_env() -> bool {
    env_flag("HELIOS_TRACE")
}

/// The `HELIOS_TRACE_SAMPLE` environment variable: head-sampling rate in
/// `[0, 1]` (out-of-range values are clamped at use). `Some(rate)` also
/// implies enabling tracing from startup — setting a sample rate without
/// tracing would be meaningless. Unset, empty, or unparsable is `None`.
pub fn trace_sample_env() -> Option<f64> {
    match std::env::var("HELIOS_TRACE_SAMPLE") {
        Ok(v) => v.trim().parse::<f64>().ok().filter(|r| r.is_finite()),
        Err(_) => None,
    }
}

/// The `HELIOS_OPS_ADDR` environment variable: bind address for the
/// embedded ops HTTP server (e.g. `127.0.0.1:9100`; use port `0` for an
/// ephemeral port). Unset or empty means no ops server.
pub fn ops_addr_env() -> Option<String> {
    match std::env::var("HELIOS_OPS_ADDR") {
        Ok(v) if !v.trim().is_empty() => Some(v.trim().to_string()),
        _ => None,
    }
}

/// The `HELIOS_CACHE_DIR` environment variable: base directory for the
/// serving workers' hybrid (memory + disk) sample caches. Unset or empty
/// means purely in-memory caches. Each call returns a fresh unique
/// subdirectory (pid + a process-local counter), so concurrently running
/// deployments — parallel tests, repeated bench phases — never discover
/// each other's SST files.
pub fn cache_dir_env() -> Option<std::path::PathBuf> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    match std::env::var("HELIOS_CACHE_DIR") {
        Ok(v) if !v.trim().is_empty() => {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            Some(
                std::path::PathBuf::from(v.trim())
                    .join(format!("helios-{}-{seq}", std::process::id())),
            )
        }
        _ => None,
    }
}

/// The `HELIOS_MEM_BUDGET` environment variable: per-deployment memory
/// budget in bytes. Accepts a plain integer or a `k`/`m`/`g` suffix
/// (powers of 1024, case-insensitive): `536870912`, `512m`, `1g`.
/// Unset, empty, zero, or unparsable is `None` (no budget).
pub fn mem_budget_env() -> Option<u64> {
    match std::env::var("HELIOS_MEM_BUDGET") {
        Ok(v) => parse_bytes(&v),
        Err(_) => None,
    }
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix (×1024 each,
/// case-insensitive). `None` for empty, zero, or unparsable input.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    if s.is_empty() {
        return None;
    }
    let (num, shift) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(num) => match s.as_bytes()[s.len() - 1] {
            b'k' => (num, 10),
            b'm' => (num, 20),
            _ => (num, 30),
        },
        None => (s.as_str(), 0),
    };
    let n: u64 = num.trim().parse().ok()?;
    n.checked_shl(shift).filter(|&b| b > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("512M"), Some(512 << 20));
        assert_eq!(parse_bytes(" 2g "), Some(2 << 30));
        assert_eq!(parse_bytes("0"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("nope"), None);
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("test.global_hits", &[]).add(2);
        global().counter("test.global_hits", &[]).incr();
        assert_eq!(global().snapshot().counter("test.global_hits"), 3);
    }

    #[test]
    fn env_flags_parse() {
        // Only exercises the parsing helpers against whatever the ambient
        // environment is; set/remove-var is process-global and racy with
        // parallel tests, so just call them.
        let _ = stats_env();
        let _ = trace_env();
        let _ = ops_addr_env();
        assert!(!env_flag("HELIOS_TEST_FLAG_THAT_IS_NEVER_SET"));
    }

    #[test]
    fn cache_dir_env_yields_unique_paths() {
        // Without the variable set, there is nothing to derive.
        if std::env::var("HELIOS_CACHE_DIR").is_err() {
            assert!(cache_dir_env().is_none());
            return;
        }
        let a = cache_dir_env().unwrap();
        let b = cache_dir_env().unwrap();
        assert_ne!(a, b, "two deployments must not share a cache dir");
    }
}
