//! # helios-telemetry
//!
//! The unified observability layer for the Helios reproduction:
//!
//! - a **metrics [`registry`]** of named, labelled instruments
//!   ([`Counter`], [`Gauge`], log-bucketed [`Histogram`]) with lock-free
//!   hot-path recording and cross-worker snapshot/merge;
//! - flag-gated **span [`trace`]-ing** so one inference request or one
//!   graph update can be followed across threads and queues, dumpable as
//!   JSONL or chrome://tracing JSON;
//! - a periodic [`StatsReporter`] thread that refreshes pipeline gauges
//!   (mq consumer lag, actor mailbox depth, kvstore sizes) and prints
//!   snapshot tables.
//!
//! [`helios_metrics`] is re-exported as [`metrics`]: it remains the
//! instrument layer (histogram buckets, throughput meters, table
//! rendering) while this crate adds naming, aggregation, tracing, and
//! reporting on top.

pub mod registry;
pub mod reporter;
pub mod trace;

/// The instrument layer this crate builds on.
pub use helios_metrics as metrics;

pub use helios_metrics::{Histogram, Snapshot, StopwatchGuard, Table, ThroughputMeter};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use reporter::StatsReporter;
pub use trace::{
    clear_spans, drain_spans, set_tracing, span, to_chrome_trace, to_jsonl, tracing_enabled,
    SpanGuard, SpanRecord, TraceCtx,
};

use std::sync::{Arc, OnceLock};

/// The process-global registry, for components that are not owned by a
/// deployment (or tools that want one shared sink). Deployments create
/// their own [`Registry`] so parallel tests do not cross-contaminate.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// Whether the `HELIOS_STATS` environment variable asks for a stats
/// snapshot on exit (`1`/`true`/`yes`, case-insensitive).
pub fn stats_env() -> bool {
    match std::env::var("HELIOS_STATS") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            v == "1" || v == "true" || v == "yes"
        }
        Err(_) => false,
    }
}

/// Whether the `HELIOS_TRACE` environment variable asks for tracing to be
/// enabled from startup (`1`/`true`/`yes`, case-insensitive).
pub fn trace_env() -> bool {
    match std::env::var("HELIOS_TRACE") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            v == "1" || v == "true" || v == "yes"
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("test.global_hits", &[]).add(2);
        global().counter("test.global_hits", &[]).incr();
        assert_eq!(global().snapshot().counter("test.global_hits"), 3);
    }

    #[test]
    fn env_flags_parse() {
        // Only exercises the parsing helpers against whatever the ambient
        // environment is; set/remove-var is process-global and racy with
        // parallel tests, so just call them.
        let _ = stats_env();
        let _ = trace_env();
    }
}
