//! Prometheus text exposition (format 0.0.4) over a registry snapshot.
//!
//! [`render_prometheus`] turns a [`RegistrySnapshot`] into the plain-text
//! format every Prometheus-compatible scraper understands:
//!
//! * dot-separated instrument names become underscore-separated metric
//!   names (`mq.lag` → `mq_lag`); counters additionally get the
//!   conventional `_total` suffix;
//! * the registry's `{k=v,...}` label blocks become quoted, escaped
//!   Prometheus label sets;
//! * log-bucketed histograms are emitted as cumulative `_bucket` series
//!   (`le` in **seconds**, converted from the recorded nanoseconds, with
//!   empty buckets elided) plus `_sum` and `_count`.
//!
//! The renderer is a pure function of the snapshot, so `/metrics` on the
//! ops server (see [`crate::ops`]) is just snapshot + render.

use crate::registry::{instrument_name, RegistrySnapshot};
use helios_metrics::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize an instrument name into the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots (and anything else illegal) become
/// underscores, and a leading digit gets an underscore prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if c.is_ascii_digit() {
            // Leading digit: keep it, but prefix so the name stays legal.
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, quote and
/// newline must be escaped inside the double-quoted value.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Split a rendered registry key (`name{k=v,k2=v2}` or bare `name`) into
/// the instrument name and its label pairs, undoing the backslash
/// escaping [`crate::registry::render_key`] applies to `,`, `=` and `\`
/// inside label values.
pub fn parse_key(key: &str) -> (&str, Vec<(String, String)>) {
    let name = instrument_name(key);
    let mut labels = Vec::new();
    if let Some(block) = key
        .strip_prefix(name)
        .and_then(|r| r.strip_prefix('{'))
        .and_then(|r| r.strip_suffix('}'))
    {
        let (mut k, mut v) = (String::new(), String::new());
        let mut in_value = false;
        let mut chars = block.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    let cur = if in_value { &mut v } else { &mut k };
                    cur.push(chars.next().unwrap_or('\\'));
                }
                '=' if !in_value => in_value = true,
                ',' => {
                    if in_value {
                        labels.push((std::mem::take(&mut k), std::mem::take(&mut v)));
                    } else {
                        // Malformed pair without `=`: drop it, as the old
                        // split-based parser did.
                        k.clear();
                    }
                    in_value = false;
                }
                c => {
                    if in_value {
                        v.push(c)
                    } else {
                        k.push(c)
                    }
                }
            }
        }
        if in_value {
            labels.push((k, v));
        }
    }
    (name, labels)
}

/// Render a label set (optionally with an extra `le` pair) as
/// `{k="v",...}`; empty string when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", prometheus_name(k), escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn write_header(out: &mut String, done: &mut BTreeMap<String, ()>, name: &str, kind: &str) {
    if done.insert(name.to_string(), ()).is_none() {
        let _ = writeln!(out, "# HELP {name} helios instrument {name}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }
}

fn write_histogram(out: &mut String, name: &str, labels: &[(String, String)], snap: &Snapshot) {
    let exemplars = snap.exemplars();
    let mut cum = 0u64;
    for (bound_ns, cum_count) in snap.cumulative_buckets() {
        cum = cum_count;
        let le = format_seconds(bound_ns);
        // OpenMetrics exemplar: the trace id of a recent observation that
        // landed in this bucket, plus its value in seconds.
        let exemplar = exemplars
            .iter()
            .find(|(bound, _, _)| *bound == bound_ns)
            .map(|(_, trace, value)| {
                format!(" # {{trace_id=\"{trace}\"}} {}", format_seconds(*value))
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum_count}{exemplar}",
            render_labels(labels, Some(&le))
        );
    }
    debug_assert!(cum <= snap.count);
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        render_labels(labels, Some("+Inf")),
        snap.count
    );
    let _ = writeln!(
        out,
        "{name}_sum{} {}",
        render_labels(labels, None),
        snap.sum as f64 / 1e9
    );
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        render_labels(labels, None),
        snap.count
    );
}

/// Nanoseconds as a decimal seconds literal without float noise
/// (histogram `le` bounds are exact integers of nanoseconds).
fn format_seconds(ns: u64) -> String {
    let secs = ns / 1_000_000_000;
    let frac = ns % 1_000_000_000;
    if frac == 0 {
        format!("{secs}")
    } else {
        let mut s = format!("{secs}.{frac:09}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

/// Render the snapshot as Prometheus exposition text. Counters get a
/// `_total` suffix; histograms (recorded in nanoseconds) are exposed with
/// bucket bounds and sums in seconds, per Prometheus convention for
/// duration metrics.
pub fn render_prometheus(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut headers = BTreeMap::new();
    for (key, value) in &snap.counters {
        let (name, labels) = parse_key(key);
        let name = format!("{}_total", prometheus_name(name));
        write_header(&mut out, &mut headers, &name, "counter");
        let _ = writeln!(out, "{name}{} {value}", render_labels(&labels, None));
    }
    for (key, value) in &snap.gauges {
        let (name, labels) = parse_key(key);
        let name = prometheus_name(name);
        write_header(&mut out, &mut headers, &name, "gauge");
        let _ = writeln!(out, "{name}{} {value}", render_labels(&labels, None));
    }
    for (key, hist) in &snap.histograms {
        let (name, labels) = parse_key(key);
        let name = prometheus_name(name);
        write_header(&mut out, &mut headers, &name, "histogram");
        write_histogram(&mut out, &name, &labels, hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn name_is_legal(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Minimal exposition-format line parser used to round-trip-validate
    /// the renderer's output: returns (metric name, labels, value).
    fn parse_line(line: &str) -> (String, Vec<(String, String)>, f64) {
        // Exemplars (` # {trace_id="..."} value`) ride after the sample
        // value; strip them before parsing the series itself.
        let line = line.split(" # ").next().unwrap();
        let (head, value) = line.rsplit_once(' ').expect("value separator");
        let value: f64 = value.parse().unwrap_or(f64::INFINITY);
        match head.split_once('{') {
            None => (head.to_string(), Vec::new(), value),
            Some((name, rest)) => {
                let block = rest.strip_suffix('}').expect("closing brace");
                let mut labels = Vec::new();
                for pair in block.split(',') {
                    let (k, v) = pair.split_once('=').expect("label k=v");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .expect("quoted label value");
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels, value)
            }
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prometheus_name("mq.lag"), "mq_lag");
        assert_eq!(prometheus_name("e2e.freshness"), "e2e_freshness");
        assert_eq!(prometheus_name("7seas"), "_7seas");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert!(name_is_legal(&prometheus_name("9.lives{x}")));
    }

    #[test]
    fn parse_key_splits_labels() {
        assert_eq!(parse_key("mq.lag"), ("mq.lag", vec![]));
        let (n, l) = parse_key("mq.lag{group=saw-0,topic=updates}");
        assert_eq!(n, "mq.lag");
        assert_eq!(
            l,
            vec![
                ("group".to_string(), "saw-0".to_string()),
                ("topic".to_string(), "updates".to_string())
            ]
        );
    }

    #[test]
    fn hostile_label_values_round_trip() {
        // A value exercising every escape class: backslash, the key
        // syntax's own delimiters, a quote, a newline and a brace.
        let hostile = "a\\b,c=d\"e\nf}";
        let key = crate::registry::render_key("odd.metric", &[("q", hostile), ("plain", "ok")]);
        let (name, labels) = parse_key(&key);
        assert_eq!(name, "odd.metric");
        assert_eq!(
            labels,
            vec![
                ("plain".to_string(), "ok".to_string()),
                ("q".to_string(), hostile.to_string())
            ]
        );
        // Plain values stay byte-identical through render_key.
        assert_eq!(
            crate::registry::render_key("mq.lag", &[("group", "saw-0")]),
            "mq.lag{group=saw-0}"
        );
        // The exposition output escapes backslash/quote/newline per
        // OpenMetrics, with the registry-level escapes undone first.
        let r = Registry::new();
        r.counter("odd.metric", &[("q", hostile)]).incr();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("q=\"a\\\\b,c=d\\\"e\\nf}\""), "got: {text}");
    }

    #[test]
    fn histogram_buckets_carry_exemplars() {
        let r = Registry::new();
        let h = r.histogram("serving.latency", &[("worker", "0")]);
        h.record_with_exemplar(1_000_000, 0xBEEF);
        h.record(2_000_000_000);
        let text = render_prometheus(&r.snapshot());
        let trace = 0xBEEFu64;
        let line = text
            .lines()
            .find(|l| l.contains("trace_id"))
            .expect("an exemplar line");
        assert!(
            line.contains(&format!(" # {{trace_id=\"{trace}\"}} 0.001")),
            "exemplar format: {line}"
        );
        assert!(
            line.starts_with("serving_latency_bucket{"),
            "exemplar rides a bucket line: {line}"
        );
        // The un-exemplared observation produces plain bucket lines.
        assert!(text
            .lines()
            .any(|l| l.starts_with("serving_latency_bucket{") && !l.contains('#')));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("odd.labels", &[("q", "a\"b\\c")]).incr();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("q=\"a\\\"b\\\\c\""), "escaped output: {text}");
    }

    #[test]
    fn round_trip_is_valid_exposition_text() {
        let r = Registry::new();
        r.counter(
            "serving.decode_errors",
            &[("worker", "0"), ("replica", "1")],
        )
        .add(3);
        r.gauge("mq.lag", &[("group", "saw-0"), ("topic", "updates")])
            .set(-2);
        let h = r.histogram("e2e.freshness", &[]);
        for v in [1_000u64, 50_000, 1_000_000, 80_000_000] {
            h.record(v);
        }
        let text = render_prometheus(&r.snapshot());

        let mut seen_types: BTreeMap<String, String> = BTreeMap::new();
        let mut bucket_cum: BTreeMap<String, (f64, f64)> = BTreeMap::new(); // series → (last le, last cum)
        for line in text.lines() {
            assert!(!line.is_empty());
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').unwrap();
                seen_types.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with("# HELP ") {
                continue;
            }
            let (name, labels, value) = parse_line(line);
            assert!(name_is_legal(&name), "illegal metric name {name}");
            for (k, _) in &labels {
                assert!(name_is_legal(k), "illegal label name {k}");
            }
            if let Some(series) = name.strip_suffix("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| {
                        if v == "+Inf" {
                            f64::INFINITY
                        } else {
                            v.parse::<f64>().expect("numeric le")
                        }
                    })
                    .expect("bucket without le");
                let others: Vec<_> = labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                let id = format!("{series}{others:?}");
                let entry = bucket_cum.entry(id).or_insert((-1.0, -1.0));
                assert!(le > entry.0, "le bounds must increase: {line}");
                assert!(value >= entry.1, "cumulative counts must not drop: {line}");
                *entry = (le, value);
            }
        }
        assert_eq!(
            seen_types
                .get("serving_decode_errors_total")
                .map(String::as_str),
            Some("counter")
        );
        assert_eq!(seen_types.get("mq_lag").map(String::as_str), Some("gauge"));
        assert_eq!(
            seen_types.get("e2e_freshness").map(String::as_str),
            Some("histogram")
        );
        assert!(text.contains("e2e_freshness_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("e2e_freshness_count 4"));
        // Sum of the recorded nanoseconds, in seconds.
        assert!(text.contains("e2e_freshness_sum 0.081051"), "{text}");
        assert!(text.contains("mq_lag{group=\"saw-0\",topic=\"updates\"} -2"));
    }

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(format_seconds(0), "0");
        assert_eq!(format_seconds(1_000_000_000), "1");
        assert_eq!(format_seconds(1_500_000_000), "1.5");
        assert_eq!(format_seconds(1_024), "0.000001024");
    }
}
