//! Tail-based trace retention: keep the traces worth looking at.
//!
//! Head sampling ([`crate::trace::set_trace_sample_rate`]) bounds how
//! many traces are *recorded*; this store bounds how many are *kept*.
//! [`RetainedTraces::sweep`] reads the per-thread span journals (non-
//! destructively, from a per-store cursor) and groups spans by trace
//! id; a trace is **interesting** when its root
//! span exceeded the slow threshold, or when instrumentation flagged it
//! ([`RetainedTraces::flag`]) for an error, decode failure, timeout, or
//! other anomaly. When the store is full, boring traces are evicted
//! first (oldest boring, then oldest interesting), so a slow or errored
//! request stays inspectable via the `/traces` ops endpoint long after
//! thousands of healthy ones have churned through.

use crate::trace::{json_escape, read_spans_since, SpanRecord};
use parking_lot::Mutex;
use helios_types::{FxHashMap, MemGauge};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accounted footprint of one retained span: the record itself plus its
/// owned thread-name string.
fn span_footprint(s: &SpanRecord) -> usize {
    std::mem::size_of::<SpanRecord>() + s.thread.len()
}

/// A one-line summary of a retained trace, as shown by `GET /traces`.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Trace id.
    pub trace: u64,
    /// Name of the root span (empty when the root has not been drained
    /// yet — the trace is still in flight or its journal unswept).
    pub root_name: &'static str,
    /// Number of spans collected so far.
    pub spans: usize,
    /// Root span duration in nanoseconds (0 until the root is seen).
    pub duration_ns: u64,
    /// Root span start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Why this trace is retained: `slow`, plus any flagged reasons
    /// (`error`, `decode_error`, ...). Empty means boring — first to go.
    pub reasons: Vec<&'static str>,
}

struct Entry {
    spans: Vec<SpanRecord>,
    reasons: Vec<&'static str>,
    root_name: &'static str,
    root_start_ns: u64,
    root_dur_ns: u64,
    seq: u64,
    /// Accounted bytes of `spans`, released on eviction.
    bytes: usize,
}

impl Entry {
    fn interesting(&self) -> bool {
        !self.reasons.is_empty()
    }
}

struct Inner {
    traces: FxHashMap<u64, Entry>,
    // Flags that arrived before any span of their trace was swept.
    pending_flags: FxHashMap<u64, Vec<&'static str>>,
    seq: u64,
}

/// Bounded store of retained traces. Shared between the instrumentation
/// (flagging), the stats reporter (periodic sweeps) and the ops server
/// (listing/fetching).
pub struct RetainedTraces {
    capacity: usize,
    slow_threshold_ns: u64,
    // Journal read position: sweeps copy spans out of the shared
    // per-thread journals non-destructively, so several independent
    // stores (and the drain-based tests/tools) can coexist in one
    // process without stealing each other's spans.
    cursor: AtomicU64,
    inner: Mutex<Inner>,
    /// Bytes of retained spans, exported as
    /// `mem.bytes{component=trace_retention}` once adopted by the
    /// deployment's accountant.
    mem: MemGauge,
}

impl RetainedTraces {
    /// A store holding at most `capacity` traces, classifying a trace as
    /// slow when its root span takes longer than `slow_threshold_ns`.
    pub fn new(capacity: usize, slow_threshold_ns: u64) -> RetainedTraces {
        RetainedTraces {
            capacity: capacity.max(1),
            slow_threshold_ns,
            cursor: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                traces: FxHashMap::default(),
                pending_flags: FxHashMap::default(),
                seq: 0,
            }),
            mem: MemGauge::new(),
        }
    }

    /// The store's byte gauge, for adoption into a [`crate::MemAccountant`].
    pub fn mem_gauge(&self) -> MemGauge {
        self.mem.clone()
    }

    /// Current accounted bytes of retained spans.
    pub fn retained_bytes(&self) -> i64 {
        self.mem.get()
    }

    /// The configured slow threshold, nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Mark `trace` as interesting for `reason` (e.g. `error`,
    /// `decode_error`, `timeout`). Safe to call before the trace's spans
    /// have been swept; a no-op for the untraced id 0 or a duplicate
    /// reason.
    pub fn flag(&self, trace: u64, reason: &'static str) {
        if trace == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(e) = inner.traces.get_mut(&trace) {
            if !e.reasons.contains(&reason) {
                e.reasons.push(reason);
            }
        } else {
            let pending = inner.pending_flags.entry(trace).or_default();
            if !pending.contains(&reason) {
                pending.push(reason);
            }
            // Bound the pending map too: forget the excess arbitrarily
            // rather than grow without limit if spans never arrive.
            if inner.pending_flags.len() > self.capacity * 4 {
                let victim = inner.pending_flags.keys().next().copied();
                if let Some(v) = victim {
                    inner.pending_flags.remove(&v);
                }
            }
        }
    }

    /// Read every span recorded since the previous sweep out of the
    /// thread journals (non-destructively — other stores and the
    /// drain-based tooling keep their own view) and fold them in.
    /// Returns how many spans were ingested. Call periodically (the
    /// deployment's stats reporter does) and before serving `/traces`.
    pub fn sweep(&self) -> usize {
        // The cursor races benignly with concurrent sweeps of the same
        // store: both read overlapping windows, but ingest() appends
        // span records idempotently enough for a diagnostics store (a
        // duplicated span inflates the count, never loses a trace).
        // Sweeps are in practice single-threaded per store (reporter
        // tick or an ops request).
        let (spans, next) = read_spans_since(self.cursor.load(Ordering::Acquire));
        self.cursor.store(next, Ordering::Release);
        self.ingest(spans)
    }

    /// Fold externally drained spans in (exposed for tests and tools that
    /// manage their own journal draining).
    pub fn ingest(&self, spans: Vec<SpanRecord>) -> usize {
        let mut inner = self.inner.lock();
        let mut n = 0usize;
        for s in spans {
            if s.trace == 0 {
                continue;
            }
            n += 1;
            inner.seq += 1;
            let seq = inner.seq;
            let pending = inner.pending_flags.remove(&s.trace);
            let slow_threshold = self.slow_threshold_ns;
            let e = inner.traces.entry(s.trace).or_insert_with(|| Entry {
                spans: Vec::new(),
                reasons: Vec::new(),
                root_name: "",
                root_start_ns: 0,
                root_dur_ns: 0,
                seq,
                bytes: 0,
            });
            if let Some(flags) = pending {
                for r in flags {
                    if !e.reasons.contains(&r) {
                        e.reasons.push(r);
                    }
                }
            }
            if s.parent == 0 {
                e.root_name = s.name;
                e.root_start_ns = s.start_ns;
                e.root_dur_ns = s.end_ns.saturating_sub(s.start_ns);
                if e.root_dur_ns > slow_threshold && !e.reasons.contains(&"slow") {
                    e.reasons.push("slow");
                }
            }
            let fp = span_footprint(&s);
            e.bytes += fp;
            self.mem.add(fp);
            e.spans.push(s);
        }
        // Evict down to capacity: boring traces first, oldest first.
        while inner.traces.len() > self.capacity {
            let victim = inner
                .traces
                .iter()
                .min_by_key(|(_, e)| (e.interesting(), e.seq))
                .map(|(t, _)| *t);
            match victim {
                Some(t) => {
                    if let Some(e) = inner.traces.remove(&t) {
                        self.mem.sub(e.bytes);
                    }
                }
                None => break,
            }
        }
        n
    }

    /// Summaries of every retained trace, most recent root first
    /// (rootless traces sort last by arrival order).
    pub fn list(&self) -> Vec<TraceSummary> {
        let inner = self.inner.lock();
        let mut out: Vec<(u64, TraceSummary)> = inner
            .traces
            .iter()
            .map(|(t, e)| {
                (
                    e.seq,
                    TraceSummary {
                        trace: *t,
                        root_name: e.root_name,
                        spans: e.spans.len(),
                        duration_ns: e.root_dur_ns,
                        start_ns: e.root_start_ns,
                        reasons: e.reasons.clone(),
                    },
                )
            })
            .collect();
        out.sort_by_key(|(seq, s)| (std::cmp::Reverse(s.start_ns), std::cmp::Reverse(*seq)));
        out.into_iter().map(|(_, s)| s).collect()
    }

    /// All spans of one retained trace, sorted by start time.
    pub fn get(&self, trace: u64) -> Option<Vec<SpanRecord>> {
        let inner = self.inner.lock();
        inner.traces.get(&trace).map(|e| {
            let mut spans = e.spans.clone();
            spans.sort_by_key(|s| (s.start_ns, s.span));
            spans
        })
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().traces.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of retained traces that are interesting (slow/flagged).
    pub fn interesting(&self) -> usize {
        self.inner
            .lock()
            .traces
            .values()
            .filter(|e| e.interesting())
            .count()
    }

    /// The `GET /traces` body: a JSON array of summaries.
    pub fn list_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.list().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let reasons = s
                .reasons
                .iter()
                .map(|r| format!("\"{}\"", json_escape(r)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                "{{\"trace\":{},\"root\":\"{}\",\"spans\":{},\"duration_ns\":{},\"start_ns\":{},\"reasons\":[{}]}}",
                s.trace,
                json_escape(s.root_name),
                s.spans,
                s.duration_ns,
                s.start_ns,
                reasons,
            );
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, parent: u64, name: &'static str, dur: u64) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            name,
            start_ns: trace * 1000,
            end_ns: trace * 1000 + dur,
            thread: "t".into(),
        }
    }

    #[test]
    fn slow_traces_are_classified() {
        let store = RetainedTraces::new(8, 1_000_000);
        store.ingest(vec![
            rec(1, 10, 0, "serve", 2_000_000),
            rec(1, 11, 10, "hop", 500),
            rec(2, 20, 0, "serve", 100),
        ]);
        let list = store.list();
        assert_eq!(list.len(), 2);
        let slow = list.iter().find(|s| s.trace == 1).unwrap();
        assert_eq!(slow.reasons, vec!["slow"]);
        assert_eq!(slow.spans, 2);
        assert_eq!(slow.duration_ns, 2_000_000);
        let fast = list.iter().find(|s| s.trace == 2).unwrap();
        assert!(fast.reasons.is_empty());
    }

    #[test]
    fn boring_traces_evicted_first() {
        let store = RetainedTraces::new(3, 1_000_000);
        // Trace 1 is slow (interesting); traces 2..=5 are boring.
        store.ingest(vec![rec(1, 10, 0, "serve", 5_000_000)]);
        for t in 2..=5u64 {
            store.ingest(vec![rec(t, t * 10, 0, "serve", 100)]);
        }
        assert_eq!(store.len(), 3);
        assert!(store.get(1).is_some(), "interesting trace survives");
        assert!(store.get(2).is_none(), "oldest boring trace evicted");
        assert!(store.get(3).is_none(), "next boring trace evicted");
        assert!(store.get(5).is_some());
    }

    #[test]
    fn flags_arrive_before_or_after_spans() {
        let store = RetainedTraces::new(8, u64::MAX);
        store.flag(7, "decode_error"); // before any span
        store.ingest(vec![rec(7, 70, 0, "update", 10)]);
        store.flag(7, "timeout"); // after
        store.flag(7, "timeout"); // duplicate is a no-op
        store.flag(0, "error"); // untraced is a no-op
        let s = store.list().into_iter().find(|s| s.trace == 7).unwrap();
        assert_eq!(s.reasons, vec!["decode_error", "timeout"]);
        assert_eq!(store.interesting(), 1);
    }

    #[test]
    fn get_returns_sorted_spans_and_json_renders() {
        let store = RetainedTraces::new(8, u64::MAX);
        store.ingest(vec![
            SpanRecord {
                trace: 3,
                span: 31,
                parent: 30,
                name: "child",
                start_ns: 200,
                end_ns: 300,
                thread: "t".into(),
            },
            SpanRecord {
                trace: 3,
                span: 30,
                parent: 0,
                name: "root",
                start_ns: 100,
                end_ns: 400,
                thread: "t".into(),
            },
        ]);
        let spans = store.get(3).unwrap();
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[1].name, "child");
        assert!(store.get(99).is_none());
        let json = store.list_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"trace\":3"));
        assert!(json.contains("\"root\":\"root\""));
        assert!(json.contains("\"spans\":2"));
    }

    #[test]
    fn retained_bytes_rise_on_ingest_and_fall_on_eviction() {
        let store = RetainedTraces::new(2, 1_000_000);
        assert_eq!(store.retained_bytes(), 0);
        store.ingest(vec![rec(1, 10, 0, "serve", 100)]);
        let one = store.retained_bytes();
        assert_eq!(one as usize, std::mem::size_of::<SpanRecord>() + 1);
        store.ingest(vec![rec(2, 20, 0, "serve", 100)]);
        assert_eq!(store.retained_bytes(), 2 * one);
        // Third boring trace evicts the oldest: bytes stay at 2 traces.
        store.ingest(vec![rec(3, 30, 0, "serve", 100)]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.retained_bytes(), 2 * one);
        // The gauge handle observes the same cell.
        assert_eq!(store.mem_gauge().get(), 2 * one);
    }

    #[test]
    fn sweep_pulls_from_thread_journals() {
        use crate::trace::{clear_spans, set_tracing, span, TraceCtx};
        // Serialise against the trace tests (shared process-global state).
        let _g = crate::trace::test_gate();
        set_tracing(true);
        clear_spans();
        let ctx = TraceCtx::root();
        let trace_id = ctx.trace;
        {
            let _s = span("sweep.root", ctx);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        set_tracing(false);
        let store = RetainedTraces::new(8, 0);
        let swept = store.sweep();
        assert!(swept >= 1);
        assert!(store.get(trace_id).is_some());
        let s = store
            .list()
            .into_iter()
            .find(|s| s.trace == trace_id)
            .unwrap();
        assert!(s.reasons.contains(&"slow"), "threshold 0 flags everything");
    }
}
