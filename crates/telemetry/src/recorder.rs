//! Flight recorder: a fixed-size ring of recent pipeline events that can
//! be dumped to JSONL when something goes wrong.
//!
//! Tracing answers "where did this request go" but has to be switched on
//! *before* the interesting moment; the flight recorder is always on and
//! answers "what was the pipeline doing just now". Events are small and
//! fully numeric ([`FlightEvent`]: a kind tag plus three `u64` operands),
//! so recording allocates nothing and the ring's memory is bounded at
//! construction.
//!
//! Recording is wait-free for the writer: a relaxed `fetch_add` picks a
//! slot and a `try_lock` stores the event; if a reader (or a colliding
//! writer lapping the ring) holds that slot, the event is counted in
//! `dropped` instead of blocking the pipeline thread.
//!
//! [`FlightRecorder::anomaly`] records the triggering event and — when a
//! dump directory is configured — writes the entire ring to
//! `flight-<n>.jsonl` so post-hoc debugging does not require rerunning
//! the workload with tracing enabled.

use parking_lot::{Mutex, RwLock};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// What happened. The meaning of the `a`/`b`/`c` operands per kind is
/// documented on each variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A poll batch of sample-queue records landed in a serving cache.
    /// `a` = records applied, `b` = decode errors in the batch.
    UpdateApplied,
    /// A reservoir change fanned out to subscribers.
    /// `a` = hop, `b` = key vertex, `c` = subscriber count.
    HopExpanded,
    /// Sample-queue records failed to decode. `a` = error count.
    DecodeError,
    /// A kvstore background flush wrote one immutable memtable to an SST.
    /// `a` = entries written, `b` = memtable bytes, `c` = immutable
    /// memtables still pending on that store.
    Flush,
    /// A kvstore background compaction merged a run suffix. `a` = input
    /// runs merged, `b` = entries in the output, `c` = output SST bytes
    /// (0 when everything was dropped).
    Compaction,
    /// Periodic consumer-lag observation. `a` = total lag over all
    /// (group, topic) pairs, `b` = max single-pair lag.
    LagSample,
    /// A freshness probe completed. `a` = probe sequence number,
    /// `b` = marker-visible latency in nanoseconds (0 on timeout),
    /// `c` = 1 if the probe timed out.
    FreshnessProbe,
    /// The freshness SLO burn rate crossed 1.0 (budget burning faster
    /// than it accrues). `a` = burn rate ×1000 over the short window.
    SloBurn,
    /// `HeliosDeployment::quiesce` hit its deadline. `a` = remaining
    /// drain deficit (produced − consumed over all stages).
    QuiesceFailed,
    /// A new routing-table epoch was committed. `a` = new epoch,
    /// `b` = logical serving workers under the new table, `c` = slots
    /// that changed owner relative to the previous table.
    EpochBump,
    /// A rescale handoff began. `a` = current epoch, `b` = current
    /// logical workers, `c` = target logical workers.
    HandoffStarted,
    /// A rescale handoff finished and the new table is live.
    /// `a` = committed epoch, `b` = logical workers now serving,
    /// `c` = handoff duration in milliseconds.
    HandoffCompleted,
    /// A rescale handoff was abandoned before commit (watermark timeout);
    /// routing is unchanged and the attempt's pending charges were rolled
    /// back. `a` = the abandoned attempt's epoch, `b` = target logical
    /// workers, `c` = elapsed milliseconds at abandonment.
    HandoffAborted,
    /// `start_from_checkpoint` found a different worker topology than the
    /// checkpoint was taken with. `a` = checkpointed logical serving
    /// workers, `b` = configured logical serving workers, `c` =
    /// checkpointed sampling workers.
    TopologyMismatch,
    /// The deployment's accounted memory crossed over
    /// `memory_budget_bytes` (rising edge, one event per crossing).
    /// `a` = total accounted bytes, `b` = budget bytes, `c` = budget
    /// fraction in permille.
    MemPressure,
}

impl EventKind {
    /// Stable lowercase tag used in dumps.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::UpdateApplied => "update_applied",
            EventKind::HopExpanded => "hop_expanded",
            EventKind::DecodeError => "decode_error",
            EventKind::Flush => "flush",
            EventKind::Compaction => "compaction",
            EventKind::LagSample => "lag_sample",
            EventKind::FreshnessProbe => "freshness_probe",
            EventKind::SloBurn => "slo_burn",
            EventKind::QuiesceFailed => "quiesce_failed",
            EventKind::EpochBump => "epoch_bump",
            EventKind::HandoffStarted => "handoff_started",
            EventKind::HandoffCompleted => "handoff_completed",
            EventKind::HandoffAborted => "handoff_aborted",
            EventKind::TopologyMismatch => "topology_mismatch",
            EventKind::MemPressure => "mem_pressure",
        }
    }
}

/// One recorded pipeline event. `Copy`, fixed-size, no heap.
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    /// Wall-clock nanoseconds since the UNIX epoch.
    pub ts_unix_nanos: u64,
    /// Event kind (fixes the meaning of `a`/`b`/`c`).
    pub kind: EventKind,
    /// Originating worker id (serving or sampling, per kind); `u32::MAX`
    /// when the event is deployment-wide.
    pub worker: u32,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Third operand.
    pub c: u64,
}

fn unix_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// The ring. Shared as `Arc<FlightRecorder>` between every pipeline
/// thread and the ops/reporter side.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
    dumps: AtomicU64,
    dump_dir: RwLock<Option<PathBuf>>,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (min 16).
    pub fn new(capacity: usize) -> Arc<FlightRecorder> {
        let capacity = capacity.max(16);
        Arc::new(FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            dump_dir: RwLock::new(None),
        })
    }

    /// Directory anomaly dumps are written to; `None` (the default)
    /// disables file dumps (the ring stays inspectable via
    /// [`FlightRecorder::to_jsonl`] and the ops server).
    pub fn set_dump_dir(&self, dir: Option<PathBuf>) {
        *self.dump_dir.write() = dir;
    }

    /// Record one event. Wait-free: never blocks the calling pipeline
    /// thread (a contended slot drops the event instead).
    pub fn record(&self, kind: EventKind, worker: u32, a: u64, b: u64, c: u64) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        match self.slots[idx].try_lock() {
            Some(mut slot) => {
                *slot = Some(FlightEvent {
                    ts_unix_nanos: unix_nanos(),
                    kind,
                    worker,
                    a,
                    b,
                    c,
                });
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events dropped due to slot contention (diagnostic; normally 0).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of anomaly dumps triggered so far (whether or not a dump
    /// directory was configured).
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Copy out the ring's current contents, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self.slots.iter().filter_map(|s| *s.lock()).collect();
        out.sort_by_key(|e| e.ts_unix_nanos);
        out
    }

    /// The ring as JSONL, one event per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let _ = writeln!(
                out,
                "{{\"ts_unix_nanos\":{},\"kind\":\"{}\",\"worker\":{},\"a\":{},\"b\":{},\"c\":{}}}",
                e.ts_unix_nanos,
                e.kind.tag(),
                e.worker,
                e.a,
                e.b,
                e.c,
            );
        }
        out
    }

    /// Record an anomaly event and dump the whole ring to
    /// `<dump_dir>/flight-<n>.jsonl`. Returns the written path, `None`
    /// when no dump directory is configured or the write failed (an
    /// observability failure must never take down the pipeline).
    pub fn anomaly(&self, kind: EventKind, worker: u32, a: u64, b: u64, c: u64) -> Option<PathBuf> {
        self.record(kind, worker, a, b, c);
        let n = self.dumps.fetch_add(1, Ordering::Relaxed);
        let dir = self.dump_dir.read().clone()?;
        let path = dir.join(format!("flight-{n}.jsonl"));
        self.dump_to(&path).ok()?;
        Some(path)
    }

    /// Write the ring to `path` as JSONL (creating parent directories).
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_jsonl())
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.cursor.load(Ordering::Relaxed))
            .field("dropped", &self.dropped())
            .field("dumps", &self.dumps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_events() {
        let r = FlightRecorder::new(16);
        for i in 0..40u64 {
            r.record(EventKind::LagSample, 0, i, 0, 0);
        }
        let events = r.events();
        assert_eq!(events.len(), 16);
        // Oldest entries were overwritten: every surviving `a` is >= 24.
        assert!(events.iter().all(|e| e.a >= 24), "{events:?}");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn concurrent_recording_fills_ring() {
        let r = FlightRecorder::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..1000 {
                        r.record(EventKind::UpdateApplied, t, i, 0, 0);
                    }
                });
            }
        });
        let events = r.events();
        // Wait-free contract: each of the 4000 attempts either landed in
        // a slot or was counted dropped. Contention may drop a few, but
        // with ~62 attempts per slot the ring still ends full.
        assert_eq!(events.len(), 64);
        assert!(r.dropped() < 4000, "at least one record must land");
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let r = FlightRecorder::new(16);
        r.record(EventKind::DecodeError, 3, 7, 0, 0);
        r.record(EventKind::Flush, 1, 2, 9, 0);
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"kind\":\"decode_error\""));
        assert!(jsonl.contains("\"worker\":3"));
        assert!(jsonl.contains("\"kind\":\"flush\""));
    }

    #[test]
    fn anomaly_dumps_when_dir_configured() {
        let dir = std::env::temp_dir().join(format!("helios-recorder-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = FlightRecorder::new(16);
        // No dir: anomaly still counted, no file.
        assert!(r
            .anomaly(EventKind::SloBurn, u32::MAX, 1500, 0, 0)
            .is_none());
        assert_eq!(r.dumps(), 1);
        r.set_dump_dir(Some(dir.clone()));
        r.record(EventKind::LagSample, 0, 42, 42, 0);
        let path = r
            .anomaly(EventKind::QuiesceFailed, u32::MAX, 9, 0, 0)
            .expect("dump path");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"kind\":\"quiesce_failed\""));
        assert!(body.contains("\"kind\":\"lag_sample\""));
        assert_eq!(r.dumps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
