//! Named, labelled instrument registry.
//!
//! The registry is the slow path: instruments are looked up (or created)
//! once, at wiring time, and the returned `Arc` handles are cached by the
//! instrumented component. The hot path is the handle itself — a relaxed
//! atomic add for counters/gauges, a couple of arithmetic ops plus one
//! atomic increment for histograms. Nothing on the recording path takes a
//! lock.
//!
//! ## Naming scheme
//!
//! Instrument names are dot-separated, with the leading segment naming the
//! subsystem: `mq.lag`, `sampler.updates_processed`, `serving.cache_hit`,
//! `kvstore.mem_bytes`, `actor.mailbox_depth`, `graphdb.cache_hit`.
//! Labels are `{key=value}` pairs appended to the name; the registry keys
//! instruments by the fully rendered form, e.g.
//! `mq.lag{group=sew-0-r0,topic=samples-0}`. Labels are sorted by key so
//! the same logical instrument always renders to the same string.

use helios_metrics::{Histogram, Snapshot, StripedHistogram, Table};
use helios_types::FxHashMap;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone event counter. Cheap to clone (via `Arc`), wait-free to bump.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed measurement (queue depth, bytes resident, lag).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the current value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Render `name` plus sorted labels into the registry key form
/// `name{k=v,k2=v2}` (bare `name` when there are no labels). Label
/// values containing the key syntax's own delimiters (`,`, `=`) or a
/// backslash are escaped with a backslash so
/// [`crate::exposition::parse_key`] can recover the exact value; plain
/// values render byte-identical to their input.
pub fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut labels: Vec<_> = labels.to_vec();
    labels.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                ',' => out.push_str("\\,"),
                '=' => out.push_str("\\="),
                c => out.push(c),
            }
        }
    }
    out.push('}');
    out
}

/// The instrument registry: one per deployment (plus a process-global one
/// for standalone components). Registration takes a write lock; repeated
/// lookups of an existing instrument take a read lock; *recording* through
/// a handle takes no lock at all.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<FxHashMap<String, Arc<Counter>>>,
    gauges: RwLock<FxHashMap<String, Arc<Gauge>>>,
    histograms: RwLock<FxHashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = render_key(name, labels);
        if let Some(c) = self.counters.read().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(key).or_default())
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = render_key(name, labels);
        if let Some(g) = self.gauges.read().get(&key) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(key).or_default())
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = render_key(name, labels);
        if let Some(h) = self.histograms.read().get(&key) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Get or create a lane-striped histogram: `lanes` stripes, each
    /// registered as `name{labels,lane=<i>}` so exposition and
    /// [`RegistrySnapshot::histogram_total`] still see every observation,
    /// while each recording lane touches only its own stripe's cache
    /// lines (the multicore serve path's stage histograms).
    pub fn histogram_striped(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        lanes: usize,
    ) -> StripedHistogram {
        let stripes = (0..lanes.max(1))
            .map(|i| {
                let lane = i.to_string();
                let mut all: Vec<(&str, &str)> = labels.to_vec();
                all.push(("lane", &lane));
                self.histogram(name, &all)
            })
            .collect();
        StripedHistogram::from_stripes(stripes)
    }

    /// Register an externally created histogram under `name{labels}`,
    /// so components that own their histogram (e.g. a serving worker's
    /// latency histogram) can surface it without double recording. If the
    /// key already exists the existing instrument wins and is returned.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        hist: Arc<Histogram>,
    ) -> Arc<Histogram> {
        let key = render_key(name, labels);
        Arc::clone(self.histograms.write().entry(key).or_insert(hist))
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Immutable, mergeable copy of a registry's instruments. `BTreeMap`s so
/// rendering is deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counter totals by rendered key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by rendered key.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by rendered key.
    pub histograms: BTreeMap<String, Snapshot>,
}

impl RegistrySnapshot {
    /// Merge another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise. Used to aggregate per-worker
    /// registries into a deployment-wide view.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, s) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(s),
                None => {
                    self.histograms.insert(k.clone(), s.clone());
                }
            }
        }
    }

    /// Counter total for an exact rendered key (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Gauge value for an exact rendered key (0 when absent).
    pub fn gauge(&self, key: &str) -> i64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters whose *name* (the part before `{`) equals
    /// `name` — i.e. the label-aggregated total.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| instrument_name(k) == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Sum of all gauges whose name equals `name`.
    pub fn gauge_total(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .filter(|(k, _)| instrument_name(k) == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Merged histogram across every key whose name equals `name`
    /// (`None` when no such histogram exists).
    pub fn histogram_total(&self, name: &str) -> Option<Snapshot> {
        let mut merged: Option<Snapshot> = None;
        for (k, s) in &self.histograms {
            if instrument_name(k) != name {
                continue;
            }
            match merged.as_mut() {
                Some(m) => m.merge(s),
                None => merged = Some(s.clone()),
            }
        }
        merged
    }

    /// Distinct subsystem prefixes (the segment before the first `.`),
    /// sorted. A deployment snapshot covering sampler + serving + mq +
    /// kvstore reports at least those four.
    pub fn subsystems(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| subsystem_of(k).to_string())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Render the snapshot as fixed-width tables (counters, gauges,
    /// histogram percentiles), suitable for printing on exit.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let mut t = Table::new("telemetry: counters", &["counter", "total"]);
            for (k, v) in &self.counters {
                t.row(&[k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.gauges.is_empty() {
            let mut t = Table::new("telemetry: gauges", &["gauge", "value"]);
            for (k, v) in &self.gauges {
                t.row(&[k.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.histograms.is_empty() {
            let mut t = Table::new(
                "telemetry: histograms (ms)",
                &["histogram", "count", "mean", "p50", "p99", "max"],
            );
            for (k, s) in &self.histograms {
                t.row(&[
                    k.clone(),
                    s.count.to_string(),
                    format!("{:.3}", s.mean_ms()),
                    format!("{:.3}", s.percentile_ms(50.0)),
                    format!("{:.3}", s.percentile_ms(99.0)),
                    format!("{:.3}", s.max as f64 / 1e6),
                ]);
            }
            out.push_str(&t.render());
        }
        if out.is_empty() {
            out.push_str("telemetry: (no instruments registered)\n");
        }
        out
    }
}

/// Instrument name of a rendered key: everything before the label block.
pub fn instrument_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Subsystem prefix of a rendered key: the segment before the first `.`.
pub fn subsystem_of(key: &str) -> &str {
    let name = instrument_name(key);
    name.split('.').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_rendering_sorts_labels() {
        assert_eq!(render_key("mq.lag", &[]), "mq.lag");
        assert_eq!(
            render_key("mq.lag", &[("topic", "updates"), ("group", "saw-0")]),
            "mq.lag{group=saw-0,topic=updates}"
        );
    }

    #[test]
    fn key_rendering_escapes_delimiters_in_values() {
        assert_eq!(
            render_key("x.y", &[("q", "a,b=c\\d")]),
            "x.y{q=a\\,b\\=c\\\\d}"
        );
        // Values without delimiters stay byte-identical.
        assert_eq!(
            render_key("x.y", &[("q", "plain-value_9\"z\n")]),
            "x.y{q=plain-value_9\"z\n}"
        );
    }

    #[test]
    fn counter_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x.hits", &[("w", "0")]);
        let b = r.counter("x.hits", &[("w", "0")]);
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("x.hits{w=0}"), 3);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("q.depth", &[]);
        g.set(10);
        g.add(-3);
        assert_eq!(r.snapshot().gauge("q.depth"), 7);
    }

    #[test]
    fn striped_histograms_register_one_stripe_per_lane() {
        let r = Registry::new();
        let h = r.histogram_striped("s.stage", &[("w", "0")], 3);
        assert_eq!(h.lanes(), 3);
        h.stripe(0).record(1_000);
        h.stripe(2).record(9_000);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["s.stage{lane=0,w=0}"].count, 1);
        assert_eq!(snap.histograms["s.stage{lane=2,w=0}"].count, 1);
        // Label-aggregated view folds all lanes.
        assert_eq!(snap.histogram_total("s.stage").unwrap().count, 2);
        // Re-requesting yields the same underlying stripes.
        let again = r.histogram_striped("s.stage", &[("w", "0")], 3);
        again.stripe(0).record(1);
        assert_eq!(h.stripe(0).snapshot().count, 2);
    }

    #[test]
    fn registered_histogram_is_surfaced_not_copied() {
        let r = Registry::new();
        let h = Arc::new(Histogram::new());
        let got = r.register_histogram("s.latency", &[("w", "1")], Arc::clone(&h));
        assert!(Arc::ptr_eq(&h, &got));
        h.record(1_000_000);
        assert_eq!(r.snapshot().histograms["s.latency{w=1}"].count, 1);
        // Second registration under the same key returns the original.
        let other = r.register_histogram("s.latency", &[("w", "1")], Arc::new(Histogram::new()));
        assert!(Arc::ptr_eq(&h, &other));
    }

    #[test]
    fn snapshot_merge_adds_and_merges() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("s.n", &[]).add(5);
        b.counter("s.n", &[]).add(7);
        b.counter("s.only_b", &[]).add(1);
        a.gauge("s.g", &[]).set(2);
        b.gauge("s.g", &[]).set(3);
        a.histogram("s.lat", &[]).record(1_000);
        b.histogram("s.lat", &[]).record(1_000_000);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("s.n"), 12);
        assert_eq!(snap.counter("s.only_b"), 1);
        assert_eq!(snap.gauge("s.g"), 5);
        let lat = &snap.histograms["s.lat"];
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max, 1_000_000);
        assert_eq!(lat.min, 1_000);
    }

    #[test]
    fn label_aggregated_totals() {
        let r = Registry::new();
        r.counter("serving.cache_hit", &[("w", "0")]).add(3);
        r.counter("serving.cache_hit", &[("w", "1")]).add(4);
        r.counter("serving.cache_miss", &[("w", "0")]).add(9);
        r.gauge("mq.lag", &[("t", "a")]).set(2);
        r.gauge("mq.lag", &[("t", "b")]).set(5);
        r.histogram("serving.latency", &[("w", "0")]).record(10);
        r.histogram("serving.latency", &[("w", "1")]).record(20);
        let s = r.snapshot();
        assert_eq!(s.counter_total("serving.cache_hit"), 7);
        assert_eq!(s.gauge_total("mq.lag"), 7);
        assert_eq!(s.histogram_total("serving.latency").unwrap().count, 2);
        assert!(s.histogram_total("nope").is_none());
    }

    #[test]
    fn subsystems_are_distinct_prefixes() {
        let r = Registry::new();
        r.counter("sampler.updates_processed", &[("w", "0")]).incr();
        r.counter("sampler.published", &[]).incr();
        r.gauge("mq.lag", &[]).set(0);
        r.gauge("kvstore.mem_bytes", &[]).set(1);
        r.histogram("serving.latency", &[]).record(5);
        assert_eq!(
            r.snapshot().subsystems(),
            vec!["kvstore", "mq", "sampler", "serving"]
        );
    }

    #[test]
    fn render_includes_all_sections() {
        let r = Registry::new();
        r.counter("a.c", &[]).incr();
        r.gauge("b.g", &[]).set(-4);
        r.histogram("c.h", &[]).record(2_000_000);
        let out = r.snapshot().render();
        assert!(out.contains("a.c"));
        assert!(out.contains("-4"));
        assert!(out.contains("c.h"));
        assert!(out.contains("p99"));
        assert_eq!(Registry::new().snapshot().render().lines().count(), 1);
    }
}
