//! In-process wall-clock sampling profiler.
//!
//! Collection drives the cooperative frame-stack registry in
//! `helios_types::profile`: every `interval` the collector snapshots
//! each registered thread's current logical stack (seqlock-protected —
//! a torn read counts as dropped, never as a corrupt stack) and folds
//! identical stacks into counts. The output is the collapsed/folded
//! format flamegraph tooling consumes directly:
//!
//! ```text
//! sew0r0-serve-0;serve;feature_gather 412
//! helios-kv-flush;flush_sst 9
//! sew0r0-updater-0;idle 2880
//! ```
//!
//! This is a *logical* profiler: frames are the phase annotations the
//! hot paths push (serve stages, flush/compact passes), not native call
//! frames — nothing in this workspace can unwind another thread's
//! native stack without a libc/backtrace dependency. See DESIGN.md's
//! "Resource observability" section for the trade-off discussion.

use crate::registry::{Counter, Registry};
use helios_types::profile::sample_stacks;
use helios_types::FxHashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest collection window `/profile` accepts.
pub const MAX_PROFILE_SECS: f64 = 30.0;
/// Default sampling interval (~200 Hz per thread).
pub const SAMPLE_INTERVAL: Duration = Duration::from_millis(5);

/// Collector handle: owns the `profiling.samples` / `profiling.dropped`
/// counters and renders folded-stack output on demand.
pub struct Profiler {
    samples: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl Profiler {
    /// A profiler whose counters live in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Profiler {
            samples: registry.counter("profiling.samples", &[]),
            dropped: registry.counter("profiling.dropped", &[]),
        }
    }

    /// Sample every registered thread for `duration` at [`SAMPLE_INTERVAL`]
    /// and return the folded stacks, one `stack count` line each,
    /// sorted by descending count then stack. Blocks the calling thread
    /// for the whole window (the ops server serves connections
    /// sequentially, so a long profile delays other endpoints — keep
    /// windows short).
    pub fn collect_collapsed(&self, duration: Duration) -> String {
        let mut folded: FxHashMap<String, u64> = FxHashMap::default();
        let deadline = Instant::now() + duration;
        loop {
            let (stacks, dropped) = sample_stacks();
            self.samples.add(stacks.len() as u64);
            if dropped > 0 {
                self.dropped.add(dropped);
            }
            for s in stacks {
                *folded.entry(s).or_insert(0) += 1;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(SAMPLE_INTERVAL.min(deadline.saturating_duration_since(Instant::now())));
        }
        let mut lines: Vec<(String, u64)> = folded.into_iter().collect();
        lines.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut out = String::new();
        for (stack, count) in lines {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Total samples taken over this profiler's lifetime.
    pub fn samples_taken(&self) -> u64 {
        self.samples.get()
    }

    /// Total torn reads dropped.
    pub fn samples_dropped(&self) -> u64 {
        self.dropped.get()
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("samples", &self.samples.get())
            .field("dropped", &self.dropped.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_types::profile::{push_frame, register_thread, FrameLabel};

    static WORKING: FrameLabel = FrameLabel::new("working-hard");

    #[test]
    fn collects_folded_stacks_and_counts() {
        let registry = Registry::new();
        let profiler = Profiler::new(&registry);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let h = std::thread::spawn(move || {
            let _token = register_thread("profiler-test-busy");
            let _f = push_frame(&WORKING);
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let out = profiler.collect_collapsed(Duration::from_millis(120));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        h.join().unwrap();
        assert!(
            out.lines()
                .any(|l| l.starts_with("profiler-test-busy;working-hard ")),
            "missing busy stack:\n{out}"
        );
        // Every line is `stack count`.
        for line in out.lines() {
            let (_, count) = line.rsplit_once(' ').expect("folded line shape");
            count.parse::<u64>().expect("count parses");
        }
        assert!(profiler.samples_taken() > 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("profiling.samples"), profiler.samples_taken());
    }
}
