//! Elastic membership for Helios serving workers (§4, Figs. 13–14).
//!
//! The paper's third contribution is that sampling and serving scale
//! *independently*. This crate holds the pieces that make the serving
//! side elastic on a **running** deployment:
//!
//! * [`RouteTable`] — an epoch-versioned slot→worker assignment. Seeds
//!   hash to a fixed number of slots, slots map to logical serving
//!   workers, and a rescale moves only the minimal set of slots, so most
//!   cached state stays where it is (consistent-hashing-style minimal
//!   disruption without the ring bookkeeping).
//! * [`Router`] — an atomically swappable handle to the current table,
//!   consulted by every ingest/serve/freshness path instead of the old
//!   inline `route(seed, N)` hash.
//! * [`MembershipMsg`] — the wire protocol (Prepare/Commit) that the
//!   deployment broadcasts to sampling workers over the `membership` mq
//!   topic during the two-phase handoff.
//! * [`ScaleController`] — hysteresis-damped scale-out/scale-in decisions
//!   from the telemetry signals the ops plane already produces (consumer
//!   lag, freshness SLO burn rate, serve p99).
//!
//! The handoff protocol itself (charging new owners via the §5.3
//! idempotent subscription-snapshot path, catch-up watermark, commit,
//! refcounted discharge of old owners) lives in `helios-core::rescale`;
//! this crate is deliberately mechanism-only so it stays unit-testable
//! without a deployment.

mod controller;
mod table;

pub use controller::{ScaleController, ScaleDecision, ScalePolicy, ScaleSignals};
pub use table::{MembershipMsg, RouteTable, Router};
