//! Epoch-versioned routing: slot-based assignment of seeds to logical
//! serving workers, and the wire messages that publish it.

use bytes::{Buf, BytesMut};
use helios_types::{hash::route, Decode, Encode, HeliosError, Result, ServingWorkerId, VertexId};
use parking_lot::RwLock;
use std::sync::Arc;

/// An epoch-versioned routing table: `slots` hash buckets, each assigned
/// to one logical serving worker. Seeds route `seed → slot → worker`, so
/// a rescale only has to reassign slots — every seed in an unmoved slot
/// keeps its owner, its subscriptions and its warmed cache entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    /// Monotonic version; bumped by every rescale.
    epoch: u64,
    /// Number of logical serving workers (`assignment` values are `< workers`).
    workers: u32,
    /// Slot → logical serving worker.
    assignment: Vec<u32>,
}

impl RouteTable {
    /// The epoch-0 table for a fresh deployment: `slots` buckets dealt
    /// round-robin over `workers` workers. Deterministic, so every
    /// sampling worker and the deployment front-end independently build
    /// the identical initial table.
    pub fn initial(workers: usize, slots: usize) -> RouteTable {
        assert!(
            workers > 0 && slots >= workers,
            "need slots >= workers >= 1"
        );
        RouteTable {
            epoch: 0,
            workers: workers as u32,
            assignment: (0..slots).map(|s| (s % workers) as u32).collect(),
        }
    }

    /// Table version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of logical serving workers.
    pub fn workers(&self) -> usize {
        self.workers as usize
    }

    /// Number of hash slots.
    pub fn slots(&self) -> usize {
        self.assignment.len()
    }

    /// The slot `v` hashes to.
    pub fn slot_of(&self, v: VertexId) -> usize {
        route(v.raw(), self.assignment.len())
    }

    /// The logical serving worker owning `v`.
    pub fn owner_of(&self, v: VertexId) -> ServingWorkerId {
        ServingWorkerId(self.assignment[self.slot_of(v)])
    }

    /// The slot → worker assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// A new table for `new_workers` workers at `epoch + 1`, moving the
    /// minimal number of slots: surviving workers keep their slots up to
    /// the balanced target; only the excess (and every slot of a removed
    /// worker) is reassigned.
    pub fn rebalanced(&self, new_workers: usize) -> RouteTable {
        self.rebalanced_at(new_workers, self.epoch + 1)
    }

    /// [`RouteTable::rebalanced`] with an explicit (strictly newer) epoch.
    /// Rescale attempts use this to give every attempt a unique epoch, so
    /// a retry after an abandoned handoff can never satisfy a prepare or
    /// commit watermark with the abandoned attempt's scans.
    pub fn rebalanced_at(&self, new_workers: usize, epoch: u64) -> RouteTable {
        assert!(epoch > self.epoch, "rebalance must advance the epoch");
        let slots = self.assignment.len();
        assert!(
            new_workers > 0 && slots >= new_workers,
            "need slots >= workers >= 1"
        );
        let n = new_workers;
        let base = slots / n;
        let extra = slots % n;
        let target = |w: usize| base + usize::from(w < extra);

        let mut assignment = self.assignment.clone();
        let mut counts = vec![0usize; n];
        let mut pool: Vec<usize> = Vec::new();
        // Slots of removed workers must move; surviving owners keep theirs
        // for now.
        for (slot, &w) in assignment.iter().enumerate() {
            if (w as usize) < n {
                counts[w as usize] += 1;
            } else {
                pool.push(slot);
            }
        }
        // Over-target survivors surrender their highest slots.
        for (w, count) in counts.iter_mut().enumerate() {
            for slot in (0..slots).rev() {
                if *count <= target(w) {
                    break;
                }
                if assignment[slot] as usize == w {
                    pool.push(slot);
                    *count -= 1;
                }
            }
        }
        // Deal the pool to under-target workers. Σ target == slots, so the
        // pool drains exactly.
        pool.sort_unstable();
        let mut pool = pool.into_iter();
        for (w, count) in counts.iter_mut().enumerate() {
            while *count < target(w) {
                let slot = pool.next().expect("pool size matches deficit");
                assignment[slot] = w as u32;
                *count += 1;
            }
        }
        debug_assert!(pool.next().is_none());
        RouteTable {
            epoch,
            workers: n as u32,
            assignment,
        }
    }

    /// Number of slots assigned differently than in `other`.
    pub fn moved_slots(&self, other: &RouteTable) -> usize {
        self.assignment
            .iter()
            .zip(other.assignment.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl Encode for RouteTable {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.workers.encode(buf);
        self.assignment.encode(buf);
    }
}

impl Decode for RouteTable {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let epoch = u64::decode(buf)?;
        let workers = u32::decode(buf)?;
        let assignment = Vec::<u32>::decode(buf)?;
        if workers == 0 || assignment.len() < workers as usize {
            return Err(HeliosError::Codec(format!(
                "route table with {workers} workers over {} slots",
                assignment.len()
            )));
        }
        if assignment.iter().any(|&w| w >= workers) {
            return Err(HeliosError::Codec("slot assigned past worker count".into()));
        }
        Ok(RouteTable {
            epoch,
            workers,
            assignment,
        })
    }
}

/// A shared, atomically swappable handle to the current [`RouteTable`].
/// The deployment front-end and every sampling worker hold one; a rescale
/// installs the committed table with a pointer swap, so readers never
/// block on a rescale in progress.
pub struct Router {
    table: RwLock<Arc<RouteTable>>,
}

impl Router {
    /// A router starting at `table`.
    pub fn new(table: RouteTable) -> Router {
        Router {
            table: RwLock::new(Arc::new(table)),
        }
    }

    /// The current table.
    pub fn table(&self) -> Arc<RouteTable> {
        Arc::clone(&self.table.read())
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.table.read().epoch
    }

    /// The logical serving worker owning `v` under the current table.
    pub fn owner_of(&self, v: VertexId) -> ServingWorkerId {
        self.table.read().owner_of(v)
    }

    /// Install `table` if it is newer than the current one. Returns
    /// whether the swap happened (stale/duplicate installs are no-ops, so
    /// replayed Commit messages are harmless).
    pub fn install(&self, table: Arc<RouteTable>) -> bool {
        let mut cur = self.table.write();
        if table.epoch <= cur.epoch {
            return false;
        }
        *cur = table;
        true
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.table.read();
        f.debug_struct("Router")
            .field("epoch", &t.epoch)
            .field("workers", &t.workers)
            .field("slots", &t.assignment.len())
            .finish()
    }
}

const MBR_PREPARE: u8 = 0;
const MBR_COMMIT: u8 = 1;
const MBR_ABORT: u8 = 2;

/// Membership protocol messages, broadcast by the deployment to every
/// partition of the `membership` topic (one partition per sampling
/// worker) during a rescale.
///
/// * `Prepare` — samplers charge the *new* owners of moved seeds through
///   the §5.3 subscription path (snapshot push + transitive subscribes)
///   while live traffic keeps routing by the old table.
/// * `Commit` — after the catch-up watermark, samplers swap their router
///   to the new table and discharge the old owners of moved seeds.
/// * `Abort` — a Prepare that will never commit (the handoff timed out):
///   samplers discharge the pending owners it charged, so an abandoned
///   attempt leaks no subscriptions. Per-partition FIFO ordering makes
///   this safe to send at any point after the matching Prepare: it runs
///   after that Prepare's scan and before any retry's, and after a
///   Commit of the same table it matches nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipMsg {
    /// Phase 1: start charging new owners per `table` (no unsubscribes).
    Prepare {
        /// The pending table (epoch > current).
        table: RouteTable,
    },
    /// Phase 2: route by `table`, discharge old owners of moved seeds.
    Commit {
        /// The now-authoritative table.
        table: RouteTable,
    },
    /// Roll back an abandoned Prepare: discharge `table`'s pending owners.
    Abort {
        /// The abandoned attempt's table.
        table: RouteTable,
    },
}

impl MembershipMsg {
    /// The table carried by any phase.
    pub fn table(&self) -> &RouteTable {
        match self {
            MembershipMsg::Prepare { table }
            | MembershipMsg::Commit { table }
            | MembershipMsg::Abort { table } => table,
        }
    }
}

impl Encode for MembershipMsg {
    fn encode(&self, buf: &mut BytesMut) {
        let (tag, table) = match self {
            MembershipMsg::Prepare { table } => (MBR_PREPARE, table),
            MembershipMsg::Commit { table } => (MBR_COMMIT, table),
            MembershipMsg::Abort { table } => (MBR_ABORT, table),
        };
        buf.extend_from_slice(&[tag]);
        table.encode(buf);
    }
}

impl Decode for MembershipMsg {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match u8::decode(buf)? {
            MBR_PREPARE => Ok(MembershipMsg::Prepare {
                table: RouteTable::decode(buf)?,
            }),
            MBR_COMMIT => Ok(MembershipMsg::Commit {
                table: RouteTable::decode(buf)?,
            }),
            MBR_ABORT => Ok(MembershipMsg::Abort {
                table: RouteTable::decode(buf)?,
            }),
            t => Err(HeliosError::Codec(format!("invalid MembershipMsg tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn initial_covers_all_workers_evenly() {
        let t = RouteTable::initial(3, 64);
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.workers(), 3);
        assert_eq!(t.slots(), 64);
        let mut counts = [0usize; 3];
        for &w in t.assignment() {
            counts[w as usize] += 1;
        }
        assert!(counts.iter().all(|&c| (21..=22).contains(&c)), "{counts:?}");
    }

    #[test]
    fn owner_is_stable_per_vertex() {
        let t = RouteTable::initial(4, 64);
        for v in 0..1000u64 {
            assert_eq!(t.owner_of(VertexId(v)), t.owner_of(VertexId(v)));
            assert!(t.owner_of(VertexId(v)).0 < 4);
        }
    }

    #[test]
    fn rebalance_out_moves_minimum() {
        let t2 = RouteTable::initial(2, 64);
        let t4 = t2.rebalanced(4);
        assert_eq!(t4.epoch(), 1);
        assert_eq!(t4.workers(), 4);
        // Exactly the slots the two new workers need move: 16 each.
        assert_eq!(t4.moved_slots(&t2), 32);
        // Surviving workers only *lost* slots; no slot moved between them.
        for (slot, (&old, &new)) in t2
            .assignment()
            .iter()
            .zip(t4.assignment().iter())
            .enumerate()
        {
            if old != new {
                assert!(new >= 2, "slot {slot} moved between survivors");
            }
        }
    }

    #[test]
    fn rebalance_in_moves_only_departing_slots() {
        let t4 = RouteTable::initial(2, 64).rebalanced(4);
        let t3 = t4.rebalanced(3);
        assert_eq!(t3.epoch(), 2);
        assert_eq!(t3.workers(), 3);
        // Worker 3 owned 16 slots; survivors are near target (21/22 vs
        // 16), so only worker 3's slots plus minor leveling move.
        let departed: usize = t4.assignment().iter().filter(|&&w| w == 3).count();
        assert_eq!(departed, 16);
        assert!(t3.moved_slots(&t4) >= departed);
        assert!(t3.assignment().iter().all(|&w| w < 3));
        // Balanced after: 64/3 → 22/21/21.
        let mut counts = [0usize; 3];
        for &w in t3.assignment() {
            counts[w as usize] += 1;
        }
        assert!(counts.iter().all(|&c| (21..=22).contains(&c)), "{counts:?}");
    }

    #[test]
    fn rebalanced_at_skips_epochs() {
        let t = RouteTable::initial(2, 16);
        // An abandoned attempt burned epoch 1; the retry takes epoch 2.
        let retry = t.rebalanced_at(3, 2);
        assert_eq!(retry.epoch(), 2);
        assert_eq!(retry.workers(), 3);
        assert_eq!(
            retry.assignment(),
            t.rebalanced(3).assignment(),
            "explicit epoch does not change the assignment math"
        );
    }

    #[test]
    #[should_panic(expected = "advance the epoch")]
    fn rebalanced_at_rejects_stale_epoch() {
        let t = RouteTable::initial(2, 16).rebalanced(3);
        let _ = t.rebalanced_at(2, 1);
    }

    #[test]
    fn roundtrip_wire_messages() {
        let table = RouteTable::initial(2, 16).rebalanced(3);
        for msg in [
            MembershipMsg::Prepare {
                table: table.clone(),
            },
            MembershipMsg::Commit {
                table: table.clone(),
            },
            MembershipMsg::Abort {
                table: table.clone(),
            },
        ] {
            let back = MembershipMsg::decode_from_slice(&msg.encode_to_bytes()).unwrap();
            assert_eq!(back, msg);
            assert_eq!(back.table(), &table);
        }
        assert!(MembershipMsg::decode_from_slice(&[9]).is_err());
    }

    #[test]
    fn decode_rejects_inconsistent_tables() {
        // workers = 0
        let mut buf = BytesMut::new();
        7u64.encode(&mut buf);
        0u32.encode(&mut buf);
        vec![0u32; 4].encode(&mut buf);
        assert!(RouteTable::decode_from_slice(&buf).is_err());
        // slot assigned past worker count
        let mut buf = BytesMut::new();
        7u64.encode(&mut buf);
        2u32.encode(&mut buf);
        vec![0u32, 1, 2, 0].encode(&mut buf);
        assert!(RouteTable::decode_from_slice(&buf).is_err());
    }

    #[test]
    fn router_installs_only_newer_epochs() {
        let router = Router::new(RouteTable::initial(2, 16));
        let v1 = Arc::new(RouteTable::initial(2, 16).rebalanced(3));
        assert!(router.install(Arc::clone(&v1)));
        assert_eq!(router.epoch(), 1);
        assert_eq!(router.table().workers(), 3);
        // Replayed or stale installs are no-ops.
        assert!(!router.install(Arc::clone(&v1)));
        assert!(!router.install(Arc::new(RouteTable::initial(2, 16))));
        assert_eq!(router.epoch(), 1);
        for v in 0..100u64 {
            assert_eq!(router.owner_of(VertexId(v)), v1.owner_of(VertexId(v)));
        }
    }

    proptest! {
        #[test]
        fn prop_rebalance_is_minimal_and_balanced(
            start in 1usize..6, steps in proptest::collection::vec(1usize..6, 1..5)
        ) {
            let slots = 60; // divisible by 1..6 → exact targets
            let mut t = RouteTable::initial(start, slots);
            for n in steps {
                let next = t.rebalanced(n);
                prop_assert_eq!(next.epoch(), t.epoch() + 1);
                prop_assert_eq!(next.workers(), n);
                prop_assert!(next.assignment().iter().all(|&w| (w as usize) < n));
                // Balanced within 1.
                let mut counts = vec![0usize; n];
                for &w in next.assignment() { counts[w as usize] += 1; }
                let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
                prop_assert!(max - min <= 1, "unbalanced: {:?}", counts);
                // Minimal: a slot only moves if its old owner departed or
                // was above the new target.
                let base = slots / n;
                for (slot, (&old, &new)) in t.assignment().iter().zip(next.assignment()).enumerate() {
                    if old != new {
                        let old_load = t.assignment().iter().filter(|&&w| w == old).count();
                        prop_assert!(
                            old as usize >= n || old_load > base,
                            "slot {} moved from under-target worker {}", slot, old
                        );
                    }
                }
                t = next;
            }
        }
    }
}
