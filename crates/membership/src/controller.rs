//! SLO-driven autoscaling decisions with hysteresis.
//!
//! The ops plane (PR 3) already produces the signals an autoscaler needs
//! — per-(group, topic) consumer lag, the freshness SLO burn rate, and
//! serve-latency histograms. [`ScaleController`] turns periodic
//! observations of those signals into scale-out/scale-in decisions. It is
//! pure decision logic (no threads, no clock): the deployment's
//! autoscaler thread feeds it one [`ScaleSignals`] per tick and executes
//! whatever it returns, so the hysteresis behavior is unit-testable
//! tick by tick.

/// One tick's worth of telemetry observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSignals {
    /// Current logical serving workers.
    pub workers: usize,
    /// Worst per-(group, topic) consumer lag over the sample queues.
    pub max_sample_lag: u64,
    /// Freshness SLO short-window burn rate (1.0 = burning budget exactly
    /// as fast as it accrues); 0 when probing is off.
    pub slo_short_burn: f64,
    /// Serve p99 latency in milliseconds, worst replica.
    pub serve_p99_ms: f64,
}

/// Thresholds and damping for the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePolicy {
    /// Never scale below this many logical workers.
    pub min_workers: usize,
    /// Never scale above this many logical workers.
    pub max_workers: usize,
    /// Sample-queue lag above which a tick counts as pressure.
    pub out_lag: u64,
    /// Sample-queue lag below which a tick counts as calm.
    pub in_lag: u64,
    /// SLO short burn above which a tick counts as pressure (calm
    /// requires < half of this).
    pub out_burn: f64,
    /// Serve p99 above which a tick counts as pressure.
    pub out_p99_ms: f64,
    /// Serve p99 below which a tick counts as calm.
    pub in_p99_ms: f64,
    /// Consecutive pressure ticks required before scaling out.
    pub sustain_out: u32,
    /// Consecutive calm ticks required before scaling in (longer than
    /// `sustain_out`: adding capacity is cheap, thrashing handoffs is not).
    pub sustain_in: u32,
    /// Ticks to ignore all signals after a decision (lets the handoff
    /// finish and its transient lag drain before re-evaluating).
    pub cooldown: u32,
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy {
            min_workers: 1,
            max_workers: 8,
            out_lag: 10_000,
            in_lag: 100,
            out_burn: 1.0,
            out_p99_ms: 50.0,
            in_p99_ms: 5.0,
            sustain_out: 3,
            sustain_in: 10,
            cooldown: 10,
        }
    }
}

/// What the controller wants done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Scale out to this many logical workers.
    Out(usize),
    /// Scale in to this many logical workers.
    In(usize),
}

impl ScaleDecision {
    /// The target worker count either way.
    pub fn target(&self) -> usize {
        match *self {
            ScaleDecision::Out(n) | ScaleDecision::In(n) => n,
        }
    }
}

/// Hysteresis state machine over [`ScaleSignals`] ticks.
#[derive(Debug)]
pub struct ScaleController {
    policy: ScalePolicy,
    hot_ticks: u32,
    calm_ticks: u32,
    cooldown: u32,
}

impl ScaleController {
    /// A controller applying `policy`.
    pub fn new(policy: ScalePolicy) -> ScaleController {
        ScaleController {
            policy,
            hot_ticks: 0,
            calm_ticks: 0,
            cooldown: 0,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &ScalePolicy {
        &self.policy
    }

    /// Feed one tick of signals; returns a decision when pressure or calm
    /// has been sustained long enough and no cooldown is pending. The
    /// caller is expected to execute the decision (or at least attempt
    /// it) — `observe` starts the cooldown either way.
    pub fn observe(&mut self, s: &ScaleSignals) -> Option<ScaleDecision> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.hot_ticks = 0;
            self.calm_ticks = 0;
            return None;
        }
        let p = &self.policy;
        let pressure = s.max_sample_lag > p.out_lag
            || s.slo_short_burn > p.out_burn
            || s.serve_p99_ms > p.out_p99_ms;
        let calm = s.max_sample_lag < p.in_lag
            && s.slo_short_burn < p.out_burn / 2.0
            && s.serve_p99_ms < p.in_p99_ms;
        self.hot_ticks = if pressure { self.hot_ticks + 1 } else { 0 };
        self.calm_ticks = if calm { self.calm_ticks + 1 } else { 0 };

        if pressure && self.hot_ticks >= p.sustain_out && s.workers < p.max_workers {
            self.hot_ticks = 0;
            self.cooldown = p.cooldown;
            return Some(ScaleDecision::Out(s.workers + 1));
        }
        if calm && self.calm_ticks >= p.sustain_in && s.workers > p.min_workers {
            self.calm_ticks = 0;
            self.cooldown = p.cooldown;
            return Some(ScaleDecision::In(s.workers - 1));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(workers: usize) -> ScaleSignals {
        ScaleSignals {
            workers,
            max_sample_lag: 50_000,
            slo_short_burn: 0.0,
            serve_p99_ms: 1.0,
        }
    }

    fn calm(workers: usize) -> ScaleSignals {
        ScaleSignals {
            workers,
            max_sample_lag: 0,
            slo_short_burn: 0.0,
            serve_p99_ms: 1.0,
        }
    }

    fn policy() -> ScalePolicy {
        ScalePolicy {
            sustain_out: 3,
            sustain_in: 5,
            cooldown: 4,
            ..Default::default()
        }
    }

    #[test]
    fn scale_out_requires_sustained_pressure() {
        let mut c = ScaleController::new(policy());
        assert_eq!(c.observe(&hot(2)), None);
        assert_eq!(c.observe(&hot(2)), None);
        // A single calm tick resets the streak.
        assert_eq!(c.observe(&calm(2)), None);
        assert_eq!(c.observe(&hot(2)), None);
        assert_eq!(c.observe(&hot(2)), None);
        assert_eq!(c.observe(&hot(2)), Some(ScaleDecision::Out(3)));
    }

    #[test]
    fn cooldown_suppresses_decisions() {
        let mut c = ScaleController::new(policy());
        for _ in 0..2 {
            assert_eq!(c.observe(&hot(2)), None);
        }
        assert_eq!(c.observe(&hot(2)), Some(ScaleDecision::Out(3)));
        // 4 cooldown ticks eat even sustained pressure…
        for _ in 0..4 {
            assert_eq!(c.observe(&hot(3)), None);
        }
        // …then a fresh sustain window is required.
        for _ in 0..2 {
            assert_eq!(c.observe(&hot(3)), None);
        }
        assert_eq!(c.observe(&hot(3)), Some(ScaleDecision::Out(4)));
    }

    #[test]
    fn scale_in_needs_longer_calm_and_respects_min() {
        let mut c = ScaleController::new(policy());
        for _ in 0..4 {
            assert_eq!(c.observe(&calm(2)), None);
        }
        assert_eq!(c.observe(&calm(2)), Some(ScaleDecision::In(1)));
        // Cooldown, then calm at min_workers never goes below.
        for _ in 0..4 {
            assert_eq!(c.observe(&calm(1)), None);
        }
        for _ in 0..20 {
            assert_eq!(c.observe(&calm(1)), None);
        }
    }

    #[test]
    fn max_workers_caps_scale_out() {
        let p = ScalePolicy {
            max_workers: 3,
            ..policy()
        };
        let mut c = ScaleController::new(p);
        for _ in 0..20 {
            assert_eq!(c.observe(&hot(3)), None);
        }
    }

    #[test]
    fn burn_and_p99_also_count_as_pressure() {
        let mut c = ScaleController::new(policy());
        let burn = ScaleSignals {
            workers: 2,
            max_sample_lag: 0,
            slo_short_burn: 2.0,
            serve_p99_ms: 0.5,
        };
        let slow = ScaleSignals {
            workers: 2,
            max_sample_lag: 0,
            slo_short_burn: 0.0,
            serve_p99_ms: 80.0,
        };
        assert_eq!(c.observe(&burn), None);
        assert_eq!(c.observe(&slow), None);
        assert_eq!(c.observe(&burn), Some(ScaleDecision::Out(3)));
        // Moderate signals (neither pressure nor calm) never decide.
        let mut c = ScaleController::new(policy());
        let moderate = ScaleSignals {
            workers: 2,
            max_sample_lag: 5_000,
            slo_short_burn: 0.4,
            serve_p99_ms: 20.0,
        };
        for _ in 0..40 {
            assert_eq!(c.observe(&moderate), None);
        }
    }
}
