//! Two-layer mean-aggregator GraphSAGE with manual backprop.
//!
//! The forward pass follows Eq. 1 of the paper:
//!
//! ```text
//! a_v    = mean(h_u, u ∈ N(v))                      (AGGREGATE)
//! h_v'   = ReLU(W_self·h_v + W_neigh·a_v + b)        (UPDATE)
//! ```
//!
//! applied over a 2-hop [`SampledSubgraph`]: layer 1 embeds the seed and
//! its hop-1 samples from raw features (hop-1 nodes aggregate their hop-2
//! children), layer 2 embeds the seed from the layer-1 embeddings.
//! Vertices whose features are missing (eventual-consistency staleness)
//! contribute zero vectors, exactly like a feature-store miss would in
//! production.

use crate::tensor::{axpy, mean_vectors, relu, relu_backward, Matrix};
use bytes::{Buf, BytesMut};
use helios_query::SampledSubgraph;
use helios_types::{Decode, Encode, HeliosError, VertexId};
use rand::Rng;

/// One SAGE layer's parameters.
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Self weight (out × in).
    pub w_self: Matrix,
    /// Neighbor weight (out × in).
    pub w_neigh: Matrix,
    /// Bias (out).
    pub bias: Vec<f32>,
}

impl SageLayer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        SageLayer {
            w_self: Matrix::xavier(out_dim, in_dim, rng),
            w_neigh: Matrix::xavier(out_dim, in_dim, rng),
            bias: vec![0.0; out_dim],
        }
    }

    /// Returns (pre-activation, activation).
    fn forward(&self, h_self: &[f32], h_neigh: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut pre = self.w_self.matvec(h_self);
        let n = self.w_neigh.matvec(h_neigh);
        for ((p, nv), b) in pre.iter_mut().zip(&n).zip(&self.bias) {
            *p += nv + b;
        }
        let out = relu(&pre);
        (pre, out)
    }
}

/// Gradients matching a [`SageLayer`].
#[derive(Debug, Clone)]
pub struct SageLayerGrads {
    w_self: Matrix,
    w_neigh: Matrix,
    bias: Vec<f32>,
}

impl SageLayerGrads {
    fn zeros(layer: &SageLayer) -> Self {
        SageLayerGrads {
            w_self: Matrix::zeros(layer.w_self.rows(), layer.w_self.cols()),
            w_neigh: Matrix::zeros(layer.w_neigh.rows(), layer.w_neigh.cols()),
            bias: vec![0.0; layer.bias.len()],
        }
    }
}

/// Accumulated gradients for the whole model.
#[derive(Debug, Clone)]
pub struct SageGrads {
    layer1: SageLayerGrads,
    layer2: SageLayerGrads,
}

/// Intermediate activations of one forward pass, kept for backprop.
#[derive(Debug, Clone)]
pub struct SageCache {
    feat_seed: Vec<f32>,
    /// Hop-1 nodes in frontier order with their raw features and the mean
    /// feature of their hop-2 children.
    hop1: Vec<Hop1Cache>,
    mean_feat_hop1: Vec<f32>,
    pre1_seed: Vec<f32>,
    h1_seed: Vec<f32>,
    mean_h1: Vec<f32>,
    pre2: Vec<f32>,
    /// The final embedding.
    pub embedding: Vec<f32>,
}

#[derive(Debug, Clone)]
struct Hop1Cache {
    feat: Vec<f32>,
    mean_child_feat: Vec<f32>,
    pre1: Vec<f32>,
    h1: Vec<f32>,
}

/// The two-layer GraphSAGE model.
#[derive(Debug, Clone)]
pub struct SageModel {
    in_dim: usize,
    hidden_dim: usize,
    out_dim: usize,
    layer1: SageLayer,
    layer2: SageLayer,
}

impl SageModel {
    /// New model with Xavier-initialised weights.
    pub fn new(in_dim: usize, hidden_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        SageModel {
            in_dim,
            hidden_dim,
            out_dim,
            layer1: SageLayer::new(in_dim, hidden_dim, rng),
            layer2: SageLayer::new(hidden_dim, out_dim, rng),
        }
    }

    /// Input feature dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output embedding dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn feature_of(&self, sg: &SampledSubgraph, v: VertexId) -> Vec<f32> {
        match sg.feature(v) {
            Some(f) if f.len() == self.in_dim => f.to_vec(),
            Some(f) => {
                // Defensive: pad/truncate mismatched features.
                let mut out = vec![0.0; self.in_dim];
                let n = f.len().min(self.in_dim);
                out[..n].copy_from_slice(&f[..n]);
                out
            }
            None => vec![0.0; self.in_dim],
        }
    }

    /// Forward pass with cached intermediates (training).
    pub fn forward_cached(&self, sg: &SampledSubgraph) -> SageCache {
        let feat_seed = self.feature_of(sg, sg.seed);

        // Hop-1 nodes in frontier order, with their hop-2 children.
        let hop1_nodes: Vec<VertexId> = sg
            .hops
            .first()
            .map(|h| h.flat().collect())
            .unwrap_or_default();
        // hops[1].groups is aligned with hop1_nodes when present.
        let empty: &[(VertexId, Vec<VertexId>)] = &[];
        let hop2_groups: &[(VertexId, Vec<VertexId>)] =
            sg.hops.get(1).map_or(empty, |h| h.groups.as_slice());

        let mut hop1 = Vec::with_capacity(hop1_nodes.len());
        for (i, &u) in hop1_nodes.iter().enumerate() {
            let feat = self.feature_of(sg, u);
            let child_feats: Vec<Vec<f32>> = hop2_groups
                .get(i)
                .map(|(_, children)| children.iter().map(|&c| self.feature_of(sg, c)).collect())
                .unwrap_or_default();
            let refs: Vec<&[f32]> = child_feats.iter().map(Vec::as_slice).collect();
            let mean_child_feat = mean_vectors(&refs, self.in_dim);
            let (pre1, h1) = self.layer1.forward(&feat, &mean_child_feat);
            hop1.push(Hop1Cache {
                feat,
                mean_child_feat,
                pre1,
                h1,
            });
        }

        let hop1_feat_refs: Vec<&[f32]> = hop1.iter().map(|c| c.feat.as_slice()).collect();
        let mean_feat_hop1 = mean_vectors(&hop1_feat_refs, self.in_dim);
        let (pre1_seed, h1_seed) = self.layer1.forward(&feat_seed, &mean_feat_hop1);

        let h1_refs: Vec<&[f32]> = hop1.iter().map(|c| c.h1.as_slice()).collect();
        let mean_h1 = mean_vectors(&h1_refs, self.hidden_dim);
        let (pre2, embedding) = self.layer2.forward(&h1_seed, &mean_h1);

        SageCache {
            feat_seed,
            hop1,
            mean_feat_hop1,
            pre1_seed,
            h1_seed,
            mean_h1,
            pre2,
            embedding,
        }
    }

    /// Forward pass returning just the embedding (inference).
    pub fn infer(&self, sg: &SampledSubgraph) -> Vec<f32> {
        self.forward_cached(sg).embedding
    }

    /// Fresh zero gradients for this model.
    pub fn zero_grads(&self) -> SageGrads {
        SageGrads {
            layer1: SageLayerGrads::zeros(&self.layer1),
            layer2: SageLayerGrads::zeros(&self.layer2),
        }
    }

    /// Accumulate gradients of a scalar loss whose gradient w.r.t. the
    /// embedding is `grad_out`.
    pub fn backward(&self, cache: &SageCache, grad_out: &[f32], grads: &mut SageGrads) {
        // ---- layer 2 ----
        let grad_pre2 = relu_backward(grad_out, &cache.pre2);
        grads
            .layer2
            .w_self
            .add_outer(&grad_pre2, &cache.h1_seed, 1.0);
        grads
            .layer2
            .w_neigh
            .add_outer(&grad_pre2, &cache.mean_h1, 1.0);
        axpy(&mut grads.layer2.bias, &grad_pre2, 1.0);

        let grad_h1_seed = self.layer2.w_self.matvec_t(&grad_pre2);
        let grad_mean_h1 = self.layer2.w_neigh.matvec_t(&grad_pre2);

        // ---- layer 1, seed ----
        let grad_pre1_seed = relu_backward(&grad_h1_seed, &cache.pre1_seed);
        grads
            .layer1
            .w_self
            .add_outer(&grad_pre1_seed, &cache.feat_seed, 1.0);
        grads
            .layer1
            .w_neigh
            .add_outer(&grad_pre1_seed, &cache.mean_feat_hop1, 1.0);
        axpy(&mut grads.layer1.bias, &grad_pre1_seed, 1.0);

        // ---- layer 1, hop-1 nodes (through mean_h1) ----
        if !cache.hop1.is_empty() {
            let scale = 1.0 / cache.hop1.len() as f32;
            for hc in &cache.hop1 {
                let grad_h1_u: Vec<f32> = grad_mean_h1.iter().map(|g| g * scale).collect();
                let grad_pre1_u = relu_backward(&grad_h1_u, &hc.pre1);
                grads.layer1.w_self.add_outer(&grad_pre1_u, &hc.feat, 1.0);
                grads
                    .layer1
                    .w_neigh
                    .add_outer(&grad_pre1_u, &hc.mean_child_feat, 1.0);
                axpy(&mut grads.layer1.bias, &grad_pre1_u, 1.0);
            }
        }
    }

    /// SGD step: `θ ← θ - lr · g`.
    pub fn apply_grads(&mut self, grads: &SageGrads, lr: f32) {
        self.layer1.w_self.add_scaled(&grads.layer1.w_self, -lr);
        self.layer1.w_neigh.add_scaled(&grads.layer1.w_neigh, -lr);
        axpy(&mut self.layer1.bias, &grads.layer1.bias, -lr);
        self.layer2.w_self.add_scaled(&grads.layer2.w_self, -lr);
        self.layer2.w_neigh.add_scaled(&grads.layer2.w_neigh, -lr);
        axpy(&mut self.layer2.bias, &grads.layer2.bias, -lr);
    }

    /// Mutable access to a few weights for gradient checking in tests.
    #[doc(hidden)]
    pub fn perturb_l1_wself(&mut self, r: usize, c: usize, delta: f32) {
        *self.layer1.w_self.get_mut(r, c) += delta;
    }

    #[doc(hidden)]
    pub fn grad_l1_wself(grads: &SageGrads, r: usize, c: usize) -> f32 {
        grads.layer1.w_self.get(r, c)
    }

    #[doc(hidden)]
    pub fn perturb_l2_wneigh(&mut self, r: usize, c: usize, delta: f32) {
        *self.layer2.w_neigh.get_mut(r, c) += delta;
    }

    #[doc(hidden)]
    pub fn grad_l2_wneigh(grads: &SageGrads, r: usize, c: usize) -> f32 {
        grads.layer2.w_neigh.get(r, c)
    }

    /// Serialize the trained weights (deploying an offline-trained model
    /// to the online model servers, §2.2 → §7.5).
    pub fn save(&self) -> bytes::Bytes {
        self.encode_to_bytes()
    }

    /// Load weights previously produced by [`SageModel::save`].
    pub fn load(raw: &[u8]) -> helios_types::Result<SageModel> {
        SageModel::decode_from_slice(raw)
    }
}

impl Encode for SageLayer {
    fn encode(&self, buf: &mut BytesMut) {
        self.w_self.encode(buf);
        self.w_neigh.encode(buf);
        self.bias.encode(buf);
    }
}

impl Decode for SageLayer {
    fn decode(buf: &mut impl Buf) -> helios_types::Result<Self> {
        Ok(SageLayer {
            w_self: Matrix::decode(buf)?,
            w_neigh: Matrix::decode(buf)?,
            bias: Vec::<f32>::decode(buf)?,
        })
    }
}

impl Encode for SageModel {
    fn encode(&self, buf: &mut BytesMut) {
        (self.in_dim as u32).encode(buf);
        (self.hidden_dim as u32).encode(buf);
        (self.out_dim as u32).encode(buf);
        self.layer1.encode(buf);
        self.layer2.encode(buf);
    }
}

impl Decode for SageModel {
    fn decode(buf: &mut impl Buf) -> helios_types::Result<Self> {
        let in_dim = u32::decode(buf)? as usize;
        let hidden_dim = u32::decode(buf)? as usize;
        let out_dim = u32::decode(buf)? as usize;
        let layer1 = SageLayer::decode(buf)?;
        let layer2 = SageLayer::decode(buf)?;
        if layer1.w_self.rows() != hidden_dim
            || layer1.w_self.cols() != in_dim
            || layer2.w_self.rows() != out_dim
            || layer2.w_self.cols() != hidden_dim
        {
            return Err(HeliosError::Codec("model dimensions inconsistent".into()));
        }
        Ok(SageModel {
            in_dim,
            hidden_dim,
            out_dim,
            layer1,
            layer2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_query::HopSamples;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_subgraph(with_features: bool) -> SampledSubgraph {
        let mut sg = SampledSubgraph::new(VertexId(1));
        sg.hops.push(HopSamples {
            groups: vec![(VertexId(1), vec![VertexId(10), VertexId(11)])],
        });
        sg.hops.push(HopSamples {
            groups: vec![
                (VertexId(10), vec![VertexId(20)]),
                (VertexId(11), vec![VertexId(21), VertexId(22)]),
            ],
        });
        if with_features {
            for (i, v) in [1u64, 10, 11, 20, 21, 22].iter().enumerate() {
                sg.features.insert(
                    VertexId(*v),
                    vec![0.1 * (i as f32 + 1.0), -0.2, 0.3, 0.05 * i as f32],
                );
            }
        }
        sg
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SageModel::new(4, 8, 6, &mut rng);
        let sg = toy_subgraph(true);
        let z1 = m.infer(&sg);
        let z2 = m.infer(&sg);
        assert_eq!(z1.len(), 6);
        assert_eq!(z1, z2);
        assert!(z1.iter().any(|&v| v != 0.0), "embedding all zero");
    }

    #[test]
    fn missing_features_degrade_not_crash() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = SageModel::new(4, 8, 6, &mut rng);
        let full = m.infer(&toy_subgraph(true));
        let empty = m.infer(&toy_subgraph(false));
        assert_eq!(empty.len(), 6);
        assert_ne!(full, empty);
    }

    #[test]
    fn one_hop_subgraph_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = SageModel::new(4, 8, 6, &mut rng);
        let mut sg = SampledSubgraph::new(VertexId(1));
        sg.hops.push(HopSamples {
            groups: vec![(VertexId(1), vec![VertexId(10)])],
        });
        sg.features.insert(VertexId(1), vec![1.0; 4]);
        sg.features.insert(VertexId(10), vec![0.5; 4]);
        let z = m.infer(&sg);
        assert_eq!(z.len(), 6);
    }

    #[test]
    fn empty_subgraph_supported() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = SageModel::new(4, 8, 6, &mut rng);
        let z = m.infer(&SampledSubgraph::new(VertexId(9)));
        assert_eq!(z.len(), 6);
    }

    /// Finite-difference gradient check on loss = sum(embedding).
    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = SageModel::new(4, 8, 6, &mut rng);
        let sg = toy_subgraph(true);

        let loss = |m: &SageModel| m.infer(&sg).iter().sum::<f32>();

        let cache = m.forward_cached(&sg);
        let mut grads = m.zero_grads();
        m.backward(&cache, &[1.0; 6], &mut grads);

        let eps = 1e-3;
        // Check several coordinates in both layers.
        for (r, c) in [(0usize, 0usize), (2, 1), (5, 3)] {
            let analytic = SageModel::grad_l1_wself(&grads, r, c);
            let base = loss(&m);
            m.perturb_l1_wself(r, c, eps);
            let bumped = loss(&m);
            m.perturb_l1_wself(r, c, -eps);
            let numeric = (bumped - base) / eps;
            assert!(
                (numeric - analytic).abs() < 0.02 + 0.05 * analytic.abs(),
                "layer1 w_self[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        for (r, c) in [(0usize, 0usize), (3, 5)] {
            let analytic = SageModel::grad_l2_wneigh(&grads, r, c);
            let base = loss(&m);
            m.perturb_l2_wneigh(r, c, eps);
            let bumped = loss(&m);
            m.perturb_l2_wneigh(r, c, -eps);
            let numeric = (bumped - base) / eps;
            assert!(
                (numeric - analytic).abs() < 0.02 + 0.05 * analytic.abs(),
                "layer2 w_neigh[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_inference() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = SageModel::new(4, 8, 6, &mut rng);
        let sg = toy_subgraph(true);
        let raw = m.save();
        let m2 = SageModel::load(&raw).unwrap();
        assert_eq!(m.infer(&sg), m2.infer(&sg));
        assert_eq!(m2.in_dim(), 4);
        assert_eq!(m2.out_dim(), 6);
        // Corrupt payload is rejected, not mis-loaded.
        assert!(SageModel::load(&raw[..raw.len() / 2]).is_err());
        assert!(SageModel::load(&[1, 2, 3]).is_err());
    }

    #[test]
    fn sgd_reduces_simple_loss() {
        // Minimise ||embedding||² — gradients should drive it down.
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = SageModel::new(4, 8, 6, &mut rng);
        let sg = toy_subgraph(true);
        let norm2 = |m: &SageModel| m.infer(&sg).iter().map(|v| v * v).sum::<f32>();
        let before = norm2(&m);
        for _ in 0..50 {
            let cache = m.forward_cached(&sg);
            let grad: Vec<f32> = cache.embedding.iter().map(|v| 2.0 * v).collect();
            let mut g = m.zero_grads();
            m.backward(&cache, &grad, &mut g);
            m.apply_grads(&g, 0.01);
        }
        let after = norm2(&m);
        assert!(after < before * 0.5, "{before} → {after}");
    }
}
