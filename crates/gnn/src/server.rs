//! The model-serving substrate (TensorFlow-Serving stand-in, §7.5).
//!
//! A [`ModelServer`] owns an immutable trained model shared across any
//! number of caller threads; `infer`/`score` run the real forward pass.
//! Inference throughput/latency is measured by the Fig. 19 harness, which
//! drives many client threads against one server.

use crate::model::SageModel;
use crate::tensor::{dot, sigmoid};
use helios_query::SampledSubgraph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe model server.
#[derive(Clone)]
pub struct ModelServer {
    model: Arc<SageModel>,
    requests: Arc<AtomicU64>,
}

impl ModelServer {
    /// Serve a trained model.
    pub fn new(model: SageModel) -> Self {
        ModelServer {
            model: Arc::new(model),
            requests: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Embed one subgraph.
    pub fn infer(&self, sg: &SampledSubgraph) -> Vec<f32> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.model.infer(sg)
    }

    /// Two-tower link score in [0, 1].
    pub fn score(&self, src: &SampledSubgraph, dst: &SampledSubgraph) -> f32 {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let zs = self.model.infer(src);
        let zd = self.model.infer(dst);
        sigmoid(dot(&zs, &zd))
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_types::VertexId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concurrent_inference() {
        let mut rng = StdRng::seed_from_u64(1);
        let server = ModelServer::new(SageModel::new(4, 8, 6, &mut rng));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = server.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let sg = SampledSubgraph::new(VertexId(t * 100 + i));
                        let z = s.infer(&sg);
                        assert_eq!(z.len(), 6);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.request_count(), 400);
    }

    #[test]
    fn score_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let server = ModelServer::new(SageModel::new(4, 8, 6, &mut rng));
        let a = SampledSubgraph::new(VertexId(1));
        let b = SampledSubgraph::new(VertexId(2));
        let s = server.score(&a, &b);
        assert!((0.0..=1.0).contains(&s));
    }
}
