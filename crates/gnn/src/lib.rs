//! # helios-gnn
//!
//! A from-scratch GraphSAGE implementation (§2.1) plus the model-serving
//! substrate (the paper deploys TensorFlow Serving; §7.5). Used by two
//! experiments:
//!
//! * **Fig. 18** — train a GraphSAGE link-prediction model offline on a
//!   Taobao-shaped graph, then measure inference accuracy when the
//!   sampled subgraphs are produced under increasing ingestion latency
//!   (eventual consistency) versus the all-writes-visible oracle;
//! * **Fig. 19** — end-to-end online inference: Helios serving workers
//!   feed sampled subgraphs to model-serving workers.
//!
//! The model is a two-layer mean-aggregator GraphSAGE
//! (`h_v = ReLU(W_self·h_v + W_neigh·mean(h_u) + b)`) with a dot-product
//! link-prediction head, trained by plain SGD on binary cross-entropy
//! with uniform negative sampling. Dense math is implemented in-repo
//! (`tensor`), sized for the small embedding dimensions GNN serving uses.

pub mod eval;
pub mod model;
pub mod oracle;
pub mod server;
pub mod tensor;
pub mod trainer;

pub use eval::{accuracy, auc};
pub use model::SageModel;
pub use oracle::OracleSampler;
pub use server::ModelServer;
pub use tensor::Matrix;
pub use trainer::{LinkPredictionTrainer, TrainConfig};
