//! Minimal dense linear algebra for small GNN layers.
//!
//! Row-major `f32` matrices with exactly the operations two GraphSAGE
//! layers need: matrix–vector products, transposed products (backprop),
//! outer-product accumulation (weight gradients), ReLU and vector helpers.
//! Dimensions here are tiny (≤ 128), so simple loops beat any BLAS call
//! overhead; the inner loops vectorize under `-O`.

use bytes::{Buf, BytesMut};
use helios_types::{Decode, Encode, HeliosError};
use rand::Rng;

/// Row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialisation.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Build from rows of data (panics on ragged input).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = A·x` (matrix–vector).
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = Aᵀ·x` (transposed matrix–vector, used in backprop).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = self.row(r);
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += a * xr;
            }
        }
        y
    }

    /// `A += scale · u·vᵀ` (outer-product accumulate; weight gradients).
    pub fn add_outer(&mut self, u: &[f32], v: &[f32], scale: f32) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &ur) in u.iter().enumerate() {
            let base = r * self.cols;
            let ur = ur * scale;
            for (c, vc) in v.iter().enumerate() {
                self.data[base + c] += ur * vc;
            }
        }
    }

    /// `A += scale · B` (SGD update).
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Set every element to zero.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm (training diagnostics).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

impl Encode for Matrix {
    fn encode(&self, buf: &mut BytesMut) {
        (self.rows as u32).encode(buf);
        (self.cols as u32).encode(buf);
        self.data.encode(buf);
    }
}

impl Decode for Matrix {
    fn decode(buf: &mut impl Buf) -> helios_types::Result<Self> {
        let rows = u32::decode(buf)? as usize;
        let cols = u32::decode(buf)? as usize;
        let data = Vec::<f32>::decode(buf)?;
        if data.len() != rows * cols {
            return Err(HeliosError::Codec(format!(
                "matrix payload {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

/// Element-wise ReLU.
pub fn relu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Mask `grad` by ReLU'(pre): zero where the pre-activation was ≤ 0.
pub fn relu_backward(grad: &[f32], pre: &[f32]) -> Vec<f32> {
    grad.iter()
        .zip(pre)
        .map(|(&g, &z)| if z > 0.0 { g } else { 0.0 })
        .collect()
}

/// Element-wise mean of equal-length vectors; zeros when the set is empty
/// (an unsampled neighborhood aggregates to nothing).
pub fn mean_vectors(vs: &[&[f32]], dim: usize) -> Vec<f32> {
    if vs.is_empty() {
        return vec![0.0; dim];
    }
    let mut out = vec![0.0; dim];
    for v in vs {
        assert_eq!(v.len(), dim);
        for (o, x) in out.iter_mut().zip(*v) {
            *o += x;
        }
    }
    let n = vs.len() as f32;
    for o in &mut out {
        *o /= n;
    }
    out
}

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically-stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `a += scale * b`.
pub fn axpy(a: &mut [f32], b: &[f32], scale: f32) {
    for (x, y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_values() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.matvec_t(&[1.0, 0.0, 1.0]), vec![6.0, 8.0]);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn matvec_t_is_transpose_of_matvec() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(5, 7, &mut rng);
        // <A x, y> == <x, Aᵀ y>
        let x: Vec<f32> = (0..7).map(|i| i as f32 * 0.3 - 1.0).collect();
        let y: Vec<f32> = (0..5).map(|i| 1.0 - i as f32 * 0.2).collect();
        let lhs = dot(&m.matvec(&x), &y);
        let rhs = dot(&x, &m.matvec_t(&y));
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn outer_product_accumulation() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0], 0.5);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(0, 2), -0.5);
        assert_eq!(m.get(1, 0), 1.0);
        m.clear();
        assert_eq!(m.norm(), 0.0);
    }

    #[test]
    fn relu_and_backward() {
        let pre = vec![-1.0, 0.0, 2.0];
        assert_eq!(relu(&pre), vec![0.0, 0.0, 2.0]);
        assert_eq!(relu_backward(&[1.0, 1.0, 1.0], &pre), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn mean_vectors_handles_empty() {
        assert_eq!(mean_vectors(&[], 3), vec![0.0; 3]);
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(mean_vectors(&[&a, &b], 2), vec![2.0, 3.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
    }

    #[test]
    fn gradient_check_linear_layer() {
        // Finite-difference check: d/dW of f(W) = sum(W·x) equals x
        // broadcast over rows.
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = Matrix::xavier(3, 4, &mut rng);
        let x: Vec<f32> = vec![0.5, -0.25, 1.0, 2.0];
        let eps = 1e-3;
        let f = |w: &Matrix| w.matvec(&x).iter().sum::<f32>();
        let base = f(&w);
        let before = w.get(1, 2);
        *w.get_mut(1, 2) += eps;
        let bumped = f(&w);
        let numeric = (bumped - base) / eps;
        assert!((numeric - x[2]).abs() < 1e-2, "{numeric} vs {}", x[2]);
        *w.get_mut(1, 2) = before;
    }
}
