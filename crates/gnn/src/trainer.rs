//! Offline link-prediction training (§2.2's "GNN Model Training" stage).
//!
//! Two-tower setup, as in the Taobao User-to-Item experiment of §7.4: the
//! shared GraphSAGE model embeds the user's subgraph and the item's
//! subgraph; `P(link) = σ(z_user · z_item)`; binary cross-entropy with
//! uniform negative sampling; plain mini-batch SGD.

use crate::model::SageModel;
use crate::oracle::OracleSampler;
use crate::tensor::{dot, sigmoid};
use helios_query::KHopQuery;
use helios_types::VertexId;
use rand::Rng;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Embedding width.
    pub out_dim: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Epoch count.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Negatives drawn per positive pair.
    pub negatives_per_positive: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden_dim: 32,
            out_dim: 16,
            lr: 0.05,
            epochs: 3,
            batch_size: 32,
            negatives_per_positive: 1,
        }
    }
}

/// A labelled training/evaluation pair.
#[derive(Debug, Clone, Copy)]
pub struct LinkExample {
    /// The query-side vertex (e.g. User).
    pub src: VertexId,
    /// The candidate vertex (e.g. Item).
    pub dst: VertexId,
    /// 1.0 for an observed edge, 0.0 for a sampled negative.
    pub label: f32,
}

/// Trains a [`SageModel`] for link prediction over oracle-sampled
/// subgraphs.
pub struct LinkPredictionTrainer {
    config: TrainConfig,
    src_query: KHopQuery,
    dst_query: KHopQuery,
}

impl LinkPredictionTrainer {
    /// New trainer: `src_query`/`dst_query` define how each tower's
    /// subgraph is sampled (they may be the same query).
    pub fn new(config: TrainConfig, src_query: KHopQuery, dst_query: KHopQuery) -> Self {
        LinkPredictionTrainer {
            config,
            src_query,
            dst_query,
        }
    }

    /// Score one pair with `model` using subgraphs from `oracle`.
    pub fn score(
        &self,
        model: &SageModel,
        oracle: &OracleSampler,
        src: VertexId,
        dst: VertexId,
        rng: &mut impl Rng,
    ) -> f32 {
        let zs = model.infer(&oracle.sample(src, &self.src_query, rng));
        let zd = model.infer(&oracle.sample(dst, &self.dst_query, rng));
        sigmoid(dot(&zs, &zd))
    }

    /// Train on positive pairs, drawing negatives uniformly from
    /// `dst_pool`. Returns the final average epoch loss.
    pub fn train(
        &self,
        model: &mut SageModel,
        oracle: &OracleSampler,
        positives: &[(VertexId, VertexId)],
        dst_pool: &[VertexId],
        rng: &mut impl Rng,
    ) -> f32 {
        assert!(!positives.is_empty(), "need positive examples");
        assert!(!dst_pool.is_empty(), "need a negative pool");
        let mut last_epoch_loss = f32::INFINITY;
        for _epoch in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..positives.len()).collect();
            // Fisher–Yates shuffle with the caller's RNG.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0;
            let mut examples = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let mut grads = model.zero_grads();
                let mut batch_n = 0usize;
                for &idx in chunk {
                    let (src, dst) = positives[idx];
                    epoch_loss +=
                        self.example_backward(model, oracle, src, dst, 1.0, &mut grads, rng);
                    batch_n += 1;
                    for _ in 0..self.config.negatives_per_positive {
                        let neg = dst_pool[rng.gen_range(0..dst_pool.len())];
                        epoch_loss +=
                            self.example_backward(model, oracle, src, neg, 0.0, &mut grads, rng);
                        batch_n += 1;
                    }
                }
                examples += batch_n;
                model.apply_grads(&grads, self.config.lr / batch_n.max(1) as f32);
            }
            last_epoch_loss = epoch_loss / examples.max(1) as f32;
        }
        last_epoch_loss
    }

    /// Forward + backward for one example; returns its BCE loss.
    #[allow(clippy::too_many_arguments)]
    fn example_backward(
        &self,
        model: &SageModel,
        oracle: &OracleSampler,
        src: VertexId,
        dst: VertexId,
        label: f32,
        grads: &mut crate::model::SageGrads,
        rng: &mut impl Rng,
    ) -> f32 {
        let src_sg = oracle.sample(src, &self.src_query, rng);
        let dst_sg = oracle.sample(dst, &self.dst_query, rng);
        let src_cache = model.forward_cached(&src_sg);
        let dst_cache = model.forward_cached(&dst_sg);
        let p = sigmoid(dot(&src_cache.embedding, &dst_cache.embedding));
        // BCE gradient through the sigmoid-dot head: dL/dz_s = (p-y)·z_d.
        let coeff = p - label;
        let grad_src: Vec<f32> = dst_cache.embedding.iter().map(|v| coeff * v).collect();
        let grad_dst: Vec<f32> = src_cache.embedding.iter().map(|v| coeff * v).collect();
        model.backward(&src_cache, &grad_src, grads);
        model.backward(&dst_cache, &grad_dst, grads);
        let eps = 1e-7f32;
        -(label * (p + eps).ln() + (1.0 - label) * (1.0 - p + eps).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helios_query::SamplingStrategy;
    use helios_types::{EdgeType, EdgeUpdate, GraphUpdate, Timestamp, VertexType, VertexUpdate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const U: VertexType = VertexType(0);
    const I: VertexType = VertexType(1);
    const CLICK: EdgeType = EdgeType(0);
    const COP: EdgeType = EdgeType(1);

    /// A planted two-cluster world: users 0..10 click items 100..110,
    /// users 10..20 click items 110..120. Co-purchases stay in-cluster.
    /// Features carry the cluster signal.
    fn build_world() -> (OracleSampler, Vec<(VertexId, VertexId)>, Vec<VertexId>) {
        let mut o = OracleSampler::new();
        let mut ts = 0u64;
        let mut t = || {
            ts += 1;
            Timestamp(ts)
        };
        let feat = |cluster: f32, id: u64| vec![cluster, 1.0 - cluster, (id % 7) as f32 * 0.1, 0.5];
        for u in 0..20u64 {
            let cluster = if u < 10 { 0.0 } else { 1.0 };
            o.apply(&GraphUpdate::Vertex(VertexUpdate {
                vtype: U,
                id: VertexId(u),
                feature: feat(cluster, u),
                ts: t(),
            }));
        }
        for i in 100..120u64 {
            let cluster = if i < 110 { 0.0 } else { 1.0 };
            o.apply(&GraphUpdate::Vertex(VertexUpdate {
                vtype: I,
                id: VertexId(i),
                feature: feat(cluster, i),
                ts: t(),
            }));
        }
        let mut positives = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for u in 0..20u64 {
            let base = if u < 10 { 100 } else { 110 };
            for _ in 0..6 {
                let i = base + rng.gen_range(0..10u64);
                o.apply(&GraphUpdate::Edge(EdgeUpdate {
                    etype: CLICK,
                    src_type: U,
                    src: VertexId(u),
                    dst_type: I,
                    dst: VertexId(i),
                    ts: t(),
                    weight: 1.0,
                }));
                positives.push((VertexId(u), VertexId(i)));
            }
        }
        for i in 100..120u64 {
            let base = if i < 110 { 100 } else { 110 };
            for _ in 0..4 {
                let j = base + rng.gen_range(0..10u64);
                o.apply(&GraphUpdate::Edge(EdgeUpdate {
                    etype: COP,
                    src_type: I,
                    src: VertexId(i),
                    dst_type: I,
                    dst: VertexId(j),
                    ts: t(),
                    weight: 1.0,
                }));
            }
        }
        let pool: Vec<VertexId> = (100..120).map(VertexId).collect();
        (o, positives, pool)
    }

    fn queries() -> (KHopQuery, KHopQuery) {
        let user_q = KHopQuery::builder(U)
            .hop(CLICK, I, 5, SamplingStrategy::Random)
            .hop(COP, I, 3, SamplingStrategy::Random)
            .build()
            .unwrap();
        let item_q = KHopQuery::builder(I)
            .hop(COP, I, 5, SamplingStrategy::Random)
            .hop(COP, I, 3, SamplingStrategy::Random)
            .build()
            .unwrap();
        (user_q, item_q)
    }

    #[test]
    fn training_reduces_loss_and_separates_clusters() {
        let (oracle, positives, pool) = build_world();
        let (uq, iq) = queries();
        let trainer = LinkPredictionTrainer::new(
            TrainConfig {
                epochs: 5,
                lr: 0.1,
                ..Default::default()
            },
            uq,
            iq,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = SageModel::new(4, 16, 8, &mut rng);

        let final_loss = trainer.train(&mut model, &oracle, &positives, &pool, &mut rng);
        assert!(
            final_loss < 0.69,
            "loss {final_loss} should beat chance (ln 2)"
        );

        // In-cluster pairs should score higher than cross-cluster pairs on
        // average.
        let mut in_cluster = 0.0;
        let mut cross = 0.0;
        for u in 0..10u64 {
            in_cluster += trainer.score(&model, &oracle, VertexId(u), VertexId(105), &mut rng);
            cross += trainer.score(&model, &oracle, VertexId(u), VertexId(115), &mut rng);
        }
        assert!(
            in_cluster > cross,
            "in-cluster {in_cluster:.2} vs cross {cross:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "positive examples")]
    fn empty_training_set_panics() {
        let (oracle, _, pool) = build_world();
        let (uq, iq) = queries();
        let trainer = LinkPredictionTrainer::new(TrainConfig::default(), uq, iq);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = SageModel::new(4, 8, 8, &mut rng);
        trainer.train(&mut model, &oracle, &[], &pool, &mut rng);
    }
}
